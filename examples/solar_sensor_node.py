"""A solar-powered acoustic sensing node over a (shortened) day cycle.

Builds the harvesting chain from physical models — diurnal irradiance, a
5 cm^2 / 22 % panel, and a bq25570-style boost regulator — instead of a
pre-recorded power trace, then runs the Sense-and-Compute workload on a
REACT buffer and on the small static buffer a designer worried about
responsiveness would have picked.  The example prints how many sound-level
readings each design captured and the first few filtered readings produced
by the FIR kernel.

Run with::

    python examples/solar_sensor_node.py

Set ``REPRO_EXAMPLES_QUICK=1`` (CI's examples smoke step does) to shrink
the simulated deployment so the script finishes in a couple of seconds.
"""

import os

from repro import (
    BatterylessSystem,
    ReactBuffer,
    SenseAndCompute,
    Simulator,
    StaticBuffer,
)
from repro.harvester.regulator import BoostRegulator
from repro.harvester.solar import SolarPanel, diurnal_irradiance
from repro.sim.recorder import Recorder
from repro.units import microfarads

#: CI smoke runs set this to keep every example inside a fast budget.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")


def build_trace():
    """Morning-to-noon irradiance converted to electrical power."""
    panel = SolarPanel(area_cm2=5.0, efficiency=0.22)
    irradiance = diurnal_irradiance(
        duration=(10 * 60.0 if QUICK else 30 * 60.0),
        sample_period=5.0,
        peak_irradiance=120.0,       # a shaded indoor/outdoor window sill
        sunrise=0.0,
        sunset=40 * 60.0,
        cloud_fraction=0.5,
        seed=3,
    )
    return panel.trace_from_irradiance(
        irradiance, sample_period=5.0, name="Window sill solar"
    )


def main() -> None:
    trace = build_trace()
    print(f"{trace.name}: {trace.duration / 60.0:.0f} minutes, "
          f"{trace.mean_power * 1e3:.2f} mW mean harvested power\n")

    for buffer in (
        StaticBuffer(microfarads(770.0), name="770 uF static"), ReactBuffer()
    ):
        workload = SenseAndCompute(execute_kernel=True)
        system = BatterylessSystem.build(
            trace, buffer, workload, regulator=BoostRegulator()
        )
        recorder = Recorder(record_period=10.0)
        result = Simulator(system, recorder=recorder).run()
        readings = workload.readings
        print(f"--- {buffer.name} ---")
        print("started after      : "
              + (f"{result.latency:.1f} s" if result.started else "never started"))
        print(f"deadlines captured : {result.work_units:.0f}")
        print(f"deadlines missed   : {result.workload_metrics['missed_events']:.0f}")
        print(f"power cycles       : {result.brownout_count}")
        if readings:
            preview = ", ".join(f"{value:.2f}" for value in readings[:5])
            print(f"first readings     : {preview}")
        print()


if __name__ == "__main__":
    main()
