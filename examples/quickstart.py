"""Quickstart: compare REACT against a static buffer on one power trace.

Runs the Sense-and-Compute benchmark on the RF Mobile trace with a 770 uF
static buffer, the equal-capacity 17 mF static buffer, and REACT through
the public sweep API (`repro.experiments.sweep`), then prints latency,
on-time, and measurements completed.

The sweep runs through an execution backend — "serial" here, but swap the
``backend=`` argument for "pool", "batch", or "pool+batch" (exactly the
CLI's ``--backend`` choices) and the same grid fans out over worker
processes and/or vectorized lockstep batches with identical results.

Run with::

    python examples/quickstart.py

Set ``REPRO_EXAMPLES_QUICK=1`` (CI's examples smoke step does) to run the
sweep at the quick fidelity so the script finishes in a couple of seconds.
"""

import os

from repro import ReactBuffer, StaticBuffer, generate_table3_trace
from repro.experiments import sweep
from repro.experiments.runner import ExperimentSettings
from repro.units import microfarads, millifarads

#: CI smoke runs set this to keep every example inside a fast budget.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")


def quickstart_buffers():
    """The three buffers to compare (module-level so specs stay picklable)."""
    return [
        StaticBuffer(microfarads(770.0), name="770 uF static"),
        StaticBuffer(millifarads(17.0), name="17 mF static"),
        ReactBuffer(),
    ]


def main() -> None:
    trace = generate_table3_trace("RF Mobile")
    print(f"Replaying {trace.name}: {trace.duration:.0f} s, "
          f"{trace.mean_power * 1e3:.2f} mW average harvested power\n")

    run = sweep(
        workloads=("SC",),
        trace_names=("RF Mobile",),
        settings=ExperimentSettings(quick=True) if QUICK else None,
        buffer_factory=quickstart_buffers,
        backend="serial",
    )

    print(f"{'buffer':18s} {'latency':>9s} {'on-time':>9s} {'measurements':>13s}")
    for result in run.results:
        latency = f"{result.latency:.1f} s" if result.latency is not None else "never"
        print(
            f"{result.buffer_name:18s} {latency:>9s} {result.on_time:>7.1f} s "
            f"{result.work_units:>13.0f}"
        )


if __name__ == "__main__":
    main()
