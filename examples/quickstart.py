"""Quickstart: compare REACT against a static buffer on one power trace.

Runs the Sense-and-Compute benchmark on the RF Mobile trace with a 770 uF
static buffer, the equal-capacity 17 mF static buffer, and REACT, then
prints latency, on-time, and measurements completed.

Run with::

    python examples/quickstart.py
"""

from repro import (
    BatterylessSystem,
    ReactBuffer,
    SenseAndCompute,
    Simulator,
    StaticBuffer,
    generate_table3_trace,
)
from repro.units import microfarads, millifarads


def main() -> None:
    trace = generate_table3_trace("RF Mobile")
    print(f"Replaying {trace.name}: {trace.duration:.0f} s, "
          f"{trace.mean_power * 1e3:.2f} mW average harvested power\n")

    buffers = [
        StaticBuffer(microfarads(770.0), name="770 uF static"),
        StaticBuffer(millifarads(17.0), name="17 mF static"),
        ReactBuffer(),
    ]

    print(f"{'buffer':18s} {'latency':>9s} {'on-time':>9s} {'measurements':>13s}")
    for buffer in buffers:
        system = BatterylessSystem.build(trace, buffer, SenseAndCompute(execute_kernel=True))
        result = Simulator(system).run()
        latency = f"{result.latency:.1f} s" if result.latency is not None else "never"
        print(
            f"{buffer.name:18s} {latency:>9s} {result.on_time:>7.1f} s "
            f"{result.work_units:>13.0f}"
        )


if __name__ == "__main__":
    main()
