"""Software-directed longevity guarantees (paper section 3.4.1).

Runs the Radio Transmit benchmark on REACT twice: once transmitting eagerly
(the way a static-buffer system behaves) and once using the longevity API
to sleep until the bank fabric has banked enough energy to guarantee the
transmission completes.  Eager transmission wastes energy on doomed-to-fail
attempts; the guarantee converts that wasted energy into completed uplinks.

Run with::

    python examples/longevity_guarantees.py

Set ``REPRO_EXAMPLES_QUICK=1`` (CI's examples smoke step does) to shrink
the replayed trace so the script finishes in a couple of seconds.
"""

import os

from repro import BatterylessSystem, RadioTransmit, ReactBuffer, Simulator
from repro.harvester.synthetic import generate_table3_trace

#: CI smoke runs set this to keep every example inside a fast budget.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")


def run_variant(trace, use_guarantee: bool):
    workload = RadioTransmit(use_longevity_guarantee=use_guarantee)
    system = BatterylessSystem.build(trace, ReactBuffer(), workload)
    result = Simulator(system).run()
    return result


def main() -> None:
    trace = generate_table3_trace("RF Mobile")
    if QUICK:
        trace = trace.truncated(300.0, name=trace.name)
    print(f"Replaying {trace.name}: {trace.duration:.0f} s, "
          f"{trace.mean_power * 1e3:.2f} mW average harvested power\n")

    print(f"{'policy':28s} {'transmissions':>14s} {'failed attempts':>16s}")
    for use_guarantee, label in (
        (False, "eager (no guarantee)"), (True, "longevity guarantee")
    ):
        result = run_variant(trace, use_guarantee)
        print(
            f"{label:28s} {result.work_units:>14.0f} "
            f"{result.workload_metrics['failed_operations']:>16.0f}"
        )

    print("\nWith the guarantee, REACT waits in deep sleep until its capacitance level")
    print(
        "corresponds to a full transmission's worth of energy, then sends without risk"
    )
    print("of browning out mid-packet.")


if __name__ == "__main__":
    main()
