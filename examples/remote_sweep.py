"""Distributed sweep: fan a grid out over two local worker processes.

Runs the Data-Encryption benchmark over every paper buffer on two RF
traces through the ``remote:serial`` backend: the coordinator binds a
loopback socket, spawns two worker subprocesses (the same loop
``react-repro worker --connect HOST:PORT`` runs on another machine),
shards the grid along trace boundaries, and reassembles the streamed
results in canonical order — bit-identical to a serial sweep, which the
script verifies at the end.

The grid sticks to the standard paper buffers: worker processes are fresh
interpreters, so specs must only reference importable module-level
factories (a function defined in this script lives in ``__main__`` and
would not unpickle inside a worker).

Run with::

    python examples/remote_sweep.py

Set ``REPRO_EXAMPLES_QUICK=1`` (CI's examples smoke step does) to run the
sweep at the quick fidelity so the script finishes in a couple of seconds.
"""

import os

from repro.experiments import RemoteBackend, sweep
from repro.experiments.runner import ExperimentSettings

#: CI smoke runs set this to keep every example inside a fast budget.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")


def main() -> None:
    settings = (
        ExperimentSettings(quick=True, quick_trace_cap=120.0)
        if QUICK
        else ExperimentSettings()
    )
    workloads = ("DE",)
    traces = ("RF Cart", "RF Mobile")

    backend = RemoteBackend(inner="serial", workers=2)
    remote = sweep(
        workloads=workloads, trace_names=traces, settings=settings, backend=backend
    )

    report = backend.last_run_report
    print(
        f"remote:serial over {report.workers_connected} workers: "
        f"{len(remote.results)} cells in {report.shards_total} shards "
        f"({report.dispatches} dispatches, {report.requeues} requeues)\n"
    )
    print(f"{'trace':16s} {'buffer':8s} {'latency':>9s} {'work units':>11s}")
    for result in remote.results:
        latency = f"{result.latency:.1f} s" if result.latency is not None else "never"
        print(
            f"{result.trace_name:16s} {result.buffer_name:8s} {latency:>9s} "
            f"{result.work_units:>11.0f}"
        )

    # The transport guarantee: identical to a serial sweep, in order.
    serial = sweep(
        workloads=workloads, trace_names=traces, settings=settings, backend="serial"
    )
    matches = all(
        a.work_units == b.work_units
        and a.latency == b.latency
        and a.enable_count == b.enable_count
        for a, b in zip(serial.results, remote.results)
    )
    print(f"\nbit-identical to serial: {matches}")
    if not matches:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
