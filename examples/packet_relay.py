"""A batteryless packet relay: receive unpredictable packets, forward them.

Reproduces the paper's Packet Forwarding scenario as an application: a
store-and-forward relay powered by office RF.  The example contrasts a
static buffer sized for responsiveness (770 uF), one sized for the
transmission energy (10 mF), and REACT, which uses software-directed
longevity levels for the receive and transmit tasks and re-allocates the
transmit reservation when a new packet arrives (energy fungibility).

Run with::

    python examples/packet_relay.py

Set ``REPRO_EXAMPLES_QUICK=1`` (CI's examples smoke step does) to shrink
the replayed trace so the script finishes in a couple of seconds.
"""

import os

from repro import (
    BatterylessSystem,
    PacketForwarding,
    ReactBuffer,
    Simulator,
    StaticBuffer,
)
from repro.harvester.synthetic import generate_table3_trace
from repro.units import microfarads, millifarads

#: CI smoke runs set this to keep every example inside a fast budget.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")


def main() -> None:
    trace = generate_table3_trace("RF Cart")
    if QUICK:
        trace = trace.truncated(300.0, name=trace.name)
    print(f"Replaying {trace.name}: {trace.duration:.0f} s, "
          f"{trace.mean_power * 1e3:.2f} mW average harvested power")
    print("Packets arrive unpredictably (Poisson, ~5.5 s mean inter-arrival)\n")

    buffers = [
        StaticBuffer(microfarads(770.0), name="770 uF static"),
        StaticBuffer(millifarads(10.0), name="10 mF static"),
        ReactBuffer(),
    ]

    print(
        f"{'buffer':16s} {'received':>9s} {'forwarded':>10s} {'missed':>7s} {'failed tx':>10s}"
    )
    for buffer in buffers:
        workload = PacketForwarding(mean_interarrival=5.5, execute_kernel=True)
        system = BatterylessSystem.build(trace, buffer, workload)
        result = Simulator(system).run()
        metrics = result.workload_metrics
        print(
            f"{buffer.name:16s} {metrics.get('packets_received', 0):>9.0f} "
            f"{result.work_units:>10.0f} {metrics['missed_events']:>7.0f} "
            f"{metrics['failed_operations']:>10.0f}"
        )

    print("\nREACT receives more packets because it is on when they arrive, and")
    print("forwards more because banked energy guarantees each transmission completes.")


if __name__ == "__main__":
    main()
