"""Designing a custom REACT bank fabric for a new platform.

Walks through sizing a REACT fabric for a hypothetical soil-moisture node:
pick a last-level buffer for the required reactivity, choose bank sizes
that respect the Equation 2 constraint, and compare the resulting fabric
against the paper's Table 1 configuration on a solar trace.

Run with::

    python examples/custom_react_fabric.py

Set ``REPRO_EXAMPLES_QUICK=1`` (CI's examples smoke step does) to shrink
the replayed trace so the script finishes in a couple of seconds.
"""

import os

from repro import (
    BankSpec,
    BatterylessSystem,
    ReactBuffer,
    ReactConfig,
    SenseAndCompute,
    Simulator,
    table1_config,
)
from repro.core.sizing import max_unit_capacitance, voltage_after_series_switch
from repro.harvester.synthetic import solar_trace
from repro.units import microfarads


def design_fabric() -> ReactConfig:
    """Size a three-bank fabric and print the Equation 1/2 checks."""
    last_level = microfarads(470.0)
    high, low = 3.5, 1.9

    print("Sizing constraint (Equation 2) for a 470 uF last-level buffer:")
    for cells in (2, 3, 4):
        limit = max_unit_capacitance(cells, last_level, high, low)
        limit_text = (
            f"{limit * 1e6:.0f} uF" if limit != float("inf") else "unconstrained"
        )
        print(f"  {cells}-cell bank: unit capacitance must stay below {limit_text}")

    banks = (
        BankSpec(unit_capacitance=microfarads(220.0), count=3, label="fast"),
        BankSpec(unit_capacitance=microfarads(470.0), count=3, label="medium"),
        BankSpec(
            unit_capacitance=microfarads(2200.0),
            count=2,
            supercapacitor=True,
            label="bulk",
        ),
    )
    config = ReactConfig(last_level_capacitance=last_level, banks=banks)

    print("\nReclamation spike check (Equation 1):")
    for spec in banks:
        spike = voltage_after_series_switch(
            spec.count, spec.unit_capacitance, last_level, low
        )
        print(
            f"  {spec.label}: last-level buffer reaches {spike:.2f} V after reclamation "
            f"(limit {high} V)"
        )
    print(
        f"\nFabric range: {config.minimum_capacitance * 1e6:.0f} uF – "
        f"{config.maximum_capacitance * 1e3:.2f} mF\n"
    )
    return config


#: CI smoke runs set this to keep every example inside a fast budget.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")


def main() -> None:
    custom = design_fabric()
    duration = 300.0 if QUICK else 900.0
    trace = solar_trace(
        duration=duration, mean_power=1.5e-3, seed=11, name="Garden solar"
    )

    print(f"{'fabric':16s} {'latency':>9s} {'measurements':>13s}")
    for name, config in (
        ("Table 1 fabric", table1_config()), ("custom fabric", custom)
    ):
        buffer = ReactBuffer(config=config, name=name)
        system = BatterylessSystem.build(trace, buffer, SenseAndCompute())
        result = Simulator(system).run()
        latency = f"{result.latency:.1f} s" if result.started else "never"
        print(f"{name:16s} {latency:>9s} {result.work_units:>13.0f}")


if __name__ == "__main__":
    main()
