"""Package metadata and install configuration.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so the package installs
with any setuptools new enough for ``src/``-layout editable installs — the
CI matrix relies on ``pip install -e .`` working on a clean checkout of
every supported interpreter.

``python_requires`` and the numpy floor below define the support window the
CI matrix actually exercises (3.10–3.12): numpy 1.22 is the oldest release
with wheels for all of them, and nothing in the library uses any newer
numpy API.
"""

from setuptools import find_packages, setup

setup(
    name="react-repro",
    version="0.2.0",
    description=(
        "Reproduction of an ASPLOS'24 energy-adaptive buffer architecture "
        "study: simulation engine, buffer models, and the paper's experiment "
        "grid"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
    ],
    extras_require={
        "test": [
            "pytest>=7.0",
            "pytest-benchmark>=4.0",
            "hypothesis>=6.0",
        ],
    },
    entry_points={
        "console_scripts": [
            "react-repro=repro.experiments.cli:main",
        ],
    },
)
