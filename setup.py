"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in environments whose tooling predates PEP 660
editable installs (e.g. ``pip install -e . --no-use-pep517`` without the
``wheel`` package available).
"""

from setuptools import setup

setup()
