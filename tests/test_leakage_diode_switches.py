"""Leakage models, diode models, and reconfiguration switches."""

import pytest
from hypothesis import given, strategies as st

from repro.capacitors.diode import IdealDiode, SchottkyDiode
from repro.capacitors.leakage import (
    ConstantCurrentLeakage,
    NoLeakage,
    VoltageProportionalLeakage,
)
from repro.capacitors.switches import BreakBeforeMakeSwitch, DpdtSwitch, SwitchState
from repro.exceptions import ConfigurationError


class TestLeakageModels:
    def test_no_leakage_draws_nothing(self):
        assert NoLeakage().current(5.0) == 0.0
        assert NoLeakage().charge_lost(5.0, 100.0) == 0.0

    def test_constant_leakage_draws_fixed_current(self):
        model = ConstantCurrentLeakage(2e-6)
        assert model.current(3.0) == pytest.approx(2e-6)
        assert model.charge_lost(3.0, 10.0) == pytest.approx(2e-5)

    def test_constant_leakage_stops_at_zero_voltage(self):
        assert ConstantCurrentLeakage(2e-6).current(0.0) == 0.0

    def test_constant_leakage_rejects_negative_current(self):
        with pytest.raises(ConfigurationError):
            ConstantCurrentLeakage(-1e-6)

    def test_proportional_leakage_scales_with_voltage(self):
        model = VoltageProportionalLeakage(rated_current=28e-6, rated_voltage=6.3)
        assert model.current(6.3) == pytest.approx(28e-6)
        assert model.current(3.15) == pytest.approx(14e-6)
        assert model.current(0.0) == 0.0

    def test_proportional_leakage_equivalent_resistance(self):
        model = VoltageProportionalLeakage(rated_current=28e-6, rated_voltage=6.3)
        assert model.equivalent_resistance == pytest.approx(6.3 / 28e-6)
        lossless = VoltageProportionalLeakage(rated_current=0.0, rated_voltage=6.3)
        assert lossless.equivalent_resistance == float("inf")

    def test_proportional_leakage_validation(self):
        with pytest.raises(ConfigurationError):
            VoltageProportionalLeakage(rated_current=-1e-6, rated_voltage=6.3)
        with pytest.raises(ConfigurationError):
            VoltageProportionalLeakage(rated_current=1e-6, rated_voltage=0.0)

    @given(voltage=st.floats(0.0, 10.0))
    def test_proportional_leakage_nonnegative(self, voltage):
        model = VoltageProportionalLeakage(rated_current=28e-6, rated_voltage=6.3)
        assert model.current(voltage) >= 0.0


class TestDiodes:
    def test_ideal_diode_drop_is_resistive(self):
        diode = IdealDiode(on_resistance=0.08)
        assert diode.forward_drop(1e-3) == pytest.approx(8e-5)
        assert diode.forward_drop(0.0) == 0.0

    def test_schottky_drop_is_fixed(self):
        diode = SchottkyDiode(drop=0.34)
        assert diode.forward_drop(1e-3) == pytest.approx(0.34)
        assert diode.forward_drop(0.0) == 0.0

    def test_ideal_diode_loses_far_less_than_schottky(self):
        ideal = IdealDiode()
        schottky = SchottkyDiode()
        current = 1e-3
        assert ideal.power_loss(current) < 0.05 * schottky.power_loss(current)

    def test_conduction_direction(self):
        diode = SchottkyDiode(drop=0.3)
        assert diode.conducts(3.0, 2.0)
        assert not diode.conducts(2.0, 3.0)
        assert not diode.conducts(2.0, 1.9)  # below the forward drop

    def test_transfer_efficiency_bounds(self):
        diode = SchottkyDiode(drop=0.34)
        assert diode.transfer_efficiency(1e-3, 3.0) == pytest.approx(1.0 - 0.34 / 3.0)
        assert diode.transfer_efficiency(1e-3, 0.2) == 0.0
        assert diode.transfer_efficiency(0.0, 3.0) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IdealDiode(on_resistance=-1.0)
        with pytest.raises(ConfigurationError):
            IdealDiode(quiescent_current=-1.0)
        with pytest.raises(ConfigurationError):
            SchottkyDiode(drop=-0.1)


class TestSwitches:
    def test_break_before_make_counts_actuations(self):
        switch = BreakBeforeMakeSwitch()
        assert switch.state is SwitchState.OPEN
        switch.set_state(SwitchState.POSITION_A)
        switch.set_state(SwitchState.POSITION_B)
        assert switch.actuation_count == 2
        assert switch.energy_spent == pytest.approx(2 * switch.actuation_energy)

    def test_same_state_is_free(self):
        switch = BreakBeforeMakeSwitch(state=SwitchState.POSITION_A)
        assert switch.set_state(SwitchState.POSITION_A) == 0.0
        assert switch.actuation_count == 0

    def test_transition_between_positions_reports_break_time(self):
        switch = BreakBeforeMakeSwitch(break_time=1e-4, state=SwitchState.POSITION_A)
        assert switch.set_state(SwitchState.POSITION_B) == pytest.approx(1e-4)

    def test_closing_from_open_reports_break_time(self):
        switch = BreakBeforeMakeSwitch(break_time=1e-4)
        assert switch.set_state(SwitchState.POSITION_A) == pytest.approx(1e-4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BreakBeforeMakeSwitch(break_time=-1.0)
        with pytest.raises(ConfigurationError):
            BreakBeforeMakeSwitch(actuation_energy=-1.0)

    def test_dpdt_ganged_poles(self):
        switch = DpdtSwitch()
        open_time = switch.set_state(SwitchState.POSITION_A)
        assert open_time >= 0.0
        assert switch.state is SwitchState.POSITION_A
        assert switch.actuation_count == 1
        assert switch.energy_spent == pytest.approx(switch.actuation_energy)
