"""Workload state machines: DE, SC, RT, PF driven step by step."""

import pytest

from repro.buffers.dewdrop import DewdropBuffer
from repro.buffers.static import StaticBuffer
from repro.exceptions import ConfigurationError
from repro.platform.mcu import PowerMode
from repro.workloads.base import PowerDemand, StepContext
from repro.workloads.data_encryption import DataEncryption
from repro.workloads.packet_forwarding import PacketForwarding
from repro.workloads.radio_transmit import RadioTransmit
from repro.workloads.sense_compute import SenseAndCompute
from repro.units import millifarads


def full_buffer(capacitance=millifarads(10.0), voltage=3.3) -> StaticBuffer:
    buffer = StaticBuffer(capacitance, name="test")
    buffer.harvest(0.5 * capacitance * voltage * voltage, dt=1.0)
    return buffer


def drive(workload, buffer, duration, dt=0.05, system_on=True, start=0.0):
    """Step a workload for ``duration`` simulated seconds."""
    time = start
    demands = []
    while time < start + duration:
        demands.append(
            workload.step(
                StepContext(time=time, dt=dt, system_on=system_on, buffer=buffer)
            )
        )
        time += dt
    return demands


class TestPowerDemand:
    def test_factories(self):
        assert PowerDemand.off().mcu_mode is PowerMode.OFF
        assert PowerDemand.sleeping().mcu_mode is PowerMode.SLEEP
        assert PowerDemand.deep_sleeping().mcu_mode is PowerMode.DEEP_SLEEP
        assert PowerDemand.active(1e-3).peripheral_current == pytest.approx(1e-3)


class TestDataEncryption:
    def test_counts_units_while_active(self):
        workload = DataEncryption(unit_time=0.1)
        drive(workload, full_buffer(), duration=1.0, dt=0.05)
        assert workload.work_units == pytest.approx(10.0, abs=1.0)

    def test_always_demands_active_when_on(self):
        workload = DataEncryption()
        demands = drive(workload, full_buffer(), duration=0.2)
        assert all(demand.mcu_mode is PowerMode.ACTIVE for demand in demands)

    def test_no_progress_while_off(self):
        workload = DataEncryption()
        drive(workload, full_buffer(), duration=1.0, system_on=False)
        assert workload.work_units == 0.0

    def test_power_loss_discards_partial_batch(self):
        workload = DataEncryption(unit_time=1.0)
        drive(workload, full_buffer(), duration=0.5)
        workload.on_power_loss(0.5)
        assert workload.metrics().failed_operations == 1

    def test_kernel_execution_path(self):
        workload = DataEncryption(unit_time=0.05, execute_kernel=True)
        drive(workload, full_buffer(), duration=0.2)
        assert workload.work_units >= 1.0
        assert workload.metrics().extra["self_test_passed"] == 1.0

    def test_reset(self):
        workload = DataEncryption(unit_time=0.1)
        drive(workload, full_buffer(), duration=0.5)
        workload.reset()
        assert workload.work_units == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DataEncryption(unit_time=0.0)


class TestSenseAndCompute:
    def test_measurement_completed_after_deadline(self):
        workload = SenseAndCompute(period=1.0, sample_time=0.05, compute_time=0.05)
        drive(workload, full_buffer(), duration=3.0, dt=0.01)
        assert workload.work_units >= 2.0

    def test_deadlines_missed_while_off(self):
        workload = SenseAndCompute(period=1.0)
        drive(workload, full_buffer(), duration=5.0, dt=0.1, system_on=False)
        assert workload.metrics().missed_events >= 4

    def test_microphone_current_requested_while_sampling(self):
        workload = SenseAndCompute(period=0.5, sample_time=0.2, compute_time=0.1)
        demands = drive(workload, full_buffer(), duration=0.7, dt=0.05)
        assert any(demand.peripheral_current > 0.0 for demand in demands)

    def test_power_loss_aborts_measurement(self):
        workload = SenseAndCompute(period=0.1, sample_time=0.5, compute_time=0.5)
        drive(workload, full_buffer(), duration=0.3, dt=0.05)
        workload.on_power_loss(0.3)
        assert workload.metrics().failed_operations == 1

    def test_kernel_produces_readings(self):
        workload = SenseAndCompute(
            period=0.2, sample_time=0.02, compute_time=0.02, execute_kernel=True
        )
        drive(workload, full_buffer(), duration=1.0, dt=0.01)
        assert len(workload.readings) >= 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SenseAndCompute(period=0.0)


class TestRadioTransmit:
    def test_transmits_when_data_available(self):
        workload = RadioTransmit(data_period=0.5, use_longevity_guarantee=False)
        drive(workload, full_buffer(), duration=3.0, dt=0.01)
        assert workload.work_units >= 2.0

    def test_waits_in_deep_sleep_when_no_data(self):
        workload = RadioTransmit(data_period=100.0, use_longevity_guarantee=False)
        demands = drive(workload, full_buffer(), duration=0.5, dt=0.05)
        assert all(demand.mcu_mode is PowerMode.DEEP_SLEEP for demand in demands)

    def test_backlog_accumulates_while_off(self):
        workload = RadioTransmit(data_period=1.0)
        drive(workload, full_buffer(), duration=5.0, dt=0.5, system_on=False)
        assert workload.backlog >= 4

    def test_longevity_guarantee_waits_for_reserve(self):
        buffer = DewdropBuffer(millifarads(10.0))  # supports longevity, starts empty
        workload = RadioTransmit(data_period=0.1, use_longevity_guarantee=True)
        demands = drive(workload, buffer, duration=0.5, dt=0.05)
        assert workload.work_units == 0.0
        assert any(demand.mcu_mode is PowerMode.DEEP_SLEEP for demand in demands)
        assert buffer.longevity_request > 0.0

    def test_power_loss_mid_transmission_counts_failure(self):
        workload = RadioTransmit(data_period=0.1, use_longevity_guarantee=False)
        drive(workload, full_buffer(), duration=0.1, dt=0.01)
        workload.on_power_loss(0.1)
        assert workload.metrics().failed_operations >= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RadioTransmit(data_period=0.0)
        with pytest.raises(ConfigurationError):
            RadioTransmit(energy_margin=0.5)


class TestPacketForwarding:
    def test_receives_and_forwards(self):
        workload = PacketForwarding(
            mean_interarrival=0.5, use_longevity_guarantee=False, seed=4
        )
        drive(workload, full_buffer(), duration=10.0, dt=0.01)
        assert workload.packets_received >= 5
        assert workload.packets_forwarded >= 3

    def test_packets_missed_while_off(self):
        workload = PacketForwarding(mean_interarrival=0.5, seed=4)
        drive(workload, full_buffer(), duration=10.0, dt=0.1, system_on=False)
        assert workload.metrics().missed_events >= 5

    def test_packets_missed_when_energy_too_low(self):
        buffer = StaticBuffer(millifarads(1.0))  # empty: cannot afford a receive
        workload = PacketForwarding(mean_interarrival=0.5, seed=4)
        drive(workload, buffer, duration=5.0, dt=0.05)
        assert workload.packets_received == 0
        assert workload.metrics().missed_events >= 3

    def test_listens_in_deep_sleep_between_packets(self):
        workload = PacketForwarding(mean_interarrival=1000.0, seed=4)
        demands = drive(workload, full_buffer(), duration=0.5, dt=0.05)
        assert all(demand.mcu_mode is PowerMode.DEEP_SLEEP for demand in demands)
        assert all(
            demand.peripheral_current == pytest.approx(workload.listen_current)
            for demand in demands
        )

    def test_power_loss_keeps_queued_packet(self):
        workload = PacketForwarding(
            mean_interarrival=0.2, use_longevity_guarantee=False, seed=4
        )
        drive(workload, full_buffer(), duration=0.5, dt=0.01)
        before = workload.packets_forwarded
        workload.on_power_loss(0.5)
        drive(workload, full_buffer(), duration=3.0, dt=0.01, start=0.5)
        assert workload.packets_forwarded >= before

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PacketForwarding(mean_interarrival=0.0)
        with pytest.raises(ConfigurationError):
            PacketForwarding(queue_limit=0)
