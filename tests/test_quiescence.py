"""The workload quiescence protocol and the on-phase fast path.

Three layers are pinned here:

* the protocol itself — which hints each benchmark workload declares, the
  demand they promise, and that ``skip_quiescent`` reproduces stepped
  execution exactly;
* the scalar engine's on-phase fast forwarding — bit-identical counters
  (including ``on_time``/``active_time``) and 1e-9 ledgers against
  ``Simulator(fast_forward=False)`` on the full quick grid for every
  buffer in ``BUFFER_ORDER``, plus the related-work extensions whose
  longevity waits exercise the wake-voltage (Dewdrop) and usable-energy
  (Capybara) guards;
* the batch engine's per-lane hint masks — the same discipline against the
  scalar engine on longevity-heavy lanes.
"""

import math

import pytest

from repro.buffers.capybara import CapybaraBuffer
from repro.buffers.dewdrop import DewdropBuffer
from repro.buffers.static import StaticBuffer
from repro.experiments.runner import (
    BUFFER_ORDER,
    ExperimentSettings,
    make_workload,
    standard_buffers,
)
from repro.harvester.synthetic import TABLE3_ORDER
from repro.platform.mcu import MSP430FR5994, PowerMode
from repro.sim.batch import BatchSimulator
from repro.sim.engine import Simulator
from repro.sim.recorder import Recorder
from repro.sim.system import BatterylessSystem
from repro.units import microfarads, millifarads
from repro.workloads.base import PowerDemand, QuiescenceHint, StepContext
from repro.workloads.data_encryption import DataEncryption
from repro.workloads.packet_forwarding import PacketForwarding
from repro.workloads.radio_transmit import RadioTransmit
from repro.workloads.sense_compute import SenseAndCompute

QUICK = ExperimentSettings(quick=True)

#: Result fields the on-phase fast path must reproduce bit-exactly: they
#: are counters, or per-step additive accumulations whose arithmetic the
#: fast path replays operation for operation.
EXACT_FIELDS = (
    "latency",
    "simulated_time",
    "on_time",
    "active_time",
    "enable_count",
    "brownout_count",
    "work_units",
)


def simulator_kwargs(settings=QUICK):
    return dict(
        dt_on=settings.effective_dt_on,
        dt_off=settings.effective_dt_off,
        max_drain_time=settings.max_drain_time,
    )


def build_system(trace, buffer, workload_name, trace_name):
    return BatterylessSystem.build(
        trace, buffer, make_workload(workload_name, trace_name), mcu=MSP430FR5994()
    )


def assert_results_equivalent(reference, fast):
    """``fast_forward=True`` results against the step-by-step oracle."""
    for field in EXACT_FIELDS:
        assert getattr(reference, field) == getattr(fast, field), field
    assert reference.workload_metrics == fast.workload_metrics
    for key, value in reference.buffer_ledger.items():
        assert fast.buffer_ledger[key] == pytest.approx(
            value, rel=1e-9, abs=1e-15
        ), key


def on_ctx(buffer=None, time=0.0, dt=0.02):
    return StepContext(time, dt, True, buffer or StaticBuffer(millifarads(10.0)))


class TestProtocolHints:
    """Which promises each benchmark workload makes, and when."""

    def test_data_encryption_is_always_quiescent_while_on(self):
        workload = DataEncryption()
        hint = workload.quiescent_until(on_ctx())
        assert hint.no_demand_change_before_time == math.inf
        assert hint.wake_on_voltage is None
        assert hint.demand == PowerDemand.active()

    def test_sense_compute_hints_until_the_next_deadline(self):
        workload = SenseAndCompute(period=5.0)
        buffer = StaticBuffer(millifarads(10.0))
        # The first deadline fires at t = 0 and starts a measurement; step
        # through it until the workload is idle again, then the promise
        # must run to the next deadline at t = 5.
        time = 0.0
        while workload._phase is not None or time == 0.0:
            workload.step(StepContext(time, 0.02, True, buffer))
            time += 0.02
        hint = workload.quiescent_until(on_ctx(buffer, time=time))
        assert hint is not None
        assert hint.no_demand_change_before_time == 5.0
        assert hint.wake_on_event
        assert hint.demand == PowerDemand.sleeping()

    def test_sense_compute_makes_no_promise_during_a_measurement(self):
        workload = SenseAndCompute(period=5.0)
        buffer = StaticBuffer(millifarads(10.0))
        time = 0.0
        # Step across the first deadline (phase = 0): the sampling phase
        # starts immediately and suspends the promise.
        demand = workload.step(StepContext(time, 0.02, True, buffer))
        assert demand.mcu_mode is PowerMode.ACTIVE
        assert workload.quiescent_until(on_ctx(buffer, time=0.02)) is None

    def test_radio_transmit_waiting_for_data_hints_to_the_next_reading(self):
        workload = RadioTransmit(data_period=2.5)
        buffer = StaticBuffer(millifarads(10.0))
        demand = workload.step(StepContext(0.0, 0.02, True, buffer))
        assert demand == PowerDemand.deep_sleeping()
        hint = workload.quiescent_until(on_ctx(buffer, time=0.02))
        assert hint.no_demand_change_before_time == 2.5
        assert hint.demand == PowerDemand.deep_sleeping()

    def test_radio_transmit_waiting_for_energy_uses_the_buffer_wake_voltage(self):
        workload = RadioTransmit(data_period=2.5)
        buffer = DewdropBuffer(millifarads(10.0))
        # Advance past the first reading so a transmission wants to start;
        # the empty buffer cannot satisfy the reserve, so the workload
        # parks in deep sleep with a pending request.
        time = 0.0
        while time < 2.6:
            demand = workload.step(StepContext(time, 0.02, True, buffer))
            time += 0.02
        assert demand == PowerDemand.deep_sleeping()
        assert buffer.longevity_request > 0.0
        hint = workload.quiescent_until(on_ctx(buffer, time=time))
        assert hint.no_demand_change_before_time == math.inf
        assert hint.wake_on_voltage == buffer.required_voltage(
            buffer.longevity_request
        )
        assert hint.demand == PowerDemand.deep_sleeping()

    def test_packet_forwarding_hints_to_the_next_arrival(self):
        workload = PacketForwarding()
        buffer = StaticBuffer(millifarads(10.0))
        workload.step(StepContext(0.0, 0.02, True, buffer))
        hint = workload.quiescent_until(on_ctx(buffer, time=0.02))
        assert hint is not None
        assert hint.no_demand_change_before_time == pytest.approx(
            workload._arrivals.next_fire_time
        )
        assert hint.wake_on_event
        assert hint.demand == PowerDemand.deep_sleeping(
            peripheral_current=workload.listen_current
        )

    def test_longevity_wake_voltage_defaults(self):
        assert StaticBuffer(millifarads(10.0)).longevity_wake_voltage() is None
        dewdrop = DewdropBuffer(millifarads(10.0))
        assert dewdrop.longevity_wake_voltage() is None  # no pending request
        dewdrop.request_longevity(1e-3)
        assert dewdrop.longevity_wake_voltage() == dewdrop.required_voltage(1e-3)
        capybara = CapybaraBuffer()
        capybara.request_longevity(1e-3)
        assert capybara.longevity_wake_voltage() is None  # energy-guarded

    def test_skip_quiescent_replays_data_encryption_exactly(self):
        """DE's override must track the stepped float trajectory bit for bit."""
        stepped = DataEncryption(unit_time=0.15)
        skipped = DataEncryption(unit_time=0.15)
        buffer = StaticBuffer(millifarads(10.0))
        dt = 0.02
        time = 0.0
        for _ in range(1237):
            stepped.step(StepContext(time, dt, True, buffer))
            time += dt
        skipped.skip_quiescent(StepContext(0.0, time - 0.0, True, buffer), 1237, dt)
        assert skipped._progress == stepped._progress
        assert skipped.metrics().work_units == stepped.metrics().work_units

    def test_skip_quiescent_default_aggregates_one_step(self):
        """The base default is one aggregated step over the window."""
        workload = SenseAndCompute(period=50.0)
        buffer = StaticBuffer(millifarads(10.0))
        workload.step(StepContext(0.0, 0.02, True, buffer))
        workload.skip_quiescent(StepContext(0.02, 1.0, True, buffer), 50, 0.02)
        assert workload._last_time == pytest.approx(1.02)


class TestScalarOnPhaseEquivalence:
    """The acceptance gate: fast == step-by-step on the full quick grid."""

    @pytest.mark.parametrize("buffer_name", BUFFER_ORDER)
    def test_full_quick_grid_matches_step_by_step(self, buffer_name):
        kwargs = simulator_kwargs()
        for trace_name in TABLE3_ORDER:
            trace = QUICK.trace(trace_name)
            for workload_name in ("DE", "SC", "RT", "PF"):

                def build():
                    buffer = next(
                        b for b in standard_buffers() if b.name == buffer_name
                    )
                    return build_system(trace, buffer, workload_name, trace_name)

                reference = Simulator(build(), fast_forward=False, **kwargs).run()
                fast = Simulator(build(), fast_forward=True, **kwargs).run()
                assert_results_equivalent(reference, fast)

    @pytest.mark.parametrize(
        "buffer_factory",
        [
            lambda: DewdropBuffer(millifarads(10.0)),
            lambda: CapybaraBuffer(
                base_capacitance=microfarads(770.0),
                task_capacitance=millifarads(10.0),
            ),
        ],
        ids=["Dewdrop", "Capybara"],
    )
    @pytest.mark.parametrize("workload_name", ["RT", "PF"])
    def test_longevity_waits_match_step_by_step(self, buffer_factory, workload_name):
        """Deep-sleep wait-for-energy stretches: the headline on-phase case.

        Dewdrop expresses its reserve as a wake voltage (the exact-stop
        path); Capybara has no voltage equivalent and exercises the
        conservative usable-energy guard.
        """
        kwargs = simulator_kwargs()
        for trace_name in ("RF Cart", "Solar Campus"):
            trace = QUICK.trace(trace_name)
            reference = Simulator(
                build_system(trace, buffer_factory(), workload_name, trace_name),
                fast_forward=False,
                **kwargs,
            ).run()
            fast = Simulator(
                build_system(trace, buffer_factory(), workload_name, trace_name),
                fast_forward=True,
                **kwargs,
            ).run()
            assert_results_equivalent(reference, fast)

    def test_recorder_timeline_is_preserved_through_on_phase_skips(self):
        """DE on a steady trace is on almost continuously: every recorded
        sample must still land on the same timestamps with the same state."""
        import numpy as np

        from repro.harvester.trace import PowerTrace

        trace = PowerTrace(np.full(60, 2e-3), sample_period=1.0, name="steady")
        recorders = []
        for fast_forward in (False, True):
            recorder = Recorder(record_period=0.5)
            system = build_system(
                trace, StaticBuffer(millifarads(10.0)), "DE", "RF Cart"
            )
            Simulator(
                system,
                dt_on=0.02,
                dt_off=0.1,
                max_drain_time=30.0,
                recorder=recorder,
                fast_forward=fast_forward,
            ).run()
            recorders.append(recorder)
        reference, fast = recorders
        assert len(fast) == len(reference)
        for ref_point, fast_point in zip(reference.points, fast.points):
            assert fast_point.time == ref_point.time
            assert fast_point.voltage == pytest.approx(ref_point.voltage, rel=1e-12)
            assert fast_point.system_on == ref_point.system_on

    def test_on_phase_skip_reduces_workload_dispatch(self):
        """The fast path must actually aggregate on-phase steps."""
        import numpy as np

        from repro.harvester.trace import PowerTrace

        trace = PowerTrace(np.full(60, 2e-3), sample_period=1.0, name="steady")
        calls = {False: 0, True: 0}
        for fast_forward in (False, True):
            system = build_system(
                trace, StaticBuffer(millifarads(10.0)), "DE", "RF Cart"
            )
            workload = system.workload
            original = workload.step

            def counting_step(ctx, _original=original, _key=fast_forward):
                calls[_key] += 1
                return _original(ctx)

            workload.step = counting_step
            Simulator(
                system,
                dt_on=0.02,
                dt_off=0.1,
                max_drain_time=30.0,
                fast_forward=fast_forward,
            ).run()
        assert calls[True] < calls[False] / 5


class TestBatchHintMasks:
    """Batched lanes honour the same protocol through per-lane hint masks."""

    @staticmethod
    def lanes(trace, trace_name):
        def fresh_buffers():
            return [
                StaticBuffer(microfarads(770.0), name="770 uF"),
                StaticBuffer(millifarads(10.0), name="10 mF"),
                StaticBuffer(millifarads(17.0), name="17 mF"),
                DewdropBuffer(millifarads(10.0)),
            ]

        return [
            build_system(trace, buffer, workload_name, trace_name)
            for workload_name in ("RT", "PF", "DE", "SC")
            for buffer in fresh_buffers()
        ]

    def test_longevity_heavy_lanes_match_scalar(self):
        """RT/PF lanes exercise the Dewdrop wake-voltage mask; DE/SC the
        expiry mask.  Exact counters and exact-order ledgers against pure
        step-by-step scalar execution."""
        trace = QUICK.trace("RF Cart")
        reference = [
            Simulator(system, fast_forward=False, **simulator_kwargs()).run()
            for system in self.lanes(trace, "RF Cart")
        ]
        batched = BatchSimulator(
            self.lanes(trace, "RF Cart"), scalar_tail_lanes=0, **simulator_kwargs()
        ).run()
        for ref, got in zip(reference, batched):
            for field in EXACT_FIELDS:
                assert getattr(ref, field) == getattr(got, field), field
            assert ref.workload_metrics == got.workload_metrics
            for key, value in ref.buffer_ledger.items():
                assert got.buffer_ledger[key] == value, key

    def test_fast_forward_false_disables_the_hint_masks(self):
        """The step-by-step ablation must not consult hints at all."""
        trace = QUICK.trace("RF Cart")
        systems = self.lanes(trace, "RF Cart")
        hint_calls = 0
        for system in systems:
            original = system.workload.quiescent_until

            def counting(ctx, _original=original):
                nonlocal hint_calls
                hint_calls += 1
                return _original(ctx)

            system.workload.quiescent_until = counting
        BatchSimulator(
            systems, scalar_tail_lanes=0, fast_forward=False, **simulator_kwargs()
        ).run()
        assert hint_calls == 0

    def test_hint_expiry_is_exclusive_on_the_timer_grid(self):
        """A step ending exactly at RT's data-period expiry must run
        normally: ``_accumulate_data`` fires on an inclusive comparison,
        so skipping that step would land the reading one step late.
        Regression test for the batch mask treating the expiry as
        inclusive (dt_on = 0.5 makes step ends hit the 2.5 s grid
        exactly)."""
        import numpy as np

        from repro.harvester.trace import PowerTrace

        trace = PowerTrace(np.full(40, 5e-3), sample_period=1.0, name="steady")

        def systems():
            return [
                build_system(
                    trace, StaticBuffer(size, name=name), "RT", "RF Cart"
                )
                for name, size in (
                    ("10 mF", millifarads(10.0)),
                    ("17 mF", millifarads(17.0)),
                )
            ]

        kwargs = dict(dt_on=0.5, dt_off=0.5, max_drain_time=10.0)
        reference = [
            Simulator(system, fast_forward=False, **kwargs).run()
            for system in systems()
        ]
        batched = BatchSimulator(systems(), scalar_tail_lanes=0, **kwargs).run()
        for ref, got in zip(reference, batched):
            for field in EXACT_FIELDS:
                assert getattr(ref, field) == getattr(got, field), field
            assert ref.workload_metrics == got.workload_metrics

    def test_quiescence_hint_shape(self):
        """The hint tuple is the documented three-field contract + demand."""
        hint = QuiescenceHint(12.5)
        assert hint.no_demand_change_before_time == 12.5
        assert hint.wake_on_voltage is None
        assert hint.wake_on_event is False
        assert hint.demand is None
