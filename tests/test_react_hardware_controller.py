"""REACT hardware fabric, software controller, and the buffer adapter."""

import pytest

from repro.buffers.react_adapter import ReactBuffer
from repro.core.bank import BankState
from repro.core.config import BankSpec, ReactConfig, table1_config
from repro.core.controller import ControllerAction, ReactController
from repro.core.hardware import ReactHardware
from repro.platform.monitor import BufferSignal
from repro.units import microfarads


def small_config(**overrides) -> ReactConfig:
    """A two-bank fabric that keeps hardware tests quick and legible."""
    parameters = dict(
        last_level_capacitance=microfarads(770.0),
        banks=(
            BankSpec(unit_capacitance=microfarads(220.0), count=3, label="bankA"),
            BankSpec(unit_capacitance=microfarads(880.0), count=3, label="bankB"),
        ),
    )
    parameters.update(overrides)
    return ReactConfig(**parameters)


class TestReactHardware:
    def test_cold_start_only_charges_last_level_buffer(self):
        hardware = ReactHardware(small_config())
        hardware.harvest(1e-3)
        assert hardware.output_voltage > 0.0
        assert all(bank.cell_voltage == 0.0 for bank in hardware.banks)
        assert hardware.equivalent_capacitance == pytest.approx(770e-6)

    def test_harvest_goes_to_lowest_voltage_connected_element(self):
        hardware = ReactHardware(small_config())
        hardware.last_level.set_voltage(3.5)
        hardware.banks[0].connect_series()
        stored = hardware.harvest(1e-4)
        assert stored > 0.0
        assert hardware.banks[0].cell_voltage > 0.0
        assert hardware.last_level.voltage == pytest.approx(3.5)

    def test_harvest_clips_when_everything_full(self):
        config = small_config()
        hardware = ReactHardware(config)
        hardware.last_level.set_voltage(config.max_voltage)
        clipped_before = hardware.energy_clipped
        hardware.harvest(1e-3)
        assert hardware.energy_clipped == pytest.approx(clipped_before + 1e-3)

    def test_replenish_moves_energy_from_bank_to_last_level(self):
        hardware = ReactHardware(small_config())
        hardware.last_level.set_voltage(2.0)
        bank = hardware.banks[1]
        bank.connect_series()
        bank.set_cell_voltage(1.2)  # output 3.6 V > last-level 2.0 V
        moved = hardware.replenish()
        assert moved > 0.0
        assert hardware.last_level.voltage > 2.0
        assert hardware.transfer_loss > 0.0

    def test_replenish_never_exceeds_max_voltage(self):
        config = small_config()
        hardware = ReactHardware(config)
        hardware.last_level.set_voltage(3.5)
        bank = hardware.banks[1]
        bank.connect_series()
        bank.set_cell_voltage(3.5)  # output 10.5 V
        hardware.replenish()
        assert hardware.last_level.voltage <= config.max_voltage + 1e-9

    def test_signal_thresholds(self):
        config = small_config()
        hardware = ReactHardware(config)
        hardware.last_level.set_voltage(3.55)
        assert hardware.signal() is BufferSignal.NEAR_FULL
        hardware.last_level.set_voltage(1.85)
        assert hardware.signal() is BufferSignal.NEAR_EMPTY
        hardware.last_level.set_voltage(2.5)
        assert hardware.signal() is BufferSignal.OK

    def test_capacitance_level_counts_steps(self):
        hardware = ReactHardware(small_config())
        assert hardware.capacitance_level == 0
        hardware.banks[0].connect_series()
        assert hardware.capacitance_level == 1
        hardware.banks[0].to_parallel()
        hardware.banks[1].connect_series()
        assert hardware.capacitance_level == 3

    def test_usable_energy_counts_connected_banks_only(self):
        config = small_config()
        hardware = ReactHardware(config)
        hardware.last_level.set_voltage(3.0)
        base = hardware.usable_energy()
        hardware.banks[0].connect_series()
        hardware.banks[0].set_cell_voltage(1.0)
        assert hardware.usable_energy() > base

    def test_leakage_applies_to_every_capacitor(self):
        hardware = ReactHardware(small_config())
        hardware.last_level.set_voltage(3.0)
        hardware.banks[0].connect_series()
        hardware.banks[0].set_cell_voltage(1.0)
        leaked = hardware.apply_leakage(100.0)
        assert leaked > 0.0

    def test_reset(self):
        hardware = ReactHardware(small_config())
        hardware.harvest(1e-3)
        hardware.banks[0].connect_series()
        hardware.reset()
        assert hardware.stored_energy == 0.0
        assert hardware.capacitance_level == 0


class TestReactController:
    def make(self, **config_overrides):
        config = small_config(**config_overrides)
        hardware = ReactHardware(config)
        return hardware, ReactController(hardware, config)

    def test_poll_respects_poll_period(self):
        hardware, controller = self.make()
        hardware.last_level.set_voltage(2.5)
        assert controller.poll(0.0) is ControllerAction.NONE
        assert controller.poll(0.01) is ControllerAction.NONE
        assert controller.poll_count == 1  # second call was before the next period

    def test_step_up_on_near_full(self):
        hardware, controller = self.make()
        hardware.last_level.set_voltage(3.55)
        action = controller.poll(0.0)
        assert action is ControllerAction.STEP_UP
        assert hardware.banks[0].state is BankState.SERIES

    def test_expansion_rate_limited(self):
        hardware, controller = self.make()
        hardware.last_level.set_voltage(3.55)
        controller.poll(0.0)
        action = controller.poll(controller.config.poll_period)
        assert action is ControllerAction.NONE  # within the expansion hold time
        later = controller.expansion_min_interval + controller.config.poll_period
        assert controller.poll(later) is ControllerAction.STEP_UP

    def test_step_down_reclaims_until_signal_clears(self):
        hardware, controller = self.make()
        # Both banks parallel and charged; the last-level buffer is nearly empty.
        for bank in hardware.banks:
            bank.connect_series()
            bank.to_parallel()
            bank.set_cell_voltage(1.9)
        hardware.last_level.set_voltage(1.85)
        action = controller.poll(0.0)
        assert action is ControllerAction.STEP_DOWN
        assert controller.step_down_count >= 1
        assert hardware.last_level.voltage > 1.85

    def test_ordering_bank_by_bank(self):
        hardware, controller = self.make()
        assert controller.step_up() and hardware.banks[0].state is BankState.SERIES
        assert controller.step_up() and hardware.banks[0].state is BankState.PARALLEL
        assert controller.step_up() and hardware.banks[1].state is BankState.SERIES
        assert controller.step_up() and hardware.banks[1].state is BankState.PARALLEL
        assert not controller.step_up()

    def test_longevity_interface(self):
        hardware, controller = self.make()
        controller.set_minimum_energy(1e-3)
        assert not controller.longevity_satisfied()
        hardware.last_level.set_voltage(3.3)
        hardware.banks[0].connect_series()
        hardware.banks[0].set_cell_voltage(1.2)
        hardware.banks[0].to_parallel()
        if not controller.longevity_satisfied():
            hardware.banks[1].connect_series()
            hardware.banks[1].set_cell_voltage(1.2)
            hardware.banks[1].to_parallel()
        assert controller.longevity_satisfied()
        controller.clear_minimum_energy()
        assert controller.minimum_energy == 0.0

    def test_negative_minimum_energy_rejected(self):
        _, controller = self.make()
        with pytest.raises(ValueError):
            controller.set_minimum_energy(-1.0)

    def test_overhead_models(self):
        hardware, controller = self.make()
        assert controller.hardware_overhead_power() == pytest.approx(
            controller.config.instrumentation_power
        )
        hardware.banks[0].connect_series()
        assert (
            controller.hardware_overhead_power()
            > controller.config.instrumentation_power
        )
        assert controller.software_overhead_current(1.5e-3) > 0.0

    def test_reset(self):
        hardware, controller = self.make()
        hardware.last_level.set_voltage(3.55)
        controller.poll(0.0)
        controller.reset()
        assert controller.poll_count == 0
        assert controller.step_up_count == 0


class TestReactBufferAdapter:
    def test_interface_round_trip(self):
        buffer = ReactBuffer(config=small_config())
        stored = buffer.harvest(2e-3, dt=1.0)
        assert stored > 0.0
        delivered = buffer.draw(current=1e-3, dt=0.5)
        assert delivered > 0.0
        buffer.housekeeping(time=0.0, dt=0.1, system_on=True)
        assert buffer.ledger.offered == pytest.approx(2e-3)

    def test_default_uses_table1(self):
        buffer = ReactBuffer()
        assert buffer.max_capacitance == pytest.approx(
            table1_config().maximum_capacitance
        )

    def test_supports_longevity(self):
        buffer = ReactBuffer(config=small_config())
        buffer.request_longevity(1e-3)
        assert not buffer.longevity_satisfied()
        buffer.clear_longevity()
        assert buffer.longevity_satisfied()

    def test_overhead_current_grows_with_connected_banks(self):
        buffer = ReactBuffer(config=small_config())
        buffer.hardware.last_level.set_voltage(3.0)
        idle = buffer.overhead_current(system_on=False)
        buffer.hardware.banks[0].connect_series()
        assert buffer.overhead_current(system_on=False) > idle
        assert buffer.overhead_current(system_on=True) > buffer.overhead_current(False)

    def test_capacitance_level_exposed_in_snapshot(self):
        buffer = ReactBuffer(config=small_config())
        snapshot = buffer.snapshot()
        assert snapshot["capacitance_level"] == 0.0
        assert snapshot["connected_banks"] == 0.0

    def test_can_reach_voltage_uses_bank_outputs(self):
        buffer = ReactBuffer(config=small_config())
        assert not buffer.can_reach_voltage(3.3)
        bank = buffer.hardware.banks[0]
        bank.connect_series()
        bank.set_cell_voltage(1.2)  # output 3.6 V
        assert buffer.can_reach_voltage(3.3)

    def test_ledger_tracks_housekeeping_losses(self):
        buffer = ReactBuffer(config=small_config())
        buffer.harvest(2e-3, dt=1.0)
        buffer.housekeeping(time=0.0, dt=100.0, system_on=False)
        assert buffer.ledger.leaked > 0.0

    def test_reset(self):
        buffer = ReactBuffer(config=small_config())
        buffer.harvest(2e-3, dt=1.0)
        buffer.reset()
        assert buffer.stored_energy == 0.0
        assert buffer.capacitance_level == 0
        assert buffer.ledger.offered == 0.0
