"""Analysis helpers: table formatting and aggregation."""

import pytest

from repro.analysis.aggregate import (
    matrix_from_results,
    mean_over_traces,
    relative_improvement,
)
from repro.analysis.formatting import format_matrix, format_table, percent
from repro.sim.results import SimulationResult


def result(trace, buffer, work, latency=1.0):
    return SimulationResult(
        trace_name=trace,
        buffer_name=buffer,
        workload_name="SC",
        simulated_time=100.0,
        trace_duration=90.0,
        latency=latency,
        on_time=50.0,
        active_time=10.0,
        enable_count=1,
        brownout_count=1,
        work_units=work,
    )


class TestFormatting:
    def test_format_table_aligns_columns(self):
        text = format_table(
            [{"buffer": "REACT", "work": 10.0}, {"buffer": "770 uF", "work": 5.0}],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "buffer" in lines[1] and "work" in lines[1]
        assert len(lines) == 5

    def test_format_table_handles_missing_and_special_values(self):
        text = format_table([{"a": None, "b": float("nan"), "c": float("inf")}])
        assert "-" in text and "inf" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_matrix(self):
        text = format_matrix(
            {"RF Cart": {"REACT": 1.0, "770 uF": 0.5}}, row_label="trace"
        )
        assert "RF Cart" in text and "REACT" in text

    def test_percent(self):
        assert percent(0.256) == "+25.6%"
        assert percent(-0.1, digits=0) == "-10%"


class TestAggregation:
    def test_matrix_from_results_work_units(self):
        matrix = matrix_from_results(
            [result("RF Cart", "REACT", 10.0), result("RF Cart", "770 uF", 5.0)]
        )
        assert matrix["RF Cart"]["REACT"] == 10.0

    def test_matrix_from_results_latency_handles_never_started(self):
        matrix = matrix_from_results(
            [result("RF Cart", "17 mF", 0.0, latency=None)], value="latency"
        )
        assert matrix["RF Cart"]["17 mF"] == float("inf")

    def test_mean_over_traces_ignores_infinite(self):
        matrix = {
            "A": {"REACT": 1.0, "17 mF": float("inf")},
            "B": {"REACT": 3.0, "17 mF": 4.0},
        }
        means = mean_over_traces(matrix)
        assert means["REACT"] == pytest.approx(2.0)
        assert means["17 mF"] == pytest.approx(4.0)

    def test_relative_improvement(self):
        assert relative_improvement(
            {"REACT": 1.25, "base": 1.0}, "REACT", "base"
        ) == pytest.approx(0.25)
        assert relative_improvement(
            {"REACT": 1.0, "base": 0.0}, "REACT", "base"
        ) == float("inf")
        with pytest.raises(KeyError):
            relative_improvement({"REACT": 1.0}, "REACT", "base")
