"""Simulation engine, system composition, recorder, results, and metrics."""

import numpy as np
import pytest

from repro.buffers.react_adapter import ReactBuffer
from repro.buffers.static import StaticBuffer
from repro.exceptions import ConfigurationError, SimulationError
from repro.harvester.trace import PowerTrace
from repro.platform.gating import PowerGate
from repro.sim.engine import Simulator
from repro.sim.metrics import (
    aggregate_results,
    improvement_over,
    mean_normalized_performance,
    normalize_to_reference,
)
from repro.sim.recorder import Recorder
from repro.sim.results import SimulationResult
from repro.sim.system import BatterylessSystem
from repro.units import millifarads
from repro.workloads.data_encryption import DataEncryption
from repro.workloads.sense_compute import SenseAndCompute


class TestBatterylessSystem:
    def test_build_and_reset(self, steady_trace):
        system = BatterylessSystem.build(
            steady_trace, StaticBuffer(millifarads(1.0)), DataEncryption()
        )
        system.buffer.harvest(1e-3, 1.0)
        system.reset()
        assert system.buffer.stored_energy == 0.0

    def test_gate_buffer_compatibility_checked(self, steady_trace):
        with pytest.raises(ConfigurationError):
            BatterylessSystem.build(
                steady_trace,
                StaticBuffer(millifarads(1.0), max_voltage=3.0),
                DataEncryption(),
                gate=PowerGate(enable_voltage=3.3, brownout_voltage=1.8),
            )


class TestSimulator:
    def test_steady_power_runs_the_system(self, steady_trace, simulator_factory):
        result = simulator_factory(
            steady_trace, StaticBuffer(millifarads(1.0)), DataEncryption()
        ).run()
        assert result.started
        assert result.work_units > 0.0
        assert result.on_time > 0.0
        assert result.enable_count >= 1

    def test_weak_power_never_starts_large_buffer(self, weak_trace, simulator_factory):
        result = simulator_factory(
            weak_trace, StaticBuffer(millifarads(17.0)), DataEncryption()
        ).run()
        assert not result.started
        assert result.work_units == 0.0
        assert result.latency is None

    def test_latency_is_time_of_first_enable(self, steady_trace, simulator_factory):
        result = simulator_factory(
            steady_trace, StaticBuffer(millifarads(1.0)), DataEncryption()
        ).run()
        # 1 mF to 3.3 V needs ~5.4 mJ at 5 mW -> just over a second.
        assert 0.5 < result.latency < 3.0

    def test_drain_phase_extends_beyond_trace(self, steady_trace, simulator_factory):
        result = simulator_factory(
            steady_trace, StaticBuffer(millifarads(10.0)), DataEncryption()
        ).run()
        assert result.simulated_time > steady_trace.duration

    def test_drain_phase_can_be_disabled(self, steady_trace, simulator_factory):
        result = simulator_factory(
            steady_trace,
            StaticBuffer(millifarads(10.0)),
            DataEncryption(),
            drain_after_trace=False,
        ).run()
        assert result.simulated_time == pytest.approx(steady_trace.duration, abs=1.0)

    def test_energy_conservation_for_static_buffer(
        self, short_rf_trace, simulator_factory
    ):
        buffer = StaticBuffer(millifarads(1.0))
        result = simulator_factory(short_rf_trace, buffer, SenseAndCompute()).run()
        ledger = result.buffer_ledger
        balance = ledger["stored"] - ledger["delivered"] - ledger["leaked"]
        assert buffer.stored_energy == pytest.approx(balance, rel=1e-6, abs=1e-9)
        assert ledger["offered"] == pytest.approx(
            ledger["stored"] + ledger["clipped"], rel=1e-9, abs=1e-12
        )

    def test_react_runs_end_to_end(self, short_rf_trace, simulator_factory):
        result = simulator_factory(
            short_rf_trace, ReactBuffer(), SenseAndCompute()
        ).run()
        assert result.started
        assert result.work_units > 0.0

    def test_recorder_collects_timeline(self, steady_trace, simulator_factory):
        recorder = Recorder(record_period=0.5)
        simulator_factory(
            steady_trace,
            StaticBuffer(millifarads(1.0)),
            DataEncryption(),
            recorder=recorder,
        ).run()
        arrays = recorder.as_arrays()
        assert len(arrays["time"]) > 10
        assert arrays["voltage"].max() <= 3.6 + 1e-6
        assert recorder.on_intervals()

    def test_invalid_timestep_configuration(self, steady_trace):
        system = BatterylessSystem.build(
            steady_trace, StaticBuffer(millifarads(1.0)), DataEncryption()
        )
        with pytest.raises(SimulationError):
            Simulator(system, dt_on=0.0)
        with pytest.raises(SimulationError):
            Simulator(system, dt_on=0.1, dt_off=0.01)

    def test_max_steps_guard(self, steady_trace):
        system = BatterylessSystem.build(
            steady_trace, StaticBuffer(millifarads(1.0)), DataEncryption()
        )
        with pytest.raises(SimulationError):
            Simulator(system, max_steps=5).run()


class TestAdaptiveTimestepAtTransitions:
    """Regression: the enable transition must resolve at dt_on granularity.

    The seed chose the step size from the gate state *before* updating the
    gate, so the step on which the system turned on was integrated with the
    coarse dt_off and the recorded latency was quantized to the dt_off grid.
    """

    def test_latency_resolved_at_dt_on(self, steady_trace):
        # 1 mF charged by 5 mW reaches 3.3 V (5.445 mJ) in ~1.09 s; with the
        # old policy a dt_off this coarse could only report a multiple of it.
        dt_off = 0.5
        system = BatterylessSystem.build(
            steady_trace, StaticBuffer(millifarads(1.0)), DataEncryption()
        )
        result = Simulator(system, dt_on=0.01, dt_off=dt_off, max_drain_time=30.0).run()
        assert result.latency == pytest.approx(1.09, abs=0.05)
        distance_to_grid = min(
            result.latency % dt_off, dt_off - result.latency % dt_off
        )
        assert distance_to_grid > 1e-6, "latency still quantized to the dt_off grid"

    def test_latency_agrees_across_dt_off_choices(self, steady_trace):
        latencies = []
        for dt_off in (0.1, 0.25, 0.5):
            system = BatterylessSystem.build(
                steady_trace, StaticBuffer(millifarads(1.0)), DataEncryption()
            )
            result = Simulator(
                system, dt_on=0.01, dt_off=dt_off, max_drain_time=30.0
            ).run()
            latencies.append(result.latency)
        assert max(latencies) - min(latencies) <= 0.03


class TestRecorderConventions:
    """Regression tests for the end-of-step recording convention."""

    def test_recorded_power_matches_trace_at_timestamp(self):
        # Power drops to zero at t = 30 s; the seed paired post-step state
        # with the power of the sample *before* the step, so points recorded
        # just after the edge carried the stale 5 mW value.
        powers = [5e-3] * 30 + [0.0] * 30
        trace = PowerTrace(powers, sample_period=1.0, name="edge")
        system = BatterylessSystem.build(
            trace, StaticBuffer(millifarads(1.0)), DataEncryption()
        )
        recorder = Recorder(record_period=0.5)
        Simulator(
            system, dt_on=0.02, dt_off=0.1, max_drain_time=60.0, recorder=recorder
        ).run()
        assert len(recorder) > 10
        for point in recorder.points:
            assert point.harvested_power == trace.power_at(point.time)

    def test_timestamps_are_end_of_step(self):
        trace = PowerTrace([5e-3] * 10, sample_period=1.0, name="steady10")
        system = BatterylessSystem.build(
            trace, StaticBuffer(millifarads(1.0)), DataEncryption()
        )
        recorder = Recorder(record_period=0.05)
        Simulator(
            system, dt_on=0.02, dt_off=0.1, max_drain_time=5.0, recorder=recorder
        ).run()
        # Every sample is stamped at the *end* of an integration interval,
        # so nothing can carry the pre-step timestamp 0.0.
        assert recorder.points[0].time > 0.0

    def test_decimation_snaps_to_period_grid(self):
        # A jittery step size must not accumulate drift: each recorded
        # sample stays within one step of its record-period grid point.
        recorder = Recorder(record_period=0.5)
        time, step = 0.0, 0.033
        while time < 60.0:
            recorder.maybe_record(time, 2.0, True, 1e-3, 1e-3, 0.0)
            time += step
        times = [p.time for p in recorder.points]
        assert len(times) == pytest.approx(60.0 / 0.5, abs=2)
        for index, recorded in enumerate(times):
            grid_point = index * 0.5
            assert grid_point - 1e-9 <= recorded < grid_point + step + 1e-9


class TestFastForwardEquivalence:
    """The off-phase fast path must match the step-by-step engine."""

    @staticmethod
    def _run(trace, buffer, workload, fast_forward, recorder=None):
        system = BatterylessSystem.build(trace, buffer, workload)
        return Simulator(
            system,
            dt_on=0.02,
            dt_off=0.1,
            max_drain_time=120.0,
            recorder=recorder,
            fast_forward=fast_forward,
        ).run()

    @pytest.mark.parametrize(
        "buffer_name", ["770 uF", "10 mF", "17 mF", "Morphy", "REACT"]
    )
    @pytest.mark.parametrize("workload_factory", [DataEncryption, SenseAndCompute])
    def test_matches_step_by_step_engine(
        self, short_rf_trace, buffer_name, workload_factory
    ):
        from repro.experiments.runner import standard_buffers

        def fresh_buffer():
            return next(b for b in standard_buffers() if b.name == buffer_name)

        reference = self._run(
            short_rf_trace, fresh_buffer(), workload_factory(), fast_forward=False
        )
        fast = self._run(
            short_rf_trace, fresh_buffer(), workload_factory(), fast_forward=True
        )
        assert fast.work_units == reference.work_units
        assert fast.enable_count == reference.enable_count
        assert fast.brownout_count == reference.brownout_count
        assert fast.latency == reference.latency
        assert fast.simulated_time == reference.simulated_time
        assert fast.on_time == pytest.approx(reference.on_time, rel=1e-12, abs=1e-9)
        assert fast.energy_delivered_to_load == pytest.approx(
            reference.energy_delivered_to_load, rel=1e-9, abs=1e-15
        )
        assert fast.energy_offered == pytest.approx(
            reference.energy_offered, rel=1e-9, abs=1e-15
        )
        for key, value in reference.workload_metrics.items():
            assert fast.workload_metrics[key] == pytest.approx(value, rel=1e-9), key

    def test_recorder_timeline_is_preserved(self, steady_trace):
        recorders = []
        for fast_forward in (False, True):
            recorder = Recorder(record_period=0.5)
            self._run(
                steady_trace,
                StaticBuffer(millifarads(10.0)),
                DataEncryption(),
                fast_forward=fast_forward,
                recorder=recorder,
            )
            recorders.append(recorder)
        reference, fast = recorders
        assert len(fast) == len(reference)
        for ref_point, fast_point in zip(reference.points, fast.points):
            assert fast_point.time == ref_point.time
            assert fast_point.voltage == pytest.approx(ref_point.voltage, rel=1e-12)
            assert fast_point.system_on == ref_point.system_on

    def test_fast_forward_skips_interpreter_steps(self, weak_trace):
        # A system that never starts is pure off-phase: the fast path must
        # cover almost the whole trace in a handful of engine iterations.
        buffer = StaticBuffer(millifarads(17.0))
        system = BatterylessSystem.build(weak_trace, buffer, DataEncryption())
        simulator = Simulator(system, dt_on=0.02, dt_off=0.1, max_drain_time=60.0)
        result = simulator.run()
        assert not result.started
        assert result.simulated_time >= weak_trace.duration


class TestRecorder:
    def test_decimation(self):
        recorder = Recorder(record_period=1.0)
        for step in range(100):
            recorder.maybe_record(
                time=step * 0.1,
                voltage=2.0,
                system_on=True,
                capacitance=1e-3,
                stored_energy=1e-3,
                harvested_power=1e-3,
            )
        assert len(recorder) == pytest.approx(10, abs=2)

    def test_on_intervals_detects_transitions(self):
        recorder = Recorder(record_period=0.1)
        pattern = [False, True, True, False, True]
        for index, on in enumerate(pattern):
            recorder.maybe_record(index * 1.0, 2.0, on, 1e-3, 1e-3, 0.0)
        intervals = recorder.on_intervals()
        assert len(intervals) == 2

    def test_snap_advances_past_fp_grid_points(self):
        """A sample landing exactly on a grid point must not duplicate.

        4.3 / 0.1 floors to 42 in floating point, so the naive snap would
        leave the next record time at 4.3 and the following step would
        record a second sample in the same 100 ms window.
        """
        recorder = Recorder(record_period=0.1)
        recorder._next_record_time = 4.3
        recorder.maybe_record(4.3, 2.0, True, 1e-3, 1e-3, 0.0)
        assert recorder.next_record_time > 4.3
        recorder.maybe_record(4.35, 2.0, True, 1e-3, 1e-3, 0.0)
        assert len(recorder) == 1

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            Recorder(record_period=0.0)

    def test_reset(self):
        recorder = Recorder()
        recorder.maybe_record(0.0, 1.0, True, 1e-3, 1e-3, 0.0)
        recorder.reset()
        assert len(recorder) == 0


def make_result(trace="RF Cart", buffer="REACT", workload="SC", work=10.0, latency=1.0):
    return SimulationResult(
        trace_name=trace,
        buffer_name=buffer,
        workload_name=workload,
        simulated_time=400.0,
        trace_duration=313.0,
        latency=latency,
        on_time=200.0,
        active_time=50.0,
        enable_count=3,
        brownout_count=2,
        work_units=work,
        workload_metrics={"work_units": work},
        buffer_ledger={"offered": 1.0, "delivered": 0.5},
        energy_offered=1.0,
        energy_delivered_to_load=0.5,
    )


class TestResultsAndMetrics:
    def test_result_derived_properties(self):
        result = make_result()
        assert result.started
        assert result.duty_cycle == pytest.approx(0.5)
        assert result.end_to_end_efficiency == pytest.approx(0.5)
        assert result.on_time_during_trace_fraction <= 1.0
        row = result.as_dict()
        assert row["buffer"] == "REACT"
        assert row["workload_work_units"] == 10.0

    def test_never_started_result(self):
        result = make_result(latency=None, work=0.0)
        assert not result.started
        assert np.isnan(result.as_dict()["latency_s"])

    def test_normalize_to_reference(self):
        normalized = normalize_to_reference({"A": 5.0, "REACT": 10.0}, "REACT")
        assert normalized == {"A": 0.5, "REACT": 1.0}
        with pytest.raises(KeyError):
            normalize_to_reference({"A": 1.0}, "REACT")

    def test_normalize_with_zero_reference(self):
        assert normalize_to_reference({"A": 1.0, "REACT": 0.0}, "REACT") == {
            "A": 0.0,
            "REACT": 0.0,
        }

    def test_aggregate_and_mean_normalized(self):
        results = [
            make_result(buffer="770 uF", work=5.0),
            make_result(buffer="REACT", work=10.0),
            make_result(trace="RF Mobile", buffer="770 uF", work=2.0),
            make_result(trace="RF Mobile", buffer="REACT", work=4.0),
        ]
        pivot = aggregate_results(results)
        assert pivot["SC"]["RF Cart"]["REACT"] == 10.0
        summary = mean_normalized_performance(results, reference="REACT")
        assert summary["SC"]["770 uF"] == pytest.approx(0.5)
        assert summary["SC"]["REACT"] == pytest.approx(1.0)

    def test_improvement_over(self):
        assert improvement_over(
            {"REACT": 1.3, "base": 1.0}, "REACT", "base"
        ) == pytest.approx(0.3)
        with pytest.raises(KeyError):
            improvement_over({"REACT": 1.0}, "REACT", "base")
