"""Simulation engine, system composition, recorder, results, and metrics."""

import numpy as np
import pytest

from repro.buffers.react_adapter import ReactBuffer
from repro.buffers.static import StaticBuffer
from repro.exceptions import ConfigurationError, SimulationError
from repro.harvester.trace import PowerTrace
from repro.platform.gating import PowerGate
from repro.sim.engine import Simulator
from repro.sim.metrics import (
    aggregate_results,
    improvement_over,
    mean_normalized_performance,
    normalize_to_reference,
)
from repro.sim.recorder import Recorder
from repro.sim.results import SimulationResult
from repro.sim.system import BatterylessSystem
from repro.units import microfarads, millifarads
from repro.workloads.data_encryption import DataEncryption
from repro.workloads.sense_compute import SenseAndCompute


class TestBatterylessSystem:
    def test_build_and_reset(self, steady_trace):
        system = BatterylessSystem.build(
            steady_trace, StaticBuffer(millifarads(1.0)), DataEncryption()
        )
        system.buffer.harvest(1e-3, 1.0)
        system.reset()
        assert system.buffer.stored_energy == 0.0

    def test_gate_buffer_compatibility_checked(self, steady_trace):
        with pytest.raises(ConfigurationError):
            BatterylessSystem.build(
                steady_trace,
                StaticBuffer(millifarads(1.0), max_voltage=3.0),
                DataEncryption(),
                gate=PowerGate(enable_voltage=3.3, brownout_voltage=1.8),
            )


class TestSimulator:
    def test_steady_power_runs_the_system(self, steady_trace, simulator_factory):
        result = simulator_factory(
            steady_trace, StaticBuffer(millifarads(1.0)), DataEncryption()
        ).run()
        assert result.started
        assert result.work_units > 0.0
        assert result.on_time > 0.0
        assert result.enable_count >= 1

    def test_weak_power_never_starts_large_buffer(self, weak_trace, simulator_factory):
        result = simulator_factory(
            weak_trace, StaticBuffer(millifarads(17.0)), DataEncryption()
        ).run()
        assert not result.started
        assert result.work_units == 0.0
        assert result.latency is None

    def test_latency_is_time_of_first_enable(self, steady_trace, simulator_factory):
        result = simulator_factory(
            steady_trace, StaticBuffer(millifarads(1.0)), DataEncryption()
        ).run()
        # 1 mF to 3.3 V needs ~5.4 mJ at 5 mW -> just over a second.
        assert 0.5 < result.latency < 3.0

    def test_drain_phase_extends_beyond_trace(self, steady_trace, simulator_factory):
        result = simulator_factory(
            steady_trace, StaticBuffer(millifarads(10.0)), DataEncryption()
        ).run()
        assert result.simulated_time > steady_trace.duration

    def test_drain_phase_can_be_disabled(self, steady_trace, simulator_factory):
        result = simulator_factory(
            steady_trace,
            StaticBuffer(millifarads(10.0)),
            DataEncryption(),
            drain_after_trace=False,
        ).run()
        assert result.simulated_time == pytest.approx(steady_trace.duration, abs=1.0)

    def test_energy_conservation_for_static_buffer(self, short_rf_trace, simulator_factory):
        buffer = StaticBuffer(millifarads(1.0))
        result = simulator_factory(short_rf_trace, buffer, SenseAndCompute()).run()
        ledger = result.buffer_ledger
        balance = ledger["stored"] - ledger["delivered"] - ledger["leaked"]
        assert buffer.stored_energy == pytest.approx(balance, rel=1e-6, abs=1e-9)
        assert ledger["offered"] == pytest.approx(
            ledger["stored"] + ledger["clipped"], rel=1e-9, abs=1e-12
        )

    def test_react_runs_end_to_end(self, short_rf_trace, simulator_factory):
        result = simulator_factory(short_rf_trace, ReactBuffer(), SenseAndCompute()).run()
        assert result.started
        assert result.work_units > 0.0

    def test_recorder_collects_timeline(self, steady_trace, simulator_factory):
        recorder = Recorder(record_period=0.5)
        simulator_factory(
            steady_trace,
            StaticBuffer(millifarads(1.0)),
            DataEncryption(),
            recorder=recorder,
        ).run()
        arrays = recorder.as_arrays()
        assert len(arrays["time"]) > 10
        assert arrays["voltage"].max() <= 3.6 + 1e-6
        assert recorder.on_intervals()

    def test_invalid_timestep_configuration(self, steady_trace):
        system = BatterylessSystem.build(
            steady_trace, StaticBuffer(millifarads(1.0)), DataEncryption()
        )
        with pytest.raises(SimulationError):
            Simulator(system, dt_on=0.0)
        with pytest.raises(SimulationError):
            Simulator(system, dt_on=0.1, dt_off=0.01)

    def test_max_steps_guard(self, steady_trace):
        system = BatterylessSystem.build(
            steady_trace, StaticBuffer(millifarads(1.0)), DataEncryption()
        )
        with pytest.raises(SimulationError):
            Simulator(system, max_steps=5).run()


class TestRecorder:
    def test_decimation(self):
        recorder = Recorder(record_period=1.0)
        for step in range(100):
            recorder.maybe_record(
                time=step * 0.1,
                voltage=2.0,
                system_on=True,
                capacitance=1e-3,
                stored_energy=1e-3,
                harvested_power=1e-3,
            )
        assert len(recorder) == pytest.approx(10, abs=2)

    def test_on_intervals_detects_transitions(self):
        recorder = Recorder(record_period=0.1)
        pattern = [False, True, True, False, True]
        for index, on in enumerate(pattern):
            recorder.maybe_record(index * 1.0, 2.0, on, 1e-3, 1e-3, 0.0)
        intervals = recorder.on_intervals()
        assert len(intervals) == 2

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            Recorder(record_period=0.0)

    def test_reset(self):
        recorder = Recorder()
        recorder.maybe_record(0.0, 1.0, True, 1e-3, 1e-3, 0.0)
        recorder.reset()
        assert len(recorder) == 0


def make_result(trace="RF Cart", buffer="REACT", workload="SC", work=10.0, latency=1.0):
    return SimulationResult(
        trace_name=trace,
        buffer_name=buffer,
        workload_name=workload,
        simulated_time=400.0,
        trace_duration=313.0,
        latency=latency,
        on_time=200.0,
        active_time=50.0,
        enable_count=3,
        brownout_count=2,
        work_units=work,
        workload_metrics={"work_units": work},
        buffer_ledger={"offered": 1.0, "delivered": 0.5},
        energy_offered=1.0,
        energy_delivered_to_load=0.5,
    )


class TestResultsAndMetrics:
    def test_result_derived_properties(self):
        result = make_result()
        assert result.started
        assert result.duty_cycle == pytest.approx(0.5)
        assert result.end_to_end_efficiency == pytest.approx(0.5)
        assert result.on_time_during_trace_fraction <= 1.0
        row = result.as_dict()
        assert row["buffer"] == "REACT"
        assert row["workload_work_units"] == 10.0

    def test_never_started_result(self):
        result = make_result(latency=None, work=0.0)
        assert not result.started
        assert np.isnan(result.as_dict()["latency_s"])

    def test_normalize_to_reference(self):
        normalized = normalize_to_reference({"A": 5.0, "REACT": 10.0}, "REACT")
        assert normalized == {"A": 0.5, "REACT": 1.0}
        with pytest.raises(KeyError):
            normalize_to_reference({"A": 1.0}, "REACT")

    def test_normalize_with_zero_reference(self):
        assert normalize_to_reference({"A": 1.0, "REACT": 0.0}, "REACT") == {
            "A": 0.0,
            "REACT": 0.0,
        }

    def test_aggregate_and_mean_normalized(self):
        results = [
            make_result(buffer="770 uF", work=5.0),
            make_result(buffer="REACT", work=10.0),
            make_result(trace="RF Mobile", buffer="770 uF", work=2.0),
            make_result(trace="RF Mobile", buffer="REACT", work=4.0),
        ]
        pivot = aggregate_results(results)
        assert pivot["SC"]["RF Cart"]["REACT"] == 10.0
        summary = mean_normalized_performance(results, reference="REACT")
        assert summary["SC"]["770 uF"] == pytest.approx(0.5)
        assert summary["SC"]["REACT"] == pytest.approx(1.0)

    def test_improvement_over(self):
        assert improvement_over({"REACT": 1.3, "base": 1.0}, "REACT", "base") == pytest.approx(0.3)
        with pytest.raises(KeyError):
            improvement_over({"REACT": 1.0}, "REACT", "base")
