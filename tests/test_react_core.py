"""REACT core: configuration, banks, sizing math, and reclamation accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.core.bank import BankState, CapacitorBank
from repro.core.config import BankSpec, ReactConfig, table1_config
from repro.core.reclamation import (
    reclaimable_energy,
    reclamation_gain_factor,
    stranded_energy_with_reclamation,
    stranded_energy_without_reclamation,
)
from repro.core.sizing import (
    max_unit_capacitance,
    validate_bank_sizing,
    voltage_after_series_switch,
)
from repro.exceptions import BankStateError, ConfigurationError
from repro.units import microfarads


class TestConfig:
    def test_table1_capacitance_range(self):
        config = table1_config()
        assert config.minimum_capacitance == pytest.approx(770e-6)
        assert config.maximum_capacitance == pytest.approx(18.03e-3, rel=1e-3)

    def test_table1_bank_rows(self):
        rows = table1_config().describe_banks()
        assert rows[0]["capacitor_count"] == 1
        assert len(rows) == 6
        assert rows[5]["capacitor_size_uF"] == pytest.approx(5000.0)

    def test_capacitance_levels_are_monotone(self):
        levels = table1_config().capacitance_levels
        assert len(levels) == 11
        assert all(b > a for a, b in zip(levels, levels[1:]))

    def test_software_overhead_fraction(self):
        config = table1_config()
        expected = config.poll_rate_hz * config.poll_active_time
        assert config.software_overhead_fraction(1.5e-3) == pytest.approx(expected)

    def test_overrides_forwarded(self):
        config = table1_config(high_threshold=3.4)
        assert config.high_threshold == 3.4
        assert len(config.banks) == 5

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            ReactConfig(high_threshold=1.0, low_threshold=2.0)
        with pytest.raises(ConfigurationError):
            ReactConfig(enable_voltage=1.0, brownout_voltage=1.8)
        with pytest.raises(ConfigurationError):
            ReactConfig(high_threshold=4.0, max_voltage=3.6)

    def test_bank_spec_validation(self):
        with pytest.raises(ConfigurationError):
            BankSpec(unit_capacitance=0.0, count=3)
        with pytest.raises(ConfigurationError):
            BankSpec(unit_capacitance=1e-3, count=0)

    def test_bank_spec_derived_capacitances(self):
        spec = BankSpec(unit_capacitance=microfarads(220.0), count=3)
        assert spec.series_capacitance == pytest.approx(220e-6 / 3.0)
        assert spec.parallel_capacitance == pytest.approx(660e-6)


class TestCapacitorBank:
    def make_bank(self, count=3, unit=220e-6) -> CapacitorBank:
        return CapacitorBank(
            spec=BankSpec(unit_capacitance=unit, count=count), name="bank"
        )

    def test_state_machine_up_and_down(self):
        bank = self.make_bank()
        assert bank.state is BankState.DISCONNECTED
        bank.step_up()
        assert bank.state is BankState.SERIES
        bank.step_up()
        assert bank.state is BankState.PARALLEL
        bank.step_down()
        assert bank.state is BankState.SERIES
        bank.step_down()
        assert bank.state is BankState.DISCONNECTED

    def test_illegal_transitions_rejected(self):
        bank = self.make_bank()
        with pytest.raises(BankStateError):
            bank.to_parallel()
        with pytest.raises(BankStateError):
            bank.disconnect()
        bank.connect_series()
        with pytest.raises(BankStateError):
            bank.connect_series()
        bank.to_parallel()
        with pytest.raises(BankStateError):
            bank.step_up()

    def test_output_voltage_depends_on_configuration(self):
        bank = self.make_bank(count=3)
        bank.connect_series()
        bank.set_cell_voltage(1.0)
        assert bank.output_voltage == pytest.approx(3.0)
        assert bank.equivalent_capacitance == pytest.approx(220e-6 / 3.0)
        bank.to_parallel()
        assert bank.output_voltage == pytest.approx(1.0)
        assert bank.equivalent_capacitance == pytest.approx(660e-6)

    def test_reconfiguration_conserves_stored_energy(self):
        bank = self.make_bank()
        bank.connect_series()
        bank.set_cell_voltage(1.2)
        before = bank.stored_energy
        bank.to_parallel()
        assert bank.stored_energy == pytest.approx(before)
        bank.to_series()
        assert bank.stored_energy == pytest.approx(before)

    def test_absorb_energy_respects_output_clamp(self):
        bank = self.make_bank(count=3)
        bank.connect_series()
        stored = bank.absorb_energy(1.0, max_output_voltage=3.6)
        # In series the output clamp limits every cell to 1.2 V.
        assert bank.cell_voltage == pytest.approx(1.2)
        assert stored == pytest.approx(bank.stored_energy)

    def test_absorb_energy_disconnected_is_rejected_quietly(self):
        bank = self.make_bank()
        assert bank.absorb_energy(1e-3, 3.6) == 0.0

    def test_set_output_voltage(self):
        bank = self.make_bank(count=3)
        bank.connect_series()
        bank.set_output_voltage(3.0)
        assert bank.cell_voltage == pytest.approx(1.0)

    def test_leakage_reduces_cell_voltage(self):
        from repro.capacitors.leakage import ConstantCurrentLeakage

        bank = CapacitorBank(
            spec=BankSpec(unit_capacitance=220e-6, count=3),
            leakage=ConstantCurrentLeakage(1e-6),
        )
        bank.connect_series()
        bank.set_cell_voltage(2.0)
        leaked = bank.apply_leakage(10.0)
        assert leaked > 0.0
        assert bank.cell_voltage < 2.0

    def test_reset(self):
        bank = self.make_bank()
        bank.connect_series()
        bank.set_cell_voltage(1.0)
        bank.reset()
        assert bank.state is BankState.DISCONNECTED
        assert bank.cell_voltage == 0.0


class TestSizingMath:
    def test_equation1_matches_manual_redistribution(self):
        # 880 uF x3 bank reclaimed at 1.9 V onto a 770 uF last-level buffer.
        voltage = voltage_after_series_switch(3, 880e-6, 770e-6, 1.9)
        series_c = 880e-6 / 3.0
        expected = (3 * 1.9 * series_c + 1.9 * 770e-6) / (series_c + 770e-6)
        assert voltage == pytest.approx(expected)
        assert 1.9 < voltage < 3.5

    def test_equation2_binds_only_when_boost_exceeds_high_threshold(self):
        assert max_unit_capacitance(1, 770e-6, 3.5, 1.9) == float("inf")
        limit = max_unit_capacitance(3, 770e-6, 3.5, 1.9)
        assert limit > 0.0
        assert validate_bank_sizing(3, 880e-6, 770e-6, 3.5, 1.9)

    def test_equation2_consistency_with_equation1(self):
        """A bank exactly at the Eq. 2 limit produces exactly V_high in Eq. 1."""
        limit = max_unit_capacitance(3, 770e-6, 3.5, 1.9)
        voltage = voltage_after_series_switch(3, limit, 770e-6, 1.9)
        assert voltage == pytest.approx(3.5, rel=1e-9)

    def test_table1_banks_satisfy_equation2(self):
        config = table1_config()
        for bank in config.banks:
            assert validate_bank_sizing(
                bank.count,
                bank.unit_capacitance,
                config.last_level_capacitance,
                config.high_threshold,
                config.low_threshold,
            )

    def test_sizing_validation(self):
        with pytest.raises(ConfigurationError):
            voltage_after_series_switch(0, 1e-3, 1e-3, 2.0)
        with pytest.raises(ConfigurationError):
            max_unit_capacitance(3, 1e-3, 1.0, 2.0)

    @given(
        cells=st.integers(2, 6),
        unit=st.floats(10e-6, 5e-3),
        last=st.floats(100e-6, 5e-3),
        low=st.floats(1.0, 2.5),
    )
    def test_equation1_output_is_between_trigger_and_boost(
        self, cells, unit, last, low
    ):
        voltage = voltage_after_series_switch(cells, unit, last, low)
        assert low - 1e-9 <= voltage <= cells * low + 1e-9


class TestReclamation:
    def test_gain_factor_is_n_squared(self):
        assert reclamation_gain_factor(3) == 9.0
        assert reclamation_gain_factor(1) == 1.0

    def test_stranded_energy_ratio(self):
        without = stranded_energy_without_reclamation(3, 880e-6, 1.9)
        with_reclamation = stranded_energy_with_reclamation(3, 880e-6, 1.9)
        assert without / with_reclamation == pytest.approx(9.0)

    def test_reclaimable_energy_is_difference(self):
        assert reclaimable_energy(3, 880e-6, 1.9) == pytest.approx(
            stranded_energy_without_reclamation(3, 880e-6, 1.9)
            - stranded_energy_with_reclamation(3, 880e-6, 1.9)
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            reclamation_gain_factor(0)
        with pytest.raises(ConfigurationError):
            stranded_energy_without_reclamation(3, -1.0, 1.9)

    @given(cells=st.integers(1, 8), unit=st.floats(1e-6, 1e-2), low=st.floats(0.0, 4.0))
    def test_reclamation_never_negative(self, cells, unit, low):
        assert reclaimable_energy(cells, unit, low) >= -1e-15
