"""Computational kernels: AES-128, FIR filtering, CRC."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import WorkloadError
from repro.workloads.kernels.aes import AES128, aes128_encrypt_block, aes128_self_test
from repro.workloads.kernels.crc import crc16_ccitt
from repro.workloads.kernels.fir import FirFilter, design_lowpass, moving_average


class TestAes:
    def test_fips197_known_answer(self):
        """Appendix C.1 of FIPS-197."""
        key = bytes(range(16))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert aes128_encrypt_block(key, plaintext) == expected

    def test_self_test_passes(self):
        assert aes128_self_test()

    def test_classic_nist_vector(self):
        """The AES-128 vector from the original Rijndael submission."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_block_size_enforced(self):
        cipher = AES128(bytes(16))
        with pytest.raises(WorkloadError):
            cipher.encrypt_block(b"short")

    def test_key_size_enforced(self):
        with pytest.raises(WorkloadError):
            AES128(b"short key")

    def test_ecb_multiple_blocks(self):
        cipher = AES128(bytes(16))
        ciphertext = cipher.encrypt_ecb(bytes(32))
        assert len(ciphertext) == 32
        assert ciphertext[:16] == ciphertext[16:]  # ECB leaks equal blocks

    def test_ecb_rejects_partial_block(self):
        with pytest.raises(WorkloadError):
            AES128(bytes(16)).encrypt_ecb(bytes(17))

    def test_ctr_round_trip(self):
        cipher = AES128(bytes(range(16)))
        plaintext = b"intermittent computing!" * 3
        nonce = bytes(8)
        ciphertext = cipher.encrypt_ctr(plaintext, nonce)
        assert cipher.encrypt_ctr(ciphertext, nonce) == plaintext
        assert ciphertext != plaintext

    def test_ctr_nonce_length_enforced(self):
        with pytest.raises(WorkloadError):
            AES128(bytes(16)).encrypt_ctr(b"data", b"123")

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    def test_encryption_is_a_permutation(self, key, block):
        """Distinct plaintexts never collide under the same key."""
        cipher = AES128(key)
        other = bytes(block[:-1] + bytes([block[-1] ^ 1]))
        assert cipher.encrypt_block(block) != cipher.encrypt_block(other)


class TestFir:
    def test_moving_average_coefficients(self):
        taps = moving_average(4)
        assert taps == [0.25] * 4

    def test_moving_average_validation(self):
        with pytest.raises(WorkloadError):
            moving_average(0)

    def test_lowpass_dc_gain_is_unity(self):
        taps = design_lowpass(num_taps=21, cutoff=0.1)
        assert sum(taps) == pytest.approx(1.0)

    def test_lowpass_validation(self):
        with pytest.raises(WorkloadError):
            design_lowpass(num_taps=0, cutoff=0.1)
        with pytest.raises(WorkloadError):
            design_lowpass(num_taps=9, cutoff=0.7)

    def test_lowpass_attenuates_high_frequency(self):
        taps = design_lowpass(num_taps=31, cutoff=0.05)
        fir = FirFilter(taps)
        n = 256
        low = [math.sin(2 * math.pi * 0.01 * i) for i in range(n)]
        high = [math.sin(2 * math.pi * 0.4 * i) for i in range(n)]
        low_rms = FirFilter(taps).rms(low)
        high_rms = FirFilter(taps).rms(high)
        assert high_rms < 0.2 * low_rms

    def test_streaming_matches_block_processing(self):
        taps = design_lowpass(num_taps=9, cutoff=0.2)
        samples = [float(i % 7) for i in range(50)]
        block = FirFilter(taps).process(samples)
        streaming_filter = FirFilter(taps)
        streaming = [streaming_filter.process_sample(sample) for sample in samples]
        assert block == pytest.approx(streaming)

    def test_reset_clears_state(self):
        fir = FirFilter(moving_average(3))
        fir.process([1.0, 2.0, 3.0])
        fir.reset()
        assert fir.process_sample(0.0) == 0.0

    def test_empty_taps_rejected(self):
        with pytest.raises(WorkloadError):
            FirFilter([])

    @given(st.lists(st.floats(-10.0, 10.0), min_size=1, max_size=64))
    def test_moving_average_output_bounded_by_input(self, samples):
        fir = FirFilter(moving_average(5))
        outputs = fir.process(samples)
        bound = max(abs(s) for s in samples) + 1e-9
        assert all(abs(value) <= bound for value in outputs)


class TestCrc:
    def test_known_value(self):
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_empty_data(self):
        assert crc16_ccitt(b"") == 0xFFFF

    def test_detects_single_bit_flip(self):
        data = b"packet payload"
        flipped = bytes([data[0] ^ 0x01]) + data[1:]
        assert crc16_ccitt(data) != crc16_ccitt(flipped)

    @given(st.binary(min_size=0, max_size=64))
    def test_result_fits_sixteen_bits(self, data):
        assert 0 <= crc16_ccitt(data) <= 0xFFFF
