"""Platform models: MCU power modes, peripherals, gating, monitor, events."""

import pytest

from repro.exceptions import ConfigurationError
from repro.platform.events import PeriodicEventSource, PoissonEventSource
from repro.platform.gating import PowerGate
from repro.platform.mcu import Microcontroller, MSP430FR5994, PowerMode
from repro.platform.monitor import BufferSignal, VoltageMonitor
from repro.platform.peripherals import Microphone, Peripheral, Radio, RadioOperation


class TestMicrocontroller:
    def test_mode_currents_are_ordered(self):
        mcu = MSP430FR5994()
        assert mcu.current(PowerMode.ACTIVE) > mcu.current(PowerMode.SLEEP)
        assert mcu.current(PowerMode.SLEEP) > mcu.current(PowerMode.DEEP_SLEEP)
        assert mcu.current(PowerMode.OFF) == 0.0

    def test_step_accumulates_time_and_charge(self):
        mcu = MSP430FR5994()
        mcu.set_mode(PowerMode.ACTIVE)
        mcu.step(2.0)
        assert mcu.active_time == pytest.approx(2.0)
        assert mcu.charge_drawn == pytest.approx(2.0 * mcu.active_current)

    def test_wakeup_counting(self):
        mcu = MSP430FR5994()
        mcu.set_mode(PowerMode.SLEEP)
        mcu.power_off()
        mcu.set_mode(PowerMode.ACTIVE)
        assert mcu.wakeup_count == 2

    def test_on_time_includes_all_powered_modes(self):
        mcu = MSP430FR5994()
        for mode in (PowerMode.ACTIVE, PowerMode.SLEEP, PowerMode.DEEP_SLEEP):
            mcu.set_mode(mode)
            mcu.step(1.0)
        assert mcu.on_time == pytest.approx(3.0)

    def test_reset(self):
        mcu = MSP430FR5994()
        mcu.set_mode(PowerMode.ACTIVE)
        mcu.step(1.0)
        mcu.reset()
        assert mcu.mode is PowerMode.OFF
        assert mcu.charge_drawn == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Microcontroller(active_current=-1.0)
        with pytest.raises(ConfigurationError):
            Microcontroller(active_current=1e-3, sleep_current=2e-3)
        with pytest.raises(ConfigurationError):
            Microcontroller(sleep_current=1e-6, deep_sleep_current=2e-6)

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            MSP430FR5994().step(-1.0)


class TestPeripherals:
    def test_generic_peripheral_tracks_usage(self):
        peripheral = Peripheral(name="sensor", active_current=1e-3)
        peripheral.in_use = True
        current = peripheral.step(0.5)
        assert current == pytest.approx(1e-3)
        assert peripheral.time_in_use == pytest.approx(0.5)

    def test_microphone_factory(self):
        mic = Microphone()
        assert mic.active_current == pytest.approx(230e-6)

    def test_radio_energy_estimates(self):
        radio = Radio()
        assert radio.transmit_energy == pytest.approx(
            radio.transmit_current * radio.nominal_voltage * radio.transmit_time
        )
        assert radio.receive_energy < radio.transmit_energy

    def test_radio_operation_currents(self):
        radio = Radio()
        radio.operation = RadioOperation.TRANSMIT
        assert radio.current() == radio.transmit_current
        radio.operation = RadioOperation.RECEIVE
        assert radio.current() == radio.receive_current
        radio.operation = RadioOperation.IDLE
        assert radio.current() == radio.idle_current

    def test_radio_step_accumulates_time(self):
        radio = Radio()
        radio.operation = RadioOperation.TRANSMIT
        radio.step(0.1)
        assert radio.time_transmitting == pytest.approx(0.1)
        radio.reset()
        assert radio.time_transmitting == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Peripheral(name="bad", active_current=-1.0)
        with pytest.raises(ConfigurationError):
            Radio(transmit_current=-1.0)


class TestPowerGate:
    def test_hysteresis_cycle(self):
        gate = PowerGate(enable_voltage=3.3, brownout_voltage=1.8)
        assert not gate.update(3.0)
        assert gate.update(3.3)
        assert gate.update(2.0)          # stays on above brown-out
        assert not gate.update(1.8)      # disconnects at brown-out
        assert gate.enable_count == 1
        assert gate.brownout_count == 1

    def test_reset(self):
        gate = PowerGate()
        gate.update(3.5)
        gate.reset()
        assert not gate.enabled
        assert gate.enable_count == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerGate(enable_voltage=1.5, brownout_voltage=1.8)
        with pytest.raises(ConfigurationError):
            PowerGate(enable_voltage=3.3, brownout_voltage=0.0)


class TestVoltageMonitor:
    def test_three_state_classification(self):
        monitor = VoltageMonitor(high_threshold=3.5, low_threshold=2.0)
        assert monitor.sample(3.6) is BufferSignal.NEAR_FULL
        assert monitor.sample(2.5) is BufferSignal.OK
        assert monitor.sample(1.9) is BufferSignal.NEAR_EMPTY
        assert monitor.last_signal is BufferSignal.NEAR_EMPTY

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VoltageMonitor(high_threshold=1.0, low_threshold=2.0)

    def test_reset(self):
        monitor = VoltageMonitor()
        monitor.sample(3.9)
        monitor.reset()
        assert monitor.last_signal is BufferSignal.OK


class TestEventSources:
    def test_periodic_events_fire_on_schedule(self):
        source = PeriodicEventSource(period=5.0)
        events = source.events_between(0.0, 16.0)
        assert [event.time for event in events] == [0.0, 5.0, 10.0, 15.0]

    def test_periodic_events_partial_window(self):
        source = PeriodicEventSource(period=5.0)
        events = source.events_between(6.0, 11.0)
        assert [event.time for event in events] == [10.0]

    def test_periodic_empty_window(self):
        assert PeriodicEventSource(period=5.0).events_between(3.0, 3.0) == []

    def test_periodic_validation(self):
        with pytest.raises(ConfigurationError):
            PeriodicEventSource(period=0.0)

    def test_poisson_events_are_deterministic_per_seed(self):
        first = PoissonEventSource(mean_interarrival=5.0, horizon=100.0, seed=1)
        second = PoissonEventSource(mean_interarrival=5.0, horizon=100.0, seed=1)
        assert list(first.arrival_times) == list(second.arrival_times)

    def test_poisson_rate_is_roughly_right(self):
        source = PoissonEventSource(mean_interarrival=5.0, horizon=10_000.0, seed=2)
        count = len(source.arrival_times)
        assert count == pytest.approx(2000, rel=0.15)

    def test_poisson_events_between_window(self):
        source = PoissonEventSource(mean_interarrival=2.0, horizon=100.0, seed=3)
        events = source.events_between(10.0, 20.0)
        assert all(10.0 <= event.time < 20.0 for event in events)

    def test_poisson_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonEventSource(mean_interarrival=0.0)


class TestPeriodicEmptyIntervalCursor:
    """The O(1) empty-interval fast path and its cached next-event cursor.

    The cursor backs two engine features: workload quiescence hints (via
    ``next_fire_time``) and mid-flight resumption — a batch lane handed to
    the scalar engine resumes its monotone window sequence from an
    arbitrary ``start_time``, and a fresh source must answer a sequence
    that *starts* mid-schedule just as correctly as one that grew into it.
    """

    def test_cursor_stays_exact_across_empty_windows(self):
        source = PeriodicEventSource(period=5.0)
        assert source.next_fire_time == 0.0
        assert [e.time for e in source.events_between(0.0, 0.1)] == [0.0]
        assert source.next_fire_time == 5.0
        # A long run of empty windows rides the cached-cursor fast path
        # without disturbing the next-event time.
        time = 0.1
        while time < 4.9:
            assert source.events_between(time, time + 0.1) == []
            assert source.next_fire_time == 5.0
            time += 0.1
        assert [e.time for e in source.events_between(time, time + 0.2)] == [5.0]
        assert source.next_fire_time == 10.0

    def test_reset_restores_the_cursor(self):
        source = PeriodicEventSource(period=5.0, phase=2.0)
        source.events_between(0.0, 13.0)
        assert source.next_fire_time == 17.0
        source.reset()
        assert source.next_fire_time == 2.0
        # Post-reset queries replay the schedule from the top, fast path
        # included.
        assert source.events_between(0.0, 1.0) == []
        assert source.next_fire_time == 2.0
        assert [e.time for e in source.events_between(1.0, 2.5)] == [2.0]

    def test_mid_flight_resume_starts_the_cursor_mid_schedule(self):
        """A fresh source queried from ``start_time`` onward (the scalar
        tail hand-off shape) must agree with one that stepped from zero."""
        grown = PeriodicEventSource(period=5.0)
        resumed = PeriodicEventSource(period=5.0)
        time = 0.0
        while time < 17.3:
            grown.events_between(time, time + 0.1)
            time = time + 0.1
        # The resumed source sees one aggregated catch-up window (exactly
        # what the engine's aggregated off-step delivers on resume)...
        caught_up = resumed.events_between(0.0, time)
        assert [e.time for e in caught_up] == [0.0, 5.0, 10.0, 15.0]
        # ...after which both cursors agree on the empty-interval fast path
        # and the next deadline.
        assert resumed.next_fire_time == grown.next_fire_time == 20.0
        for _ in range(20):
            assert grown.events_between(time, time + 0.1) == []
            assert resumed.events_between(time, time + 0.1) == []
            time += 0.1
        assert resumed.next_fire_time == grown.next_fire_time == 20.0

    def test_rewinding_query_falls_back_to_exact_arithmetic(self):
        source = PeriodicEventSource(period=5.0)
        source.events_between(0.0, 12.0)
        assert source.next_fire_time == 15.0
        # A non-monotone (rewound) query is answered exactly and re-syncs
        # the cursor to its window end.
        assert [e.time for e in source.events_between(4.0, 6.0)] == [5.0]
        assert source.next_fire_time == 10.0
