"""Unit tests for the nightly benchmark dominance-regression gate."""

from __future__ import annotations

import json
import sys
from pathlib import Path

BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"
sys.path.insert(0, str(BENCHMARKS))

from check_dominance import GATED_RATIOS, check, main  # noqa: E402


def _committed() -> dict:
    return {
        "batched_capacitance_sweep": {
            "batched_speedup_vs_serial": 1.5,
            "batch_segment_skip_speedup": 2.6,
        },
        "morphy_batched_sweep": {"batched_speedup_vs_serial": 1.7},
        "grid_sweep": {"fast_path_speedup": 1.4},
        "mixed_grid_react_heavy": {"fast_path_speedup": 1.5},
    }


def test_passes_when_fresh_matches_committed():
    assert check(_committed(), _committed(), margin=0.85) == []


def test_passes_inside_noise_margin():
    fresh = _committed()
    fresh["morphy_batched_sweep"]["batched_speedup_vs_serial"] = 1.7 * 0.9
    assert check(_committed(), fresh, margin=0.85) == []


def test_fails_below_the_committed_floor():
    fresh = _committed()
    fresh["batched_capacitance_sweep"]["batched_speedup_vs_serial"] = 1.0
    failures = check(_committed(), fresh, margin=0.85)
    assert len(failures) == 1
    assert "batched_capacitance_sweep.batched_speedup_vs_serial" in failures[0]


def test_missing_fresh_ratio_is_a_failure():
    fresh = _committed()
    del fresh["grid_sweep"]["fast_path_speedup"]
    failures = check(_committed(), fresh, margin=0.85)
    assert len(failures) == 1
    assert "no longer record" in failures[0]


def test_unrecorded_committed_floor_is_not_gated():
    committed = _committed()
    del committed["morphy_batched_sweep"]
    fresh = _committed()
    fresh["morphy_batched_sweep"]["batched_speedup_vs_serial"] = 0.1
    assert check(committed, fresh, margin=0.85) == []


def test_committed_file_gates_itself_via_cli(tmp_path):
    """The committed BENCH_sweep.json passes the gate against itself, and
    every gated ratio is actually recorded there (the gate has teeth)."""
    committed = json.loads((BENCHMARKS / "BENCH_sweep.json").read_text())
    for variant, key in GATED_RATIOS:
        assert key in committed.get(variant, {}), f"{variant}.{key} not recorded"
    snapshot = tmp_path / "committed.json"
    snapshot.write_text(json.dumps(committed))
    assert main([str(snapshot), str(BENCHMARKS / "BENCH_sweep.json")]) == 0


def test_cli_exit_code_on_regression(tmp_path, capsys):
    snapshot = tmp_path / "committed.json"
    snapshot.write_text(json.dumps(_committed()))
    fresh = _committed()
    fresh["mixed_grid_react_heavy"]["fast_path_speedup"] = 0.5
    fresh_path = tmp_path / "fresh.json"
    fresh_path.write_text(json.dumps(fresh))
    assert main([str(snapshot), str(fresh_path)]) == 1
    captured = capsys.readouterr()
    assert "FAIL mixed_grid_react_heavy.fast_path_speedup" in captured.err
