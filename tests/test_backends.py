"""The pluggable execution-backend API.

Three contracts are pinned here:

* **Registry round-trip** — backends are looked up by name, unknown names
  fail with the registry contents, and an out-of-tree backend registers
  and runs a grid without any runner changes (the seam the future
  remote/sharded dispatch backend plugs into).
* **`pool+batch` equivalence** — the composed backend runs the *full*
  quick-mode grid (every workload, trace, and buffer: static-kernel and
  Morphy-kernel lanes shard into lockstep batches, the unbatchable REACT
  cells fan out as scalar pool jobs, and Morphy groups narrower than
  ``min_lanes`` run scalar too) and
  returns the serial backend's results in serial order, under the same
  discipline as ``tests/test_batch_engine.py``: counters and times exactly,
  energy ledgers to 1e-9 (lockstep lanes may differ from the scalar fast
  path in floating-point summation order only).
* **Ordered collection** — pool-style backends must hide out-of-order
  worker completion.
"""

from dataclasses import dataclass
from typing import List, Optional

import pytest

from repro.buffers.morphy import MorphyBuffer
from repro.buffers.static import StaticBuffer
from repro.exceptions import ConfigurationError
from repro.experiments.backends import (
    BatchBackend,
    ExecutionBackend,
    PoolBatchBackend,
    ProcessPoolBackend,
    SerialBackend,
    _split_evenly,
    available_backends,
    register_backend,
    resolve_backend,
    trace_groups,
    unregister_backend,
)
from repro.experiments.runner import ExperimentRunner, ExperimentSettings
from repro.experiments import sweep
from repro.sim.results import SimulationResult
from repro.units import microfarads, millifarads

QUICK = ExperimentSettings(quick=True)

#: Result fields every backend must reproduce exactly (counters and
#: additively accumulated timestamps whose arithmetic is replicated
#: operation for operation in the lockstep engine).
EXACT_FIELDS = (
    "latency",
    "simulated_time",
    "on_time",
    "active_time",
    "enable_count",
    "brownout_count",
    "work_units",
)


def assert_results_equivalent(reference, candidate):
    """Candidate results must match the serial reference per the contract."""
    assert reference.trace_name == candidate.trace_name
    assert reference.buffer_name == candidate.buffer_name
    assert reference.workload_name == candidate.workload_name
    for field in EXACT_FIELDS:
        assert getattr(reference, field) == getattr(candidate, field), field
    assert reference.workload_metrics == candidate.workload_metrics
    for key, value in reference.buffer_ledger.items():
        assert candidate.buffer_ledger[key] == pytest.approx(
            value, rel=1e-9, abs=1e-15
        ), key


def slow_then_fast_buffers():
    """Morphy (slow, unbatchable) before a small static (fast, batchable)."""
    return [MorphyBuffer(), StaticBuffer(microfarads(770.0), name="770 uF")]


def capacitance_ladder_buffers():
    """Twelve trace-sharing static lanes: wide enough to shard-split."""
    return [
        StaticBuffer(millifarads(0.5 * (index + 1)), name=f"{0.5 * (index + 1):.1f} mF")
        for index in range(12)
    ]


def morphy_ladder_buffers():
    """Twelve topology-sharing Morphy lanes: one kernel, shard-splittable."""
    return [
        MorphyBuffer(
            unit_capacitance=millifarads(0.5 * (index + 1)),
            name=f"Morphy {0.5 * (index + 1):.1f} mF",
        )
        for index in range(12)
    ]


@dataclass
class RecordingBackend:
    """An out-of-tree backend: delegates to serial, records what it saw."""

    name = "recording"
    seen_specs: Optional[List] = None
    seen_groups: Optional[int] = None

    def run_specs(self, specs, progress=None):
        self.seen_specs = list(specs)
        self.seen_groups = len(trace_groups(specs))
        return SerialBackend().run_specs(specs, progress)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_backends()) >= {"serial", "pool", "batch", "pool+batch"}

    def test_resolve_builds_the_right_types(self):
        assert isinstance(resolve_backend("serial", QUICK), SerialBackend)
        assert isinstance(resolve_backend("batch", QUICK), BatchBackend)
        assert isinstance(resolve_backend("pool", QUICK), ProcessPoolBackend)
        assert isinstance(resolve_backend("pool+batch", QUICK), PoolBatchBackend)

    def test_resolve_threads_worker_width_from_settings(self):
        assert resolve_backend("pool", ExperimentSettings(workers=7)).workers == 7
        assert (
            resolve_backend("pool+batch", ExperimentSettings(workers=3)).workers == 3
        )

    def test_explicit_single_worker_is_honored_not_escalated(self):
        """`--workers 1` means one worker; only *unset* defaults to the host."""
        import os

        assert resolve_backend("pool", ExperimentSettings(workers=1)).workers == 1
        assert (
            resolve_backend("pool+batch", ExperimentSettings(workers=1)).workers == 1
        )
        host = os.cpu_count() or 2
        assert resolve_backend("pool", ExperimentSettings()).workers == host

    def test_unknown_backend_error_lists_registry(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_backend("quantum", QUICK)
        message = str(excinfo.value)
        assert "quantum" in message
        for name in ("serial", "pool", "batch", "pool+batch"):
            assert name in message

    def test_duplicate_registration_rejected_unless_replaced(self):
        try:
            register_backend("dup-test", lambda settings: SerialBackend())
            with pytest.raises(ConfigurationError, match="already registered"):
                register_backend("dup-test", lambda settings: SerialBackend())
            register_backend(
                "dup-test", lambda settings: BatchBackend(), replace=True
            )
            assert isinstance(resolve_backend("dup-test", QUICK), BatchBackend)
        finally:
            unregister_backend("dup-test")
        assert "dup-test" not in available_backends()

    def test_custom_backend_round_trip_through_runner(self):
        """A new backend registers and runs a grid with zero runner changes."""
        recorder = RecordingBackend()
        try:
            register_backend("recording-test", lambda settings: recorder)
            assert "recording-test" in available_backends()
            runner = ExperimentRunner(
                ExperimentSettings(quick=True, backend="recording-test"),
                buffer_factory=slow_then_fast_buffers,
            )
            results = runner.run_grid(
                workloads=("DE",), trace_names=("RF Cart", "RF Obstruction")
            )
        finally:
            unregister_backend("recording-test")
        assert len(results) == 4
        assert len(recorder.seen_specs) == 4
        assert recorder.seen_groups == 2  # one lane group per trace
        assert all(isinstance(r, SimulationResult) for r in results)

    def test_backends_satisfy_the_protocol(self):
        for name in ("serial", "pool", "batch", "pool+batch"):
            assert isinstance(resolve_backend(name, QUICK), ExecutionBackend)


class TestPartitioning:
    def test_trace_groups_preserve_spec_order(self):
        specs = ExperimentRunner(QUICK).grid_specs(
            workloads=("DE", "SC"), trace_names=("RF Cart", "RF Mobile")
        )
        groups = trace_groups(specs)
        assert len(groups) == 2
        for indices in groups.values():
            assert indices == sorted(indices)
        assert sorted(i for group in groups.values() for i in group) == list(
            range(len(specs))
        )

    def test_split_evenly_keeps_order_and_balance(self):
        assert _split_evenly(list(range(7)), 3) == [[0, 1, 2], [3, 4], [5, 6]]
        assert _split_evenly(list(range(4)), 9) == [[0], [1], [2], [3]]
        assert _split_evenly(list(range(4)), 1) == [[0, 1, 2, 3]]


class TestPoolBatchBackend:
    def test_full_quick_grid_matches_serial(self):
        """The acceptance gate: pool+batch == serial on the full quick grid.

        Every workload × trace × buffer cell, including the unbatchable
        REACT lanes the backend fans out as scalar pool jobs (the single
        Morphy lane per trace group stays below ``min_lanes`` and runs
        scalar as well).
        """
        serial = sweep(settings=QUICK, backend="serial")
        composed = sweep(settings=QUICK, backend=PoolBatchBackend(workers=4))
        assert len(serial) == len(composed) == 4 * 5 * 5
        assert serial.specs == composed.specs
        for reference, candidate in zip(serial.results, composed.results):
            assert_results_equivalent(reference, candidate)

    def test_sharded_wide_sweep_matches_serial(self):
        """Shard-splitting one trace's lanes across workers changes nothing."""
        serial = sweep(
            workloads=("SC",),
            trace_names=("RF Cart",),
            settings=QUICK,
            buffer_factory=capacitance_ladder_buffers,
            backend="serial",
        )
        composed = sweep(
            workloads=("SC",),
            trace_names=("RF Cart",),
            settings=QUICK,
            buffer_factory=capacitance_ladder_buffers,
            backend=PoolBatchBackend(workers=2),
        )
        for reference, candidate in zip(serial.results, composed.results):
            assert_results_equivalent(reference, candidate)

    def test_sharded_morphy_sweep_matches_serial(self):
        """Morphy lanes shard across workers exactly like the statics."""
        serial = sweep(
            workloads=("SC",),
            trace_names=("RF Cart",),
            settings=QUICK,
            buffer_factory=morphy_ladder_buffers,
            backend="serial",
        )
        composed = sweep(
            workloads=("SC",),
            trace_names=("RF Cart",),
            settings=QUICK,
            buffer_factory=morphy_ladder_buffers,
            backend=PoolBatchBackend(workers=2),
        )
        for reference, candidate in zip(serial.results, composed.results):
            assert_results_equivalent(reference, candidate)

    def test_workers_one_degrades_to_batch_backend(self, monkeypatch):
        import repro.experiments.backends as backends_module

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("workers=1 must not build a process pool")

        monkeypatch.setattr(backends_module, "ProcessPoolExecutor", forbidden)
        results = PoolBatchBackend(workers=1).run_specs(
            ExperimentRunner(QUICK, buffer_factory=capacitance_ladder_buffers)
            .grid_specs(workloads=("SC",), trace_names=("RF Cart",))
        )
        assert len(results) == 12

    def test_ordered_collection_under_out_of_order_completion(self):
        """The slow Morphy single must not displace the fast static lane."""
        serial = sweep(
            workloads=("DE",),
            trace_names=("RF Cart",),
            settings=QUICK,
            buffer_factory=slow_then_fast_buffers,
            backend="serial",
        )
        seen = []
        composed = sweep(
            workloads=("DE",),
            trace_names=("RF Cart",),
            settings=QUICK,
            buffer_factory=slow_then_fast_buffers,
            backend=PoolBatchBackend(workers=2),
            progress=lambda r: seen.append(r.buffer_name),
        )
        assert [r.buffer_name for r in composed.results] == ["Morphy", "770 uF"]
        assert seen == ["Morphy", "770 uF"]
        for reference, candidate in zip(serial.results, composed.results):
            assert_results_equivalent(reference, candidate)


class TestSweepApi:
    def test_sweep_returns_paired_specs_and_results(self):
        run = sweep(
            workloads=("SC",),
            trace_names=("RF Cart",),
            settings=QUICK,
        )
        assert run.backend == "serial"
        assert len(run.specs) == len(run.results) == 5
        for spec, result in run:
            assert spec.trace_name == result.trace_name

    def test_sweep_accepts_backend_name_and_instance(self):
        by_name = sweep(
            workloads=("SC",),
            trace_names=("RF Cart",),
            settings=QUICK,
            backend="batch",
        )
        by_instance = sweep(
            workloads=("SC",),
            trace_names=("RF Cart",),
            settings=QUICK,
            backend=BatchBackend(),
        )
        assert by_name.backend == by_instance.backend == "batch"
        for reference, candidate in zip(by_name.results, by_instance.results):
            assert_results_equivalent(reference, candidate)

    def test_sweep_resolves_backend_from_settings(self):
        run = sweep(
            workloads=("SC",),
            trace_names=("RF Cart",),
            settings=ExperimentSettings(quick=True, batch=True),
        )
        assert run.backend == "batch"
