"""Morphy switched-capacitor buffer: configurations, physics, and policy."""

import pytest
from hypothesis import given, strategies as st

from repro.buffers.morphy import (
    MorphyBuffer,
    MorphyConfiguration,
    MorphyConfigurationTable,
)
from repro.exceptions import ConfigurationError
from repro.units import millifarads


class TestConfigurationTable:
    def test_default_table_has_eleven_configurations(self):
        table = MorphyConfigurationTable()
        assert table.max_level + 1 == 11

    def test_default_range_matches_paper(self):
        low, high = MorphyConfigurationTable().capacitance_range
        assert low == pytest.approx(250e-6, rel=1e-6)
        assert high == pytest.approx(16e-3, rel=1e-6)

    def test_levels_are_monotonically_increasing(self):
        levels = MorphyConfigurationTable().levels()
        assert all(b > a for a, b in zip(levels, levels[1:]))

    def test_generic_fallback_for_other_sizes(self):
        table = MorphyConfigurationTable(cap_count=4, unit_capacitance=millifarads(1.0))
        assert table.equivalent_capacitance(0) == pytest.approx(0.25e-3)
        assert table.equivalent_capacitance(table.max_level) == pytest.approx(
            1e-3 / 1 + 3e-3
        )

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            MorphyConfiguration(groups=())
        with pytest.raises(ConfigurationError):
            MorphyConfiguration(groups=(0,))
        with pytest.raises(ConfigurationError):
            MorphyConfigurationTable(cap_count=1)
        with pytest.raises(ConfigurationError):
            MorphyConfigurationTable(
                cap_count=2, configurations=(MorphyConfiguration(groups=(3,)),)
            )

    def test_level_bounds_checked(self):
        table = MorphyConfigurationTable()
        with pytest.raises(ConfigurationError):
            table.configuration(99)


class TestReconfigurationPhysics:
    def test_paper_eight_capacitor_loss(self):
        """Leaving full parallel for 7-series + 1-across dissipates 56.25 %."""
        configurations = (
            MorphyConfiguration(groups=(1,) * 7, across=1),
            MorphyConfiguration(groups=(8,)),
        )
        buffer = MorphyBuffer(
            configurations=configurations,
            max_voltage=50.0,
            high_threshold=45.0,
            low_threshold=0.5,
            brownout_voltage=0.4,
        )
        buffer.set_state(1, [1.0] * 8)
        before = buffer.stored_energy
        dissipated = buffer.reconfigure(0)
        assert dissipated / before == pytest.approx(0.5625)

    def test_reconfiguration_leaves_across_caps_at_output_voltage(self):
        """After equalization every across capacitor sits at the output voltage."""
        buffer = MorphyBuffer()
        buffer.set_state(3, [0.7, 0.7, 0.9, 0.9, 1.1, 1.1, 1.3, 1.3])
        buffer.reconfigure(5)  # a configuration with capacitors across the output
        config = buffer.configuration
        groups, across, _ = buffer._membership(config)
        output = buffer.output_voltage
        assert across, "target configuration should place capacitors across the output"
        for index in across:
            assert buffer._voltages[index] == pytest.approx(output, rel=1e-9)

    def test_homogeneous_regrouping_of_equal_voltages_is_lossless(self):
        """Regrouping equal-voltage capacitors into equal groups moves no charge."""
        buffer = MorphyBuffer()
        buffer.set_state(0, [1.0] * 8)
        dissipated = buffer.reconfigure(3)  # (1x8) -> (2,2,2,2), all cells equal
        assert dissipated == pytest.approx(0.0, abs=1e-15)

    def test_reconfiguration_never_creates_energy(self):
        buffer = MorphyBuffer()
        buffer.set_state(2, [0.5, 1.0, 1.5, 2.0, 0.4, 0.8, 1.2, 1.6])
        before = buffer.stored_energy
        buffer.reconfigure(5)
        assert buffer.stored_energy <= before + 1e-12

    def test_same_level_reconfiguration_is_free(self):
        buffer = MorphyBuffer()
        buffer.set_state(2, [1.0] * 8)
        assert buffer.reconfigure(2) == 0.0

    def test_set_state_validation(self):
        buffer = MorphyBuffer()
        with pytest.raises(ConfigurationError):
            buffer.set_state(99, [1.0] * 8)
        with pytest.raises(ConfigurationError):
            buffer.set_state(0, [1.0] * 3)
        with pytest.raises(ConfigurationError):
            buffer.set_state(0, [-1.0] * 8)

    @given(
        level_from=st.integers(0, 10),
        level_to=st.integers(0, 10),
        voltage=st.floats(0.1, 3.5),
    )
    def test_arbitrary_reconfigurations_are_dissipative_only(self, level_from, level_to, voltage):
        buffer = MorphyBuffer()
        buffer.set_state(level_from, [voltage] * 8)
        before = buffer.stored_energy
        buffer.reconfigure(level_to)
        assert buffer.stored_energy <= before + 1e-12
        assert all(v >= 0.0 for v in buffer._voltages)


class TestEnergyFlow:
    def test_harvest_raises_output_voltage(self):
        buffer = MorphyBuffer()
        buffer.harvest(1e-3, dt=1.0)
        assert buffer.output_voltage > 0.0

    def test_network_efficiency_charged_on_both_directions(self):
        buffer = MorphyBuffer(network_efficiency=0.9)
        buffer.harvest(1e-3, dt=1.0)
        assert buffer.ledger.stored == pytest.approx(0.9e-3, rel=1e-6)
        delivered = buffer.draw(current=1e-3, dt=1.0)
        assert buffer.ledger.switching_loss > 0.0
        assert delivered < buffer.ledger.stored

    def test_overvoltage_clipping(self):
        buffer = MorphyBuffer()
        buffer.harvest(10.0, dt=1.0)
        assert buffer.output_voltage <= buffer.max_voltage + 1e-9
        assert buffer.ledger.clipped > 0.0

    def test_policy_expands_on_high_voltage(self):
        buffer = MorphyBuffer()
        buffer.set_state(0, [3.55 / 8.0] * 8)  # output at 3.55 V, above the threshold
        buffer.housekeeping(time=0.0, dt=0.1, system_on=False)
        assert buffer.level == 1
        assert buffer.reconfiguration_count == 1

    def test_policy_steps_down_on_low_voltage(self):
        buffer = MorphyBuffer()
        buffer.set_state(2, [0.3] * 8)
        buffer.housekeeping(time=0.0, dt=0.1, system_on=False)
        assert buffer.level == 1

    def test_longevity_supported(self):
        buffer = MorphyBuffer()
        assert buffer.supports_longevity
        buffer.request_longevity(1e-3)
        assert not buffer.longevity_satisfied()

    def test_can_reach_voltage_accounts_for_reconfiguration(self):
        buffer = MorphyBuffer()
        buffer.set_state(buffer.table.max_level, [1.0] * 8)
        # At 16 mF the output is only 1 V, but concentrating the same energy
        # on 250 uF would exceed the enable voltage.
        assert buffer.output_voltage < 3.3
        assert buffer.can_reach_voltage(3.3)

    def test_reset(self):
        buffer = MorphyBuffer()
        buffer.harvest(1e-3, dt=1.0)
        buffer.reset()
        assert buffer.stored_energy == 0.0
        assert buffer.level == 0
