"""Morphy switched-capacitor buffer: configurations, physics, and policy."""

import pytest
from hypothesis import given, strategies as st

from repro.buffers.morphy import (
    MorphyBuffer,
    MorphyConfiguration,
    MorphyConfigurationTable,
)
from repro.exceptions import ConfigurationError
from repro.units import millifarads


class TestConfigurationTable:
    def test_default_table_has_eleven_configurations(self):
        table = MorphyConfigurationTable()
        assert table.max_level + 1 == 11

    def test_default_range_matches_paper(self):
        low, high = MorphyConfigurationTable().capacitance_range
        assert low == pytest.approx(250e-6, rel=1e-6)
        assert high == pytest.approx(16e-3, rel=1e-6)

    def test_levels_are_monotonically_increasing(self):
        levels = MorphyConfigurationTable().levels()
        assert all(b > a for a, b in zip(levels, levels[1:]))

    def test_generic_fallback_for_other_sizes(self):
        table = MorphyConfigurationTable(cap_count=4, unit_capacitance=millifarads(1.0))
        assert table.equivalent_capacitance(0) == pytest.approx(0.25e-3)
        assert table.equivalent_capacitance(table.max_level) == pytest.approx(
            1e-3 / 1 + 3e-3
        )

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            MorphyConfiguration(groups=())
        with pytest.raises(ConfigurationError):
            MorphyConfiguration(groups=(0,))
        with pytest.raises(ConfigurationError):
            MorphyConfigurationTable(cap_count=1)
        with pytest.raises(ConfigurationError):
            MorphyConfigurationTable(
                cap_count=2, configurations=(MorphyConfiguration(groups=(3,)),)
            )

    def test_level_bounds_checked(self):
        table = MorphyConfigurationTable()
        with pytest.raises(ConfigurationError):
            table.configuration(99)


class TestReconfigurationPhysics:
    def test_paper_eight_capacitor_loss(self):
        """Leaving full parallel for 7-series + 1-across dissipates 56.25 %."""
        configurations = (
            MorphyConfiguration(groups=(1,) * 7, across=1),
            MorphyConfiguration(groups=(8,)),
        )
        buffer = MorphyBuffer(
            configurations=configurations,
            max_voltage=50.0,
            high_threshold=45.0,
            low_threshold=0.5,
            brownout_voltage=0.4,
        )
        buffer.set_state(1, [1.0] * 8)
        before = buffer.stored_energy
        dissipated = buffer.reconfigure(0)
        assert dissipated / before == pytest.approx(0.5625)

    def test_reconfiguration_leaves_across_caps_at_output_voltage(self):
        """After equalization every across capacitor sits at the output voltage."""
        buffer = MorphyBuffer()
        buffer.set_state(3, [0.7, 0.7, 0.9, 0.9, 1.1, 1.1, 1.3, 1.3])
        buffer.reconfigure(5)  # a configuration with capacitors across the output
        config = buffer.configuration
        groups, across, _ = buffer._membership(config)
        output = buffer.output_voltage
        assert across, "target configuration should place capacitors across the output"
        for index in across:
            assert buffer._voltages[index] == pytest.approx(output, rel=1e-9)

    def test_homogeneous_regrouping_of_equal_voltages_is_lossless(self):
        """Regrouping equal-voltage capacitors into equal groups moves no charge."""
        buffer = MorphyBuffer()
        buffer.set_state(0, [1.0] * 8)
        dissipated = buffer.reconfigure(3)  # (1x8) -> (2,2,2,2), all cells equal
        assert dissipated == pytest.approx(0.0, abs=1e-15)

    def test_reconfiguration_never_creates_energy(self):
        buffer = MorphyBuffer()
        buffer.set_state(2, [0.5, 1.0, 1.5, 2.0, 0.4, 0.8, 1.2, 1.6])
        before = buffer.stored_energy
        buffer.reconfigure(5)
        assert buffer.stored_energy <= before + 1e-12

    def test_same_level_reconfiguration_is_free(self):
        buffer = MorphyBuffer()
        buffer.set_state(2, [1.0] * 8)
        assert buffer.reconfigure(2) == 0.0

    def test_set_state_validation(self):
        buffer = MorphyBuffer()
        with pytest.raises(ConfigurationError):
            buffer.set_state(99, [1.0] * 8)
        with pytest.raises(ConfigurationError):
            buffer.set_state(0, [1.0] * 3)
        with pytest.raises(ConfigurationError):
            buffer.set_state(0, [-1.0] * 8)

    @given(
        level_from=st.integers(0, 10),
        level_to=st.integers(0, 10),
        voltage=st.floats(0.1, 3.5),
    )
    def test_arbitrary_reconfigurations_are_dissipative_only(
        self, level_from, level_to, voltage
    ):
        buffer = MorphyBuffer()
        buffer.set_state(level_from, [voltage] * 8)
        before = buffer.stored_energy
        buffer.reconfigure(level_to)
        assert buffer.stored_energy <= before + 1e-12
        assert all(v >= 0.0 for v in buffer._voltages)


class TestEnergyFlow:
    def test_harvest_raises_output_voltage(self):
        buffer = MorphyBuffer()
        buffer.harvest(1e-3, dt=1.0)
        assert buffer.output_voltage > 0.0

    def test_network_efficiency_charged_on_both_directions(self):
        buffer = MorphyBuffer(network_efficiency=0.9)
        buffer.harvest(1e-3, dt=1.0)
        assert buffer.ledger.stored == pytest.approx(0.9e-3, rel=1e-6)
        delivered = buffer.draw(current=1e-3, dt=1.0)
        assert buffer.ledger.switching_loss > 0.0
        assert delivered < buffer.ledger.stored

    def test_overvoltage_clipping(self):
        buffer = MorphyBuffer()
        buffer.harvest(10.0, dt=1.0)
        assert buffer.output_voltage <= buffer.max_voltage + 1e-9
        assert buffer.ledger.clipped > 0.0

    def test_policy_expands_on_high_voltage(self):
        buffer = MorphyBuffer()
        buffer.set_state(0, [3.55 / 8.0] * 8)  # output at 3.55 V, above the threshold
        buffer.housekeeping(time=0.0, dt=0.1, system_on=False)
        assert buffer.level == 1
        assert buffer.reconfiguration_count == 1

    def test_policy_steps_down_on_low_voltage(self):
        buffer = MorphyBuffer()
        buffer.set_state(2, [0.3] * 8)
        buffer.housekeeping(time=0.0, dt=0.1, system_on=False)
        assert buffer.level == 1

    def test_harvest_ledger_identity(self):
        """offered == stored + clipped + switching_loss, the statics' convention."""
        for energy in (1e-3, 10.0):  # below headroom, and heavily clipped
            buffer = MorphyBuffer(network_efficiency=0.95)
            buffer.harvest(energy, dt=1.0)
            ledger = buffer.ledger
            assert ledger.offered == pytest.approx(
                ledger.stored + ledger.clipped + ledger.switching_loss,
                rel=1e-12,
            )

    def test_clipped_energy_pays_no_conduction_loss(self):
        """Only energy that crosses the fabric is charged the network loss.

        The seed charged ``(1 - efficiency)`` of the *whole* input before
        clipping, so a full array burned conduction loss on energy that
        never entered the network; now switching loss is exactly the
        fabric's share of the stored energy.
        """
        buffer = MorphyBuffer(network_efficiency=0.95)
        buffer.harvest(10.0, dt=1.0)  # far beyond headroom: mostly clipped
        ledger = buffer.ledger
        assert ledger.clipped > 0.0
        crossing = ledger.stored / buffer.network_efficiency
        assert ledger.switching_loss == pytest.approx(
            crossing - ledger.stored, rel=1e-12
        )
        assert ledger.switching_loss < 10.0 * 0.05  # the seed's figure

    def test_lossless_network_matches_static_accounting(self):
        buffer = MorphyBuffer(network_efficiency=1.0)
        buffer.harvest(10.0, dt=1.0)
        ledger = buffer.ledger
        assert ledger.switching_loss == 0.0
        assert ledger.clipped == pytest.approx(10.0 - ledger.stored, rel=1e-12)

    def test_longevity_supported(self):
        buffer = MorphyBuffer()
        assert buffer.supports_longevity
        buffer.request_longevity(1e-3)
        assert not buffer.longevity_satisfied()

    def test_can_reach_voltage_accounts_for_reconfiguration(self):
        buffer = MorphyBuffer()
        buffer.set_state(buffer.table.max_level, [1.0] * 8)
        # At 16 mF the output is only 1 V, but concentrating the same energy
        # on 250 uF would exceed the enable voltage.
        assert buffer.output_voltage < 3.3
        assert buffer.can_reach_voltage(3.3)

    def test_reset(self):
        buffer = MorphyBuffer()
        buffer.harvest(1e-3, dt=1.0)
        buffer.reset()
        assert buffer.stored_energy == 0.0
        assert buffer.level == 0


class TestControllerPolicy:
    """The 10 Hz poll: hysteresis band, single-step moves, and scheduling."""

    def test_no_reconfiguration_inside_the_threshold_band(self):
        buffer = MorphyBuffer()  # thresholds 1.9 / 3.5
        # Level 2 chains six parallel groups, so equal cells at 2.5/6 V
        # put the output at ~2.5 V — inside the hysteresis band.
        buffer.set_state(2, [2.5 / 6.0] * 8)
        assert 1.9 < buffer.output_voltage < 3.5
        buffer.housekeeping(time=0.0, dt=0.1, system_on=False)
        assert buffer.level == 2
        assert buffer.reconfiguration_count == 0

    def test_one_level_per_poll_even_far_beyond_threshold(self):
        buffer = MorphyBuffer()
        buffer.set_state(0, [3.55 / 8.0] * 8)  # far above high on the smallest C
        buffer.housekeeping(time=0.0, dt=0.1, system_on=False)
        assert buffer.level == 1
        # A second call before the next poll period must not poll again.
        buffer.set_state(1, [3.55 / 8.0] * 8)
        buffer.housekeeping(time=0.05, dt=0.05, system_on=False)
        assert buffer.level == 1
        assert buffer.reconfiguration_count == 1

    def test_clamped_at_level_zero_and_max(self):
        buffer = MorphyBuffer()
        buffer.set_state(0, [0.1] * 8)  # below the low threshold, already at 0
        buffer.housekeeping(time=0.0, dt=0.1, system_on=False)
        assert buffer.level == 0
        assert buffer.reconfiguration_count == 0

        buffer = MorphyBuffer()
        top = buffer.table.max_level
        buffer.set_state(top, [3.55] * 8)  # above the high threshold at max C
        buffer.housekeeping(time=0.0, dt=0.1, system_on=False)
        assert buffer.level == top
        assert buffer.reconfiguration_count == 0

    def test_poll_times_snap_to_the_poll_period_grid(self):
        """Regression for the drift bug: intervals must not stretch by the
        step overshoot.  Stepping a 10 Hz controller with dt = 70 ms over
        ~1 s must poll once per 100 ms grid window that a step lands in
        (10 polls), not once per ~140 ms drifted interval (8 polls), and
        the schedule must always sit on an exact grid multiple.
        """
        buffer = MorphyBuffer(poll_rate_hz=10.0)
        polls = 0
        time = 0.0
        for _ in range(15):  # t = 0.0, 0.07, ..., 0.98
            before = buffer._next_poll_time
            buffer.housekeeping(time=time, dt=0.07, system_on=False)
            if buffer._next_poll_time != before:
                polls += 1
                ticks = buffer._next_poll_time / buffer.poll_period
                assert ticks == pytest.approx(round(ticks), abs=1e-9), (
                    "poll schedule left the 10 Hz grid"
                )
                assert buffer._next_poll_time > time
            time += 0.07
        assert polls == 10

    def test_poll_schedule_advances_past_fp_grid_points(self):
        """A step landing exactly on a grid point must not re-poll next step.

        4.3 / 0.1 floors to 42 in floating point, so the naive snap computes
        43 * 0.1 == 4.3 == time and the same 100 ms window polls twice.
        """
        buffer = MorphyBuffer(poll_rate_hz=10.0)
        buffer._next_poll_time = 4.3
        buffer.set_state(0, [3.55 / 8.0] * 8)  # above the high threshold
        buffer.housekeeping(time=4.3, dt=0.05, system_on=False)
        assert buffer._next_poll_time > 4.3
        assert buffer.reconfiguration_count == 1
        buffer.set_state(1, [3.55 / 8.0] * 8)  # still above: tempt a re-poll
        buffer.housekeeping(time=4.35, dt=0.05, system_on=False)
        assert buffer.reconfiguration_count == 1  # one level per poll period

    def test_poll_schedule_is_dt_independent(self):
        """Two different step sizes see polls at the same grid points."""

        def grid_points(dt, horizon=1.0):
            buffer = MorphyBuffer(poll_rate_hz=10.0)
            seen = []
            time = 0.0
            while time < horizon:
                before = buffer._next_poll_time
                buffer.housekeeping(time=time, dt=dt, system_on=False)
                if buffer._next_poll_time != before:
                    # The grid window this poll serviced.
                    seen.append(round(before / buffer.poll_period))
                time += dt
            return seen

        assert grid_points(0.01) == grid_points(0.07) == list(range(10))
