"""Shared fixtures for the test suite.

Simulation-based tests use short synthetic traces and a coarse timestep so
the whole suite stays fast; the full-length evaluation lives in the
benchmark harness and the ``react-repro`` CLI.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.buffers.react_adapter import ReactBuffer
from repro.buffers.static import StaticBuffer
from repro.harvester.synthetic import rf_trace
from repro.harvester.trace import PowerTrace
from repro.platform.mcu import MSP430FR5994
from repro.sim.engine import Simulator
from repro.sim.system import BatterylessSystem
from repro.units import microfarads


@pytest.fixture
def short_rf_trace() -> PowerTrace:
    """A 90-second office-RF style trace for fast end-to-end tests."""
    return rf_trace(
        duration=90.0, mean_power=1.5e-3, coefficient_of_variation=1.0, seed=5
    )


@pytest.fixture
def steady_trace() -> PowerTrace:
    """A constant 5 mW supply: enough to keep any buffer charged."""
    return PowerTrace(np.full(60, 5e-3), sample_period=1.0, name="steady")


@pytest.fixture
def weak_trace() -> PowerTrace:
    """A constant 50 uW supply: below every workload's running draw."""
    return PowerTrace(np.full(60, 50e-6), sample_period=1.0, name="weak")


@pytest.fixture
def small_static_buffer() -> StaticBuffer:
    return StaticBuffer(microfarads(770.0), name="770 uF")


@pytest.fixture
def react_buffer() -> ReactBuffer:
    return ReactBuffer()


def build_simulator(trace, buffer, workload, **kwargs) -> Simulator:
    """Simulator with test-friendly defaults (coarse steps, short drain)."""
    system = BatterylessSystem.build(trace, buffer, workload, mcu=MSP430FR5994())
    defaults = dict(dt_on=0.02, dt_off=0.1, max_drain_time=120.0)
    defaults.update(kwargs)
    return Simulator(system, **defaults)


@pytest.fixture
def simulator_factory():
    """Factory fixture so tests can build simulators with custom pieces."""
    return build_simulator
