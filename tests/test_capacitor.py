"""Single-capacitor model: charging, discharging, clipping, and the ledger."""

import pytest
from hypothesis import given, strategies as st

from repro.capacitors.capacitor import Capacitor, EnergyLedger, Supercapacitor
from repro.capacitors.leakage import ConstantCurrentLeakage
from repro.exceptions import ConfigurationError
from repro.units import capacitor_energy


def make_cap(capacitance=1e-3, rated=3.6, initial=0.0, leakage=None) -> Capacitor:
    kwargs = {}
    if leakage is not None:
        kwargs["leakage"] = leakage
    return Capacitor(
        capacitance=capacitance, rated_voltage=rated, initial_voltage=initial, **kwargs
    )


class TestConstruction:
    def test_rejects_nonpositive_capacitance(self):
        with pytest.raises(ConfigurationError):
            make_cap(capacitance=0.0)

    def test_rejects_nonpositive_rated_voltage(self):
        with pytest.raises(ConfigurationError):
            make_cap(rated=0.0)

    def test_rejects_initial_voltage_above_rating(self):
        with pytest.raises(ConfigurationError):
            make_cap(initial=4.0, rated=3.6)

    def test_initial_voltage_sets_charge(self):
        cap = make_cap(initial=2.0)
        assert cap.voltage == pytest.approx(2.0)
        assert cap.charge == pytest.approx(2e-3)

    def test_supercapacitor_shares_electrical_model(self):
        supercap = Supercapacitor(capacitance=0.1, rated_voltage=5.5)
        supercap.charge_with_energy(0.1)
        assert supercap.energy == pytest.approx(0.1)


class TestEnergyCharging:
    def test_charge_with_energy_stores_exactly(self):
        cap = make_cap()
        stored = cap.charge_with_energy(1e-3)
        assert stored == pytest.approx(1e-3)
        assert cap.energy == pytest.approx(1e-3)

    def test_charge_clips_at_rated_voltage(self):
        cap = make_cap()
        stored = cap.charge_with_energy(1.0)  # far beyond capacity
        assert cap.voltage == pytest.approx(3.6)
        assert stored == pytest.approx(cap.max_energy)
        assert cap.ledger.clipped == pytest.approx(1.0 - cap.max_energy)

    def test_charge_with_zero_energy_is_noop(self):
        cap = make_cap(initial=1.0)
        assert cap.charge_with_energy(0.0) == 0.0
        assert cap.voltage == pytest.approx(1.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            make_cap().charge_with_energy(-1.0)


class TestCurrentCharging:
    def test_current_charging_adds_charge(self):
        cap = make_cap()
        cap.charge_with_current(current=1e-3, dt=1.0)
        assert cap.charge == pytest.approx(1e-3)
        assert cap.voltage == pytest.approx(1.0)

    def test_current_charging_clips_and_records_heat(self):
        cap = make_cap(initial=3.5)
        cap.charge_with_current(current=1.0, dt=1.0)
        assert cap.voltage == pytest.approx(3.6)
        assert cap.ledger.clipped > 0.0

    def test_negative_current_rejected(self):
        with pytest.raises(ValueError):
            make_cap().charge_with_current(-1e-3, 1.0)


class TestDischarge:
    def test_discharge_current_removes_charge(self):
        cap = make_cap(initial=3.0)
        delivered = cap.discharge_current(current=1e-3, dt=1.0)
        assert cap.voltage == pytest.approx(2.0)
        assert delivered == pytest.approx(
            capacitor_energy(1e-3, 3.0) - capacitor_energy(1e-3, 2.0)
        )

    def test_discharge_respects_voltage_floor(self):
        cap = make_cap(initial=2.0)
        cap.discharge_current(current=1.0, dt=10.0, v_floor=1.8)
        assert cap.voltage == pytest.approx(1.8)

    def test_discharge_energy_partial_when_floor_hit(self):
        cap = make_cap(initial=2.0)
        delivered = cap.discharge_energy(1.0, v_floor=1.8)
        expected = capacitor_energy(1e-3, 2.0) - capacitor_energy(1e-3, 1.8)
        assert delivered == pytest.approx(expected)

    def test_discharge_energy_full_when_available(self):
        cap = make_cap(initial=3.0)
        delivered = cap.discharge_energy(1e-4)
        assert delivered == pytest.approx(1e-4)

    def test_negative_discharge_rejected(self):
        with pytest.raises(ValueError):
            make_cap(initial=1.0).discharge_current(-1e-3, 1.0)
        with pytest.raises(ValueError):
            make_cap(initial=1.0).discharge_energy(-1e-3)


class TestLeakage:
    def test_leakage_reduces_charge_and_updates_ledger(self):
        cap = make_cap(initial=3.0, leakage=ConstantCurrentLeakage(1e-6))
        leaked = cap.apply_leakage(dt=10.0)
        assert cap.voltage < 3.0
        assert leaked > 0.0
        assert cap.ledger.leaked == pytest.approx(leaked)

    def test_no_leakage_when_empty(self):
        cap = make_cap(leakage=ConstantCurrentLeakage(1e-6))
        assert cap.apply_leakage(dt=10.0) == 0.0

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            make_cap().apply_leakage(-1.0)


class TestLedgerAndReset:
    def test_ledger_merge_accumulates(self):
        first = EnergyLedger(absorbed=1.0, delivered=0.5, clipped=0.1, leaked=0.2)
        second = EnergyLedger(absorbed=2.0, delivered=1.5, clipped=0.3, leaked=0.4)
        first.merge(second)
        merged = first.as_dict()
        assert merged["absorbed"] == pytest.approx(3.0)
        assert merged["delivered"] == pytest.approx(2.0)
        assert merged["clipped"] == pytest.approx(0.4)
        assert merged["leaked"] == pytest.approx(0.6)

    def test_reset_clears_state_and_ledger(self):
        cap = make_cap(initial=3.0)
        cap.discharge_current(1e-3, 1.0)
        cap.reset()
        assert cap.voltage == 0.0
        assert cap.ledger.delivered == 0.0

    def test_headroom_energy(self):
        cap = make_cap(initial=1.8)
        assert cap.headroom_energy == pytest.approx(cap.max_energy - cap.energy)

    def test_is_full(self):
        cap = make_cap(initial=3.6)
        assert cap.is_full()
        assert not make_cap(initial=3.0).is_full()


@given(
    initial=st.floats(0.0, 3.6),
    energy_in=st.floats(0.0, 0.1),
    current=st.floats(0.0, 0.1),
    dt=st.floats(0.0, 10.0),
)
def test_energy_accounting_balances(initial, energy_in, current, dt):
    """absorbed - delivered == change in stored energy (no leakage configured)."""
    cap = make_cap(initial=initial)
    start = cap.energy
    cap.charge_with_energy(energy_in)
    cap.discharge_current(current, dt)
    absorbed = cap.ledger.absorbed
    delivered = cap.ledger.delivered
    assert cap.energy == pytest.approx(
        start + absorbed - delivered, rel=1e-9, abs=1e-12
    )
    assert 0.0 <= cap.voltage <= cap.rated_voltage + 1e-9
