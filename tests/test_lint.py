"""The invariant linter (``repro.analysis.lint``).

Every rule gets a known-bad fixture (the violation is reported) and a
known-good one (the idiomatic spelling passes); the pragma and baseline
escape hatches are exercised end-to-end; and the tree self-hosts — the
last test runs the real CLI over the installed package with the committed
baseline, which is exactly the blocking CI job.
"""

import json
import textwrap

import pytest

from repro.analysis.lint import (
    ALL_RULES,
    Baseline,
    BaselineEntry,
    SourceFile,
    lint_sources,
    rule_by_id,
)
from repro.analysis.lint.cli import main as lint_main
from repro.analysis.lint.core import PRAGMA_RULE_ID
from repro.analysis.lint.report import render_json, render_text


def run_rule(rule_id, rel_path, code, extra_files=()):
    """Lint ``code`` (dedented) as ``rel_path`` under one rule."""
    sources = [SourceFile(rel_path, textwrap.dedent(code))]
    for other_path, other_code in extra_files:
        sources.append(SourceFile(other_path, textwrap.dedent(other_code)))
    return lint_sources(sources, [rule_by_id(rule_id)])


def rules_of(result):
    return [finding.rule for finding in result.findings]


# ----------------------------------------------------------------------
# sqrt-parity
# ----------------------------------------------------------------------


class TestSqrtParity:
    def test_flags_pow_half_operator(self):
        result = run_rule(
            "sqrt-parity",
            "repro/buffers/thing.py",
            """
            def voltage(energy, capacitance):
                return (2.0 * energy / capacitance) ** 0.5
            """,
        )
        assert rules_of(result) == ["sqrt-parity"]
        assert "** 0.5" in result.findings[0].message

    def test_flags_pow_call(self):
        result = run_rule(
            "sqrt-parity",
            "repro/core/thing.py",
            """
            import numpy as np

            def voltage(energy):
                return pow(energy, 0.5) + np.power(energy, 0.5)
            """,
        )
        assert rules_of(result) == ["sqrt-parity", "sqrt-parity"]

    def test_math_sqrt_and_other_powers_pass(self):
        result = run_rule(
            "sqrt-parity",
            "repro/buffers/thing.py",
            """
            import math

            def voltage(energy, capacitance):
                cube = energy ** 3
                return math.sqrt(2.0 * energy / capacitance) + cube
            """,
        )
        assert result.clean

    def test_out_of_package_files_are_out_of_scope(self):
        result = run_rule("sqrt-parity", "scripts/helper.py", "y = x ** 0.5\n")
        assert result.clean


# ----------------------------------------------------------------------
# ledger-sum
# ----------------------------------------------------------------------


class TestLedgerSum:
    def test_flags_builtin_and_numpy_sum(self):
        result = run_rule(
            "ledger-sum",
            "repro/buffers/ledger.py",
            """
            import numpy as np

            def totals(offered, stored):
                a = sum(offered)
                b = np.sum(stored)
                c = stored.sum()
                return a + b + c
            """,
        )
        assert rules_of(result) == ["ledger-sum"] * 3

    def test_sequential_adds_and_integer_counting_pass(self):
        result = run_rule(
            "ledger-sum",
            "repro/sim/batch.py",
            """
            def totals(offered, mask, enabled):
                total = 0.0
                for value in offered:
                    total += value
                lanes = int(enabled.sum())
                positives = (mask > 0).sum()
                return total, lanes, positives
            """,
        )
        assert result.clean

    def test_sum_outside_critical_modules_is_fine(self):
        result = run_rule(
            "ledger-sum", "repro/workloads/report.py", "x = sum([1.0, 2.0])\n"
        )
        assert result.clean


# ----------------------------------------------------------------------
# additive-time
# ----------------------------------------------------------------------


class TestAdditiveTime:
    def test_flags_time_reconstruction(self):
        result = run_rule(
            "additive-time",
            "repro/sim/engine.py",
            """
            def replay(start, steps, dt):
                for k in range(steps):
                    time = start + k * dt
                    yield time
            """,
        )
        assert rules_of(result) == ["additive-time"]

    def test_flags_self_attribute_reconstruction(self):
        result = run_rule(
            "additive-time",
            "repro/buffers/thing.py",
            """
            class Replayer:
                def jump(self, segments, dt):
                    self.sim_time = len(segments) * dt
            """,
        )
        assert rules_of(result) == ["additive-time"]

    def test_additive_accumulation_and_wall_clock_pass(self):
        result = run_rule(
            "additive-time",
            "repro/sim/engine.py",
            """
            def advance(time, dt, steps, dt_per_step):
                time += dt
                wall_time = steps * dt_per_step  # bookkeeping, not simulated
                elapsed_time = 3 * dt
                return time, wall_time, elapsed_time
            """,
        )
        assert result.clean


# ----------------------------------------------------------------------
# picklable-settings
# ----------------------------------------------------------------------


class TestPicklableSettings:
    def test_flags_lambda_in_settings(self):
        result = run_rule(
            "picklable-settings",
            "repro/experiments/thing.py",
            """
            def build():
                return ExperimentSettings(buffers=lambda: make())
            """,
        )
        assert rules_of(result) == ["picklable-settings"]
        assert "lambda" in result.findings[0].message

    def test_flags_nested_function_in_run_spec(self):
        result = run_rule(
            "picklable-settings",
            "repro/experiments/thing.py",
            """
            def build():
                def local_factory():
                    return 1

                return RunSpec(factory=local_factory)
            """,
        )
        assert rules_of(result) == ["picklable-settings"]
        assert "local_factory" in result.findings[0].message

    def test_flags_lambda_buffer_factory_on_any_call(self):
        result = run_rule(
            "picklable-settings",
            "repro/experiments/thing.py",
            """
            def build(grid):
                return grid.add(buffer_factory=lambda: make())
            """,
        )
        assert rules_of(result) == ["picklable-settings"]

    def test_module_level_callables_pass(self):
        result = run_rule(
            "picklable-settings",
            "repro/experiments/thing.py",
            """
            def make_buffer():
                return 1

            def build():
                return RunSpec(factory=make_buffer)
            """,
        )
        assert result.clean


# ----------------------------------------------------------------------
# thread-ownership
# ----------------------------------------------------------------------

# A condensed version of remote/coordinator.py's shape: an accept thread
# and per-connection readers feeding one event queue, with the main
# dispatch loop owning the scheduling dict.
_COORDINATOR_GOOD = """
    import queue
    import threading


    class Coordinator:
        def __init__(self):
            self.events = queue.Queue()
            self.pending = {}
            self.lock = threading.Lock()
            self.stats = 0

        def serve(self, connections):
            for connection in connections:
                thread = threading.Thread(target=self._reader, args=(connection,))
                thread.start()
            while True:
                kind, payload = self.events.get()
                self.pending[kind] = payload  # main loop owns scheduling state

        def _reader(self, connection):
            for message in connection:
                self.events.put(("result", message))  # channel: fine
                with self.lock:
                    self.stats += 1  # held lock: fine
    """

_COORDINATOR_BAD = """
    import queue
    import threading


    class Coordinator:
        def __init__(self):
            self.events = queue.Queue()
            self.pending = {}

        def serve(self, connections):
            for connection in connections:
                thread = threading.Thread(target=self._reader, args=(connection,))
                thread.start()
            while True:
                kind, payload = self.events.get()
                self.pending[kind] = payload

        def _reader(self, connection):
            for message in connection:
                self.pending["done"] = message  # race: reader writes main state
    """


class TestThreadOwnership:
    def test_flags_cross_thread_mutation(self):
        result = run_rule(
            "thread-ownership", "repro/experiments/remote/fake.py", _COORDINATOR_BAD
        )
        assert rules_of(result) == ["thread-ownership"]
        finding = result.findings[0]
        assert "pending" in finding.message
        assert "thread:_reader" in finding.message
        assert 'self.pending["done"] = message' in finding.line_text

    def test_queue_and_lock_channels_pass(self):
        result = run_rule(
            "thread-ownership", "repro/experiments/remote/fake.py", _COORDINATOR_GOOD
        )
        assert result.clean

    def test_classes_without_threads_are_ignored(self):
        result = run_rule(
            "thread-ownership",
            "repro/experiments/remote/fake.py",
            """
            class Plain:
                def work(self):
                    self.state = 1

                def other(self):
                    self.state = 2
            """,
        )
        assert result.clean

    def test_only_remote_modules_are_in_scope(self):
        result = run_rule(
            "thread-ownership", "repro/experiments/local.py", _COORDINATOR_BAD
        )
        assert result.clean


# ----------------------------------------------------------------------
# exception-discipline
# ----------------------------------------------------------------------


class TestExceptionDiscipline:
    def test_flags_bare_and_silent_blanket_except(self):
        result = run_rule(
            "exception-discipline",
            "repro/experiments/store.py",
            """
            def load(path):
                try:
                    return path.read_text()
                except:
                    return None

            def load2(path):
                try:
                    return path.read_text()
                except Exception:
                    return None
            """,
        )
        assert rules_of(result) == ["exception-discipline"] * 2

    def test_logging_or_reraising_handlers_pass(self):
        result = run_rule(
            "exception-discipline",
            "repro/experiments/remote/worker.py",
            """
            import logging

            log = logging.getLogger(__name__)


            def load(path):
                try:
                    return path.read_text()
                except Exception as error:
                    log.warning("corrupt entry %s treated as a miss: %s", path, error)
                    return None


            def strict(path):
                try:
                    return path.read_text()
                except Exception:
                    raise
                except ValueError:
                    return None
            """,
        )
        assert result.clean


# ----------------------------------------------------------------------
# kernel-conformance
# ----------------------------------------------------------------------

_KERNEL_BASE = (
    "repro/buffers/base.py",
    """
    class LockstepKernel:
        def fast_forward(self, plan):
            raise NotImplementedError

        def fast_forward_on(self, plan):
            raise NotImplementedError
    """,
)


class TestKernelConformance:
    def test_flags_registered_kernel_missing_entry_points(self):
        result = run_rule(
            "kernel-conformance",
            "repro/sim/batch.py",
            """
            class GoodKernel(LockstepKernel):
                @classmethod
                def build(cls):
                    return cls()


            class BadKernel:
                @classmethod
                def build(cls):
                    return cls()


            KERNEL_BUILDERS = (GoodKernel.build, BadKernel.build)
            """,
            extra_files=[_KERNEL_BASE],
        )
        assert rules_of(result) == ["kernel-conformance"]
        assert "BadKernel" in result.findings[0].message
        assert "fast_forward" in result.findings[0].message

    def test_inherited_entry_points_pass(self):
        result = run_rule(
            "kernel-conformance",
            "repro/sim/batch.py",
            """
            class OwnKernel:
                def fast_forward(self, plan):
                    return plan

                def fast_forward_on(self, plan):
                    return plan

                @classmethod
                def build(cls):
                    return cls()


            class InheritingKernel(LockstepKernel):
                @classmethod
                def build(cls):
                    return cls()


            KERNEL_BUILDERS = (OwnKernel.build, InheritingKernel.build)
            """,
            extra_files=[_KERNEL_BASE],
        )
        assert result.clean


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------


class TestPragmas:
    def test_trailing_pragma_suppresses_its_own_line(self):
        result = run_rule(
            "sqrt-parity",
            "repro/buffers/thing.py",
            "y = x ** 0.5  # repro-lint: disable=sqrt-parity -- fixture exercising the pragma\n",
        )
        assert result.clean
        assert result.suppressed_by_pragma == 1

    def test_own_line_pragma_suppresses_the_next_line(self):
        result = run_rule(
            "ledger-sum",
            "repro/buffers/thing.py",
            """
            # repro-lint: disable=ledger-sum -- fixture: integer count, not a ledger
            total = sum(values)
            other = sum(values)
            """,
        )
        assert rules_of(result) == ["ledger-sum"]  # only the unpragma'd line
        assert result.suppressed_by_pragma == 1

    def test_pragma_without_justification_is_itself_a_finding(self):
        result = run_rule(
            "sqrt-parity",
            "repro/buffers/thing.py",
            "y = x ** 0.5  # repro-lint: disable=sqrt-parity\n",
        )
        assert sorted(rules_of(result)) == [PRAGMA_RULE_ID, "sqrt-parity"]

    def test_pragma_for_a_different_rule_does_not_suppress(self):
        result = run_rule(
            "sqrt-parity",
            "repro/buffers/thing.py",
            "y = x ** 0.5  # repro-lint: disable=ledger-sum -- wrong rule named\n",
        )
        assert rules_of(result) == ["sqrt-parity"]


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------


class TestBaseline:
    def _findings(self):
        return run_rule(
            "sqrt-parity", "repro/buffers/thing.py", "y = x ** 0.5\n"
        ).findings

    def test_round_trip_suppresses_grandfathered_findings(self, tmp_path):
        findings = self._findings()
        path = tmp_path / "lint-baseline.json"
        Baseline.from_findings(findings, "grandfathered in the fixture").save(path)
        loaded = Baseline.load(path)
        survivors, suppressed, unmatched = loaded.apply(findings)
        assert survivors == []
        assert suppressed == 1
        assert unmatched == []

    def test_stale_entries_are_reported(self):
        baseline = Baseline(
            [BaselineEntry("sqrt-parity", "repro/gone.py", "y = x ** 0.5", "was fixed")]
        )
        survivors, suppressed, unmatched = baseline.apply([])
        assert survivors == [] and suppressed == 0
        assert [entry.path for entry in unmatched] == ["repro/gone.py"]

    def test_matching_is_consume_once(self):
        findings = self._findings() * 2  # two identical violations, one entry
        baseline = Baseline.from_findings(findings[:1], "covers exactly one copy")
        survivors, suppressed, _ = baseline.apply(findings)
        assert suppressed == 1
        assert len(survivors) == 1

    def test_entries_must_carry_justification(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {"rule": "sqrt-parity", "path": "a.py", "line_text": "x"}
                    ],
                }
            )
        )
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(path)


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


class TestReports:
    def test_text_report_carries_location_and_summary(self):
        result = run_rule("sqrt-parity", "repro/buffers/thing.py", "y = x ** 0.5\n")
        text = render_text(result, ALL_RULES)
        assert "repro/buffers/thing.py:1:5: sqrt-parity:" in text
        assert "1 finding(s) in 1 file(s)" in text

    def test_json_report_is_machine_readable(self):
        result = run_rule("sqrt-parity", "repro/buffers/thing.py", "y = x ** 0.5\n")
        payload = json.loads(render_json(result, ALL_RULES))
        assert payload["clean"] is False
        assert payload["counts_by_rule"] == {"sqrt-parity": 1}
        assert payload["findings"][0]["line_text"] == "y = x ** 0.5"
        assert set(payload["rules"]) == {rule.id for rule in ALL_RULES}


# ----------------------------------------------------------------------
# CLI and self-hosting
# ----------------------------------------------------------------------


def _bad_package_file(tmp_path):
    """A ``repro/module.py`` violation: rule scopes match package-relative
    posix paths, so CLI fixtures need a real package directory."""
    package = tmp_path / "repro"
    package.mkdir()
    (package / "__init__.py").write_text("")
    bad = package / "module.py"
    bad.write_text("y = x ** 0.5\n")
    return bad


class TestCli:
    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            lint_main(["--help"])
        assert excinfo.value.code == 0
        assert "repro-lint: disable=RULE" in capsys.readouterr().out

    def test_lint_subcommand_reachable_from_main_cli(self, capsys):
        from repro.experiments.cli import main as cli_main

        assert cli_main(["lint", "--list-rules"]) == 0
        assert "sqrt-parity" in capsys.readouterr().out

    def test_findings_exit_nonzero_and_write_json_report(self, tmp_path, capsys):
        bad = _bad_package_file(tmp_path)
        report = tmp_path / "report.json"
        code = lint_main([str(bad), "--json-report", str(report), "--no-baseline"])
        assert code == 1
        payload = json.loads(report.read_text())
        assert payload["counts_by_rule"] == {"sqrt-parity": 1}

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        bad = _bad_package_file(tmp_path)
        baseline = tmp_path / "lint-baseline.json"
        assert (
            lint_main(
                [
                    str(bad),
                    "--baseline",
                    str(baseline),
                    "--write-baseline",
                    "fixture grandfathering",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert lint_main([str(bad), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_stale_baseline_fails_the_run(self, tmp_path, capsys):
        clean = tmp_path / "module.py"
        clean.write_text("import math\ny = math.sqrt(x)\n")
        baseline = tmp_path / "lint-baseline.json"
        Baseline(
            [BaselineEntry("sqrt-parity", "module.py", "y = x ** 0.5", "since fixed")]
        ).save(baseline)
        assert lint_main([str(clean), "--baseline", str(baseline)]) == 1
        assert "stale entry" in capsys.readouterr().out


class TestSelfHosting:
    def test_tree_passes_its_own_linter(self, capsys):
        """The blocking CI contract: the installed package lints clean
        against the committed baseline (justified pragmas included)."""
        assert lint_main([]) == 0
        assert "clean:" in capsys.readouterr().out
