"""Synthetic trace generators: calibration against Table 3 and determinism."""

import pytest

from repro.exceptions import TraceError
from repro.harvester.synthetic import (
    TABLE3_ORDER,
    TABLE3_SPECS,
    SyntheticTraceSpec,
    generate_table3_trace,
    generate_table3_traces,
    rf_trace,
    scaled_table3_traces,
    solar_night_trace,
    solar_trace,
)


class TestTable3Calibration:
    @pytest.mark.parametrize("name", TABLE3_ORDER)
    def test_duration_matches_table3(self, name):
        trace = generate_table3_trace(name)
        assert trace.duration == pytest.approx(TABLE3_SPECS[name].duration, rel=0.01)

    @pytest.mark.parametrize("name", TABLE3_ORDER)
    def test_mean_power_matches_table3_exactly(self, name):
        trace = generate_table3_trace(name)
        assert trace.mean_power == pytest.approx(
            TABLE3_SPECS[name].mean_power, rel=1e-6
        )

    @pytest.mark.parametrize("name", TABLE3_ORDER)
    def test_cv_matches_table3_within_tolerance(self, name):
        trace = generate_table3_trace(name)
        target = TABLE3_SPECS[name].coefficient_of_variation
        assert trace.coefficient_of_variation == pytest.approx(target, rel=0.25)

    @pytest.mark.parametrize("name", TABLE3_ORDER)
    def test_all_samples_nonnegative(self, name):
        trace = generate_table3_trace(name)
        assert float(trace.powers.min()) >= 0.0

    def test_unknown_name_rejected(self):
        with pytest.raises(TraceError):
            generate_table3_trace("RF Moon Base")


class TestDeterminism:
    def test_same_seed_same_trace(self):
        first = generate_table3_trace("RF Cart", seed=3)
        second = generate_table3_trace("RF Cart", seed=3)
        assert (first.powers == second.powers).all()

    def test_different_seed_different_trace(self):
        first = generate_table3_trace("RF Cart", seed=3)
        second = generate_table3_trace("RF Cart", seed=4)
        assert not (first.powers == second.powers).all()

    def test_generate_all_returns_table_order(self):
        traces = generate_table3_traces()
        assert list(traces) == list(TABLE3_ORDER)

    def test_generate_subset(self):
        traces = generate_table3_traces(names=["RF Cart"])
        assert list(traces) == ["RF Cart"]


class TestCustomGenerators:
    def test_rf_trace_hits_requested_mean(self):
        trace = rf_trace(duration=200.0, mean_power=2e-3, coefficient_of_variation=1.0)
        assert trace.mean_power == pytest.approx(2e-3, rel=1e-6)
        assert trace.duration == pytest.approx(200.0)

    def test_solar_trace_is_spiky(self):
        trace = solar_trace(
            duration=1800.0, mean_power=5e-3, coefficient_of_variation=2.0
        )
        stats = trace.statistics()
        assert stats.spike_energy_fraction > 0.3

    def test_solar_night_trace_is_weak(self):
        trace = solar_night_trace(duration=600.0)
        assert trace.mean_power < 0.1e-3

    def test_scaled_table3_traces_cap_duration(self):
        traces = scaled_table3_traces(duration_cap=400.0)
        assert all(trace.duration <= 400.0 + 1.0 for trace in traces.values())

    def test_spec_validation(self):
        with pytest.raises(TraceError):
            SyntheticTraceSpec(
                name="bad", kind="rf", duration=0.0, mean_power=1e-3,
                coefficient_of_variation=1.0, burst_rate=0.1, burst_duration=5.0,
                base_fraction=0.5,
            )
        with pytest.raises(TraceError):
            SyntheticTraceSpec(
                name="bad", kind="rf", duration=10.0, mean_power=1e-3,
                coefficient_of_variation=1.0, burst_rate=0.1, burst_duration=5.0,
                base_fraction=1.5,
            )
