"""The content-addressed result store and the memoizing ``cached:`` backend.

Four contracts are pinned here:

* **Fingerprint stability** — cache keys depend only on what a run
  computes: field order, execution-only knobs (``workers``, ``batch``,
  ``backend``, ``cache_dir``, ``use_cache``), and explicitly spelled
  defaults never change a key, and a fresh interpreter (different hash
  randomization) derives the same key.
* **Invalidation** — changing the code-version salt misses every old
  entry; a corrupted or foreign entry is a miss, never a crash.
* **Concurrency** — writes are atomic under a process pool hammering the
  same keys; no torn entry is ever loadable.
* **Equivalence** — ``cached:serial`` returns the serial backend's results
  on the full quick grid under the ``test_batch_engine`` discipline (exact
  counters, 1e-9 ledgers), both cold and warm, and the warm run performs
  zero simulator steps (proven with an inner backend that raises).
"""

import json
import pickle
import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Tuple

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import sweep
from repro.experiments.backends import (
    RunSpec,
    SerialBackend,
    available_backends,
    resolve_backend,
    trace_groups,
)
from repro.experiments.cli import build_parser
from repro.experiments.runner import ExperimentRunner, ExperimentSettings
from repro.experiments.store import (
    STATS_FILENAME,
    CachedBackend,
    ResultStore,
    StoreStats,
    callable_identity,
    settings_fingerprint,
    spec_fingerprint,
)
from repro.sim.results import SimulationResult
from repro.units import microfarads

QUICK = ExperimentSettings(quick=True)

#: Result fields every backend must reproduce exactly (same contract as
#: tests/test_backends.py).
EXACT_FIELDS = (
    "latency",
    "simulated_time",
    "on_time",
    "active_time",
    "enable_count",
    "brownout_count",
    "work_units",
)


def assert_results_equivalent(reference, candidate):
    """Candidate results must match the serial reference per the contract."""
    assert reference.trace_name == candidate.trace_name
    assert reference.buffer_name == candidate.buffer_name
    assert reference.workload_name == candidate.workload_name
    for field_name in EXACT_FIELDS:
        assert getattr(reference, field_name) == getattr(candidate, field_name), (
            field_name
        )
    assert reference.workload_metrics == candidate.workload_metrics
    for key, value in reference.buffer_ledger.items():
        assert candidate.buffer_ledger[key] == pytest.approx(
            value, rel=1e-9, abs=1e-15
        ), key


def make_spec(**overrides) -> RunSpec:
    parameters = dict(
        workload="SC", trace_name="RF Cart", buffer_index=0, settings=QUICK
    )
    parameters.update(overrides)
    return RunSpec(**parameters)


def tiny_buffers():
    """A second module-level factory, distinct from ``standard_buffers``."""
    from repro.buffers.static import StaticBuffer

    return [StaticBuffer(microfarads(770.0), name="770 uF")]


def make_result(work_units: float = 1.0) -> SimulationResult:
    return SimulationResult(
        trace_name="RF Cart",
        buffer_name="770 uF",
        workload_name="SC",
        simulated_time=400.0,
        trace_duration=400.0,
        latency=1.25,
        on_time=300.0,
        active_time=200.0,
        enable_count=3,
        brownout_count=2,
        work_units=work_units,
        workload_metrics={"samples": work_units},
        buffer_ledger={"offered": 0.5, "stored": 0.25},
    )


@dataclass(frozen=True)
class ListSettings(ExperimentSettings):
    """A settings subclass with an unhashable field (the group_key bugfix)."""

    extra_taps: List[float] = field(default_factory=lambda: [1.0, 2.0])


@dataclass
class PoisonBackend:
    """Raises on any attempt to simulate — proves a warm run never runs."""

    name = "poison"

    def run_specs(self, specs, progress=None):
        raise AssertionError(
            f"warm run delegated {len(list(specs))} specs to the inner backend"
        )


def _write_entries(root: str, salt: str, work_units: float, lap: int) -> bool:
    """Pool worker: write every quick-grid SC/RF-Cart entry ``lap`` times."""
    store = ResultStore(root, salt=salt)
    specs = [make_spec(buffer_index=index) for index in range(5)]
    for _ in range(lap):
        for spec in specs:
            store.store(spec, make_result(work_units))
    return all(store.load(spec) is not None for spec in specs)


class TestFingerprint:
    def test_field_order_and_execution_knobs_are_irrelevant(self):
        base = ExperimentSettings(quick=True, seed=3)
        reordered = ExperimentSettings(seed=3, quick=True)
        executed = ExperimentSettings(
            quick=True,
            seed=3,
            workers=8,
            batch=True,
            backend="pool+batch",
            cache_dir="/somewhere",
            use_cache=False,
        )
        assert settings_fingerprint(base) == settings_fingerprint(reordered)
        assert settings_fingerprint(base) == settings_fingerprint(executed)

    def test_explicit_default_equals_unset(self):
        spelled = ExperimentSettings(quick=True, dt_on=0.01, fast_forward=True)
        assert settings_fingerprint(spelled) == settings_fingerprint(QUICK)

    def test_result_affecting_fields_change_the_fingerprint(self):
        for overrides in ({"seed": 1}, {"quick": False}, {"fast_forward": False}):
            changed = ExperimentSettings(**dict({"quick": True}, **overrides))
            assert settings_fingerprint(changed) != settings_fingerprint(QUICK)

    def test_subclass_never_collides_with_base(self):
        assert settings_fingerprint(ListSettings(quick=True)) != (
            settings_fingerprint(QUICK)
        )

    def test_spec_fingerprint_covers_cell_coordinates_and_factory(self):
        base = spec_fingerprint(make_spec())
        assert spec_fingerprint(make_spec(buffer_index=1)) != base
        assert spec_fingerprint(make_spec(trace_name="RF Mobile")) != base
        assert spec_fingerprint(make_spec(workload="DE")) != base
        assert spec_fingerprint(make_spec(buffer_factory=tiny_buffers)) != base

    def test_lambda_factory_is_rejected(self):
        with pytest.raises(ConfigurationError, match="module-level"):
            callable_identity(lambda: [])

    def test_fingerprint_stable_across_interpreters(self, tmp_path):
        """A fresh process (fresh hash randomization) derives the same key."""
        program = (
            "from repro.experiments.backends import RunSpec\n"
            "from repro.experiments.runner import ExperimentSettings\n"
            "from repro.experiments.store import ResultStore, spec_fingerprint\n"
            "spec = RunSpec(workload='SC', trace_name='RF Cart', buffer_index=0,\n"
            "               settings=ExperimentSettings(quick=True, seed=3))\n"
            "print(spec_fingerprint(spec))\n"
            "print(ResultStore('unused', salt='pinned').key_for(spec))\n"
        )
        spec = make_spec(settings=ExperimentSettings(quick=True, seed=3))
        expected_fp = spec_fingerprint(spec)
        expected_key = ResultStore(tmp_path, salt="pinned").key_for(spec)
        for hashseed in ("1", "2"):
            child = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                check=True,
                env={
                    "PYTHONPATH": str(Path(__file__).parent.parent / "src"),
                    "PYTHONHASHSEED": hashseed,
                },
            )
            assert child.stdout.splitlines() == [expected_fp, expected_key]


class TestGroupKeyBugfix:
    def test_group_key_is_a_plain_string_pair(self):
        key = make_spec().group_key
        assert isinstance(key[0], str) and key[1] == "RF Cart"

    def test_unhashable_settings_subclass_groups(self):
        """Settings with list fields used to blow up dict-keyed grouping."""
        settings = ListSettings(quick=True, extra_taps=[0.5])
        with pytest.raises(TypeError):
            hash(settings)  # the old GroupKey would have required this
        specs = [
            make_spec(settings=settings, buffer_index=index) for index in range(3)
        ]
        groups = trace_groups(specs)
        assert list(groups.values()) == [[0, 1, 2]]

    def test_equal_value_instances_share_a_lane_group(self):
        a = make_spec(settings=ExperimentSettings(quick=True))
        b = make_spec(settings=ExperimentSettings(quick=True), buffer_index=1)
        assert a.group_key == b.group_key
        assert len(trace_groups([a, b])) == 1

    def test_workers_only_differences_share_a_lane_group(self):
        """Execution knobs don't split lanes: the trace is identical."""
        a = make_spec(settings=ExperimentSettings(quick=True, workers=2))
        b = make_spec(settings=ExperimentSettings(quick=True, workers=8))
        assert a.group_key == b.group_key


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        spec, result = make_spec(), make_result()
        assert store.load(spec) is None
        store.store(spec, result)
        loaded = store.load(spec)
        assert loaded == result
        assert store.stats.hits == 1 and store.stats.misses == 1
        assert store.stats.writes == 1
        assert store.stats.bytes_written == store.stats.bytes_read > 0

    def test_salt_change_invalidates_every_entry(self, tmp_path):
        old = ResultStore(tmp_path, salt="v1")
        spec = make_spec()
        old.store(spec, make_result())
        new = ResultStore(tmp_path, salt="v2")
        assert new.load(spec) is None
        assert old.load(spec) is not None

    def test_corrupted_entry_is_a_miss_not_a_crash(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        spec = make_spec()
        store.store(spec, make_result())
        path = store.entry_path(spec)
        path.write_bytes(b"\x00garbage, not a pickle")
        assert store.load(spec) is None
        assert store.stats.misses == 1

    def test_foreign_entry_with_wrong_fingerprint_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        spec = make_spec()
        payload = {"fingerprint": "someone-else", "result": make_result()}
        store.entry_path(spec).parent.mkdir(parents=True)
        store.entry_path(spec).write_bytes(pickle.dumps(payload))
        assert store.load(spec) is None

    def test_entry_holding_a_non_result_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        spec = make_spec()
        payload = {"fingerprint": spec_fingerprint(spec), "result": {"not": "it"}}
        store.entry_path(spec).parent.mkdir(parents=True)
        store.entry_path(spec).write_bytes(pickle.dumps(payload))
        assert store.load(spec) is None

    def test_concurrent_pool_writers_never_tear_an_entry(self, tmp_path):
        with ProcessPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(_write_entries, str(tmp_path), "s", float(n), 10)
                for n in range(4)
            ]
            assert all(future.result() for future in futures)
        store = ResultStore(tmp_path, salt="s")
        for index in range(5):
            loaded = store.load(make_spec(buffer_index=index))
            assert loaded is not None  # last-writer-wins, never torn
            assert loaded.work_units in {0.0, 1.0, 2.0, 3.0}
        leftovers = list(Path(tmp_path).rglob("*.tmp"))
        assert leftovers == []

    def test_stats_file_is_written_as_json(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        store.store(make_spec(), make_result())
        store.load(make_spec())
        path = store.write_stats()
        assert path.name == STATS_FILENAME
        payload = json.loads(path.read_text())
        assert payload["writes"] == 1 and payload["hits"] == 1


class TestRegistryIntegration:
    def test_cached_variants_are_listed(self):
        names = available_backends()
        for base in ("serial", "pool", "batch", "pool+batch"):
            assert f"cached:{base}" in names

    def test_resolve_builds_a_cached_wrapper(self, tmp_path):
        settings = ExperimentSettings(quick=True, cache_dir=str(tmp_path))
        backend = resolve_backend("cached:serial", settings)
        assert isinstance(backend, CachedBackend)
        assert isinstance(backend.inner, SerialBackend)
        assert backend.name == "cached:serial"
        assert backend.store.root == tmp_path

    def test_nested_and_unknown_cached_names_are_rejected(self):
        with pytest.raises(ConfigurationError, match="cached:<inner>"):
            resolve_backend("cached:cached:serial", QUICK)
        with pytest.raises(ConfigurationError, match="quantum"):
            resolve_backend("cached:quantum", QUICK)

    def test_backend_name_wraps_and_strips(self, tmp_path):
        cache_dir = str(tmp_path)
        assert ExperimentSettings(cache_dir=cache_dir).backend_name == "cached:serial"
        assert (
            ExperimentSettings(cache_dir=cache_dir, batch=True).backend_name
            == "cached:batch"
        )
        assert (
            ExperimentSettings(backend="cached:pool", use_cache=False).backend_name
            == "pool"
        )
        explicit = ExperimentSettings(backend="cached:serial", cache_dir=cache_dir)
        assert explicit.backend_name == "cached:serial"

    def test_cli_flags_reach_the_settings(self):
        args = build_parser().parse_args(
            ["table4", "--quick", "--backend", "cached:serial", "--cache-dir", "/d"]
        )
        assert args.backend == "cached:serial" and args.cache_dir == "/d"
        settings = ExperimentSettings(
            backend=args.backend, cache_dir=args.cache_dir, use_cache=not args.no_cache
        )
        assert settings.backend_name == "cached:serial"
        args = build_parser().parse_args(["table4", "--no-cache"])
        assert args.no_cache


class TestCachedBackendEquivalence:
    @pytest.fixture(scope="class")
    def serial_reference(self):
        return sweep(settings=QUICK, backend="serial")

    def test_full_quick_grid_cold_and_warm_match_serial(
        self, serial_reference, tmp_path
    ):
        settings = ExperimentSettings(quick=True, cache_dir=str(tmp_path))
        cold = sweep(settings=settings)
        assert cold.backend == "cached:serial"
        assert cold.cache_stats.misses == len(cold) == len(serial_reference)
        assert cold.cache_stats.hits == 0
        assert cold.cache_stats.writes == len(cold)
        for reference, candidate in zip(serial_reference.results, cold.results):
            assert_results_equivalent(reference, candidate)

        warm = sweep(settings=settings)
        assert warm.cache_stats.hits == len(warm)
        assert warm.cache_stats.misses == 0 and warm.cache_stats.writes == 0
        for reference, candidate in zip(serial_reference.results, warm.results):
            assert_results_equivalent(reference, candidate)

    def test_warm_run_performs_zero_simulator_steps(self, tmp_path):
        """All-hit grids never touch the inner backend (it would raise)."""
        settings = ExperimentSettings(quick=True, cache_dir=str(tmp_path))
        sweep(workloads=("SC",), trace_names=("RF Cart",), settings=settings)
        store = ResultStore(tmp_path)
        order: List[Tuple[str, str]] = []
        warm = sweep(
            workloads=("SC",),
            trace_names=("RF Cart",),
            settings=settings,
            backend=CachedBackend(PoisonBackend(), store),
            progress=lambda r: order.append((r.buffer_name, r.workload_name)),
        )
        assert warm.cache_stats.hits == len(warm) == 5
        assert order == [(r.buffer_name, r.workload_name) for r in warm.results]

    def test_hits_are_shared_across_inner_backends(self, tmp_path):
        """A pool+batch run's entries answer a later serial run: the key
        excludes execution knobs, so the store is one cache per grid, not
        one per backend."""
        cold_settings = ExperimentSettings(
            quick=True, cache_dir=str(tmp_path), workers=2, batch=True
        )
        cold = sweep(
            workloads=("DE",), trace_names=("RF Cart",), settings=cold_settings
        )
        assert cold.backend == "cached:pool+batch"
        warm = sweep(
            workloads=("DE",),
            trace_names=("RF Cart",),
            settings=ExperimentSettings(quick=True, cache_dir=str(tmp_path)),
        )
        assert warm.backend == "cached:serial"
        assert warm.cache_stats.hits == len(warm) and warm.cache_stats.misses == 0
        for reference, candidate in zip(cold.results, warm.results):
            assert_results_equivalent(reference, candidate)

    def test_partial_grids_only_compute_the_delta(self, tmp_path):
        settings = ExperimentSettings(quick=True, cache_dir=str(tmp_path))
        sweep(workloads=("SC",), trace_names=("RF Cart",), settings=settings)
        grown = sweep(
            workloads=("SC",), trace_names=("RF Cart", "RF Mobile"), settings=settings
        )
        assert grown.cache_stats.hits == 5 and grown.cache_stats.misses == 5

    def test_no_cache_strips_the_wrapper(self, tmp_path):
        settings = ExperimentSettings(
            quick=True, cache_dir=str(tmp_path), use_cache=False
        )
        run = sweep(workloads=("SC",), trace_names=("RF Cart",), settings=settings)
        assert run.backend == "serial" and run.cache_stats is None
        assert not any(Path(tmp_path).iterdir())

    def test_stats_delta_is_per_run_not_cumulative(self, tmp_path):
        store = ResultStore(tmp_path, salt="s")
        backend = CachedBackend(SerialBackend(), store)
        runner = ExperimentRunner(QUICK, backend=backend)
        specs = runner.grid_specs(workloads=("SC",), trace_names=("RF Cart",))
        backend.run_specs(specs)
        first = backend.last_run_stats
        backend.run_specs(specs)
        second = backend.last_run_stats
        assert first == StoreStats(
            misses=5, writes=5, bytes_written=first.bytes_written
        )
        assert second.hits == 5 and second.misses == 0 and second.writes == 0
