"""Capacitor-network math: combination rules and charge redistribution.

These functions encode the physics behind both REACT's reclamation math and
Morphy's switching loss, so they get property-based coverage.
"""

import pytest
from hypothesis import given, strategies as st

from repro.capacitors.network import (
    equalize_parallel,
    parallel_capacitance,
    redistribute_charge,
    series_capacitance,
    transfer_energy_between,
)
from repro.units import capacitor_energy


class TestCombinationRules:
    def test_series_of_equal_caps(self):
        assert series_capacitance([1e-3] * 4) == pytest.approx(0.25e-3)

    def test_parallel_of_equal_caps(self):
        assert parallel_capacitance([1e-3] * 4) == pytest.approx(4e-3)

    def test_series_is_smaller_than_smallest(self):
        values = [1e-3, 2e-3, 5e-3]
        assert series_capacitance(values) < min(values)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            series_capacitance([])
        with pytest.raises(ValueError):
            parallel_capacitance([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            series_capacitance([1e-3, 0.0])
        with pytest.raises(ValueError):
            parallel_capacitance([-1e-3])


class TestEqualizeParallel:
    def test_paper_figure5_example(self):
        """Three caps at V/4 joined by one at V/4... the 4-capacitor 25% case.

        The paper's example: a 4-capacitor series chain at total voltage V
        (each cell at V/4) has one capacitor moved across the remaining
        3-cell chain.  Expressed as a two-element equalization between the
        chain (C/3 at 3V/4) and the moved cell (C at V/4), 25 % of the
        stored energy is dissipated.
        """
        C, V = 1e-3, 1.0
        final_voltage, dissipated = redistribute_charge(C / 3.0, 0.75 * V, C, 0.25 * V)
        initial = capacitor_energy(C / 3.0, 0.75 * V) + capacitor_energy(C, 0.25 * V)
        assert dissipated / initial == pytest.approx(0.25)
        assert final_voltage == pytest.approx(3.0 * V / 8.0)

    def test_equal_voltages_dissipate_nothing(self):
        _, dissipated = equalize_parallel([1e-3, 2e-3, 3e-3], [2.5, 2.5, 2.5])
        assert dissipated == pytest.approx(0.0, abs=1e-15)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            equalize_parallel([1e-3], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            equalize_parallel([], [])

    @given(
        caps=st.lists(st.floats(1e-6, 1e-2), min_size=2, max_size=6),
        volts=st.lists(st.floats(0.0, 5.0), min_size=2, max_size=6),
    )
    def test_charge_conserved_and_energy_never_gained(self, caps, volts):
        size = min(len(caps), len(volts))
        caps, volts = caps[:size], volts[:size]
        final_voltage, dissipated = equalize_parallel(caps, volts)
        total_charge_before = sum(c * v for c, v in zip(caps, volts))
        total_charge_after = sum(caps) * final_voltage
        assert total_charge_after == pytest.approx(
            total_charge_before, rel=1e-9, abs=1e-15
        )
        assert dissipated >= -1e-15


class TestTransferEnergyBetween:
    def test_no_transfer_when_source_not_higher(self):
        source_v, sink_v, moved = transfer_energy_between(1e-3, 2.0, 1e-3, 2.5)
        assert moved == 0.0
        assert source_v == 2.0 and sink_v == 2.5

    def test_full_equalization_when_unlimited(self):
        source_v, sink_v, moved = transfer_energy_between(1e-3, 3.0, 1e-3, 1.0)
        assert source_v == pytest.approx(sink_v)
        assert source_v == pytest.approx(2.0)
        assert moved > 0.0

    def test_partial_transfer_respects_energy_cap(self):
        cap = 0.5e-6
        source_v, sink_v, moved = transfer_energy_between(
            1e-3, 3.0, 1e-3, 1.0, max_energy=cap
        )
        assert source_v > sink_v  # did not fully equalize
        assert moved <= cap + 1e-12

    @given(
        source_c=st.floats(1e-6, 1e-2),
        source_v=st.floats(0.0, 5.0),
        sink_c=st.floats(1e-6, 1e-2),
        sink_v=st.floats(0.0, 5.0),
    )
    def test_sink_never_ends_above_source_start(
        self, source_c, source_v, sink_c, sink_v
    ):
        new_source, new_sink, moved = transfer_energy_between(
            source_c, source_v, sink_c, sink_v
        )
        assert moved >= 0.0
        assert new_sink <= max(source_v, sink_v) + 1e-9
