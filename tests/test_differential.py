"""Property-based differential testing of the fast-forward engine.

The ROADMAP item landed: randomized synthetic traces and system
configurations are simulated twice — once with every fast path enabled and
once with ``Simulator(fast_forward=False)`` as the step-by-step oracle —
and the runs must agree on exact counters (including the per-step additive
time accumulations) with energy ledgers within 1e-9 relative tolerance.

The generator is a hand-rolled seeded sampler rather than a hypothesis
dependency: the case space (trace shape × buffer family × workload ×
timestep) is small enough to cover with a deterministic, reproducible
sweep, and every failure prints its case seed for replay.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.buffers.capybara import CapybaraBuffer
from repro.buffers.dewdrop import DewdropBuffer
from repro.buffers.morphy import MorphyBuffer
from repro.buffers.react_adapter import ReactBuffer
from repro.buffers.static import StaticBuffer
from repro.harvester.trace import PowerTrace
from repro.platform.mcu import MSP430FR5994
from repro.sim.batch import BatchSimulator
from repro.sim.engine import Simulator
from repro.sim.system import BatterylessSystem
from repro.workloads.data_encryption import DataEncryption
from repro.workloads.packet_forwarding import PacketForwarding
from repro.workloads.radio_transmit import RadioTransmit
from repro.workloads.sense_compute import SenseAndCompute

#: Fields that must agree bit-for-bit between the fast and oracle runs.
EXACT_FIELDS = (
    "latency",
    "simulated_time",
    "on_time",
    "active_time",
    "enable_count",
    "brownout_count",
    "work_units",
)


def random_trace(rng: np.random.Generator) -> PowerTrace:
    """A synthetic trace with dark stretches, bursts, and ramps.

    The shape deliberately mixes the regimes that stress different engine
    paths: dead air (off-phase fast forwarding into drain tests), strong
    bursts (overvoltage clipping, long on stretches for the quiescence
    protocol), and borderline power (enable/brown-out cycling around the
    gate thresholds).
    """
    samples = int(rng.integers(60, 140))
    sample_period = float(rng.choice([0.5, 1.0, 2.0]))
    powers = np.zeros(samples)
    position = 0
    while position < samples:
        kind = rng.integers(0, 3)
        length = int(rng.integers(3, 18))
        end = min(position + length, samples)
        if kind == 0:
            powers[position:end] = 0.0
        elif kind == 1:
            powers[position:end] = rng.uniform(2e-4, 6e-3)
        else:
            powers[position:end] = np.linspace(
                rng.uniform(0.0, 2e-3), rng.uniform(0.0, 6e-3), end - position
            )
        position = end
    return PowerTrace(powers, sample_period=sample_period, name="synthetic")


def random_buffer(rng: np.random.Generator):
    family = int(rng.integers(0, 5))
    if family == 0:
        return StaticBuffer(float(rng.uniform(3e-4, 2e-2)), name="static")
    if family == 1:
        return DewdropBuffer(float(rng.uniform(2e-3, 2e-2)))
    if family == 2:
        return MorphyBuffer(
            unit_capacitance=float(rng.uniform(5e-4, 3e-3)),
        )
    if family == 3:
        return ReactBuffer()
    return CapybaraBuffer(
        base_capacitance=float(rng.uniform(3e-4, 2e-3)),
        task_capacitance=float(rng.uniform(4e-3, 2e-2)),
    )


def random_workload(rng: np.random.Generator):
    kind = int(rng.integers(0, 4))
    if kind == 0:
        return DataEncryption(unit_time=float(rng.uniform(0.05, 0.4)))
    if kind == 1:
        return SenseAndCompute(period=float(rng.uniform(2.0, 8.0)))
    if kind == 2:
        return RadioTransmit(
            data_period=float(rng.uniform(1.0, 5.0)),
            use_longevity_guarantee=bool(rng.integers(0, 2)),
        )
    return PacketForwarding(
        mean_interarrival=float(rng.uniform(3.0, 10.0)),
        seed=int(rng.integers(0, 1000)),
        use_longevity_guarantee=bool(rng.integers(0, 2)),
    )


def run_case(case_seed: int, fast_forward: bool):
    rng = np.random.default_rng(case_seed)
    trace = random_trace(rng)
    buffer = random_buffer(rng)
    workload = random_workload(rng)
    dt_on = float(rng.choice([0.01, 0.02, 0.04]))
    dt_off = dt_on * int(rng.integers(2, 6))
    max_drain = float(rng.choice([30.0, 120.0]))
    system = BatterylessSystem.build(trace, buffer, workload, mcu=MSP430FR5994())
    return Simulator(
        system,
        dt_on=dt_on,
        dt_off=dt_off,
        max_drain_time=max_drain,
        fast_forward=fast_forward,
    ).run()


@pytest.mark.parametrize("case_seed", range(20))
def test_fast_forward_matches_step_by_step_oracle(case_seed):
    reference = run_case(case_seed, fast_forward=False)
    fast = run_case(case_seed, fast_forward=True)
    context = f"case_seed={case_seed} {reference.buffer_name}/{reference.workload_name}"
    for field in EXACT_FIELDS:
        assert getattr(fast, field) == getattr(reference, field), (
            f"{context}: {field}"
        )
    assert fast.workload_metrics == reference.workload_metrics, context
    for key, value in reference.buffer_ledger.items():
        assert fast.buffer_ledger[key] == pytest.approx(
            value, rel=1e-9, abs=1e-15
        ), f"{context}: {key}"


def build_batch_case(case_seed: int):
    """A randomized trace-sharing lane mix for the batch engine.

    One shared synthetic trace, one shared timestep pair, and 3–6 lanes of
    random batchable buffers and workloads — cycling between the
    static-kernel family (statics and Dewdrop mixed in one kernel), the
    Morphy kernel family (topology-sharing arrays with random unit
    capacitances), and the REACT kernel family (config-sharing banks with
    random per-lane polling hints), since one lockstep kernel only batches
    one family.  Returns a fresh-systems factory plus the simulator kwargs
    so the scalar oracle and the batch run each simulate untouched systems.
    """
    rng = np.random.default_rng(77_000 + case_seed)
    trace = random_trace(rng)
    dt_on = float(rng.choice([0.01, 0.02, 0.04]))
    dt_off = dt_on * int(rng.integers(2, 6))
    max_drain = float(rng.choice([30.0, 120.0]))
    family = case_seed % 3
    lane_seeds = [
        int(seed) for seed in rng.integers(0, 2**31, size=int(rng.integers(3, 7)))
    ]

    def lane_buffer(lane_rng: np.random.Generator):
        if family == 0:
            return MorphyBuffer(
                unit_capacitance=float(lane_rng.uniform(5e-4, 3e-3)),
            )
        if family == 1:
            # The polling hint is per-lane kernel state, not part of the
            # batch key, so hint-diverse REACT lanes share one kernel.
            return ReactBuffer(
                active_current_hint=float(lane_rng.uniform(5e-4, 3e-3)),
            )
        if int(lane_rng.integers(0, 2)):
            return StaticBuffer(float(lane_rng.uniform(3e-4, 2e-2)), name="static")
        return DewdropBuffer(float(lane_rng.uniform(2e-3, 2e-2)))

    def systems():
        built = []
        for lane_seed in lane_seeds:
            lane_rng = np.random.default_rng(lane_seed)
            built.append(
                BatterylessSystem.build(
                    trace,
                    lane_buffer(lane_rng),
                    random_workload(lane_rng),
                    mcu=MSP430FR5994(),
                )
            )
        return built

    return systems, dict(dt_on=dt_on, dt_off=dt_off, max_drain_time=max_drain)


@pytest.mark.parametrize("case_seed", range(10))
def test_batch_lane_mix_matches_step_by_step_oracle(case_seed):
    """The batch engine under the same differential discipline.

    Every randomized lane of a trace-sharing batch — including lanes that
    fast-forward whole segments while their neighbours step, brown out,
    or retire — must agree with the step-by-step scalar oracle on the
    exact counters, with ledgers within summation-order tolerance.
    """
    systems, kwargs = build_batch_case(case_seed)
    reference = [
        Simulator(system, fast_forward=False, **kwargs).run()
        for system in systems()
    ]
    batched = BatchSimulator(systems(), scalar_tail_lanes=0, **kwargs).run()
    for lane, (oracle, fast) in enumerate(zip(reference, batched)):
        context = (
            f"case_seed={case_seed} lane={lane} "
            f"{oracle.buffer_name}/{oracle.workload_name}"
        )
        for field in EXACT_FIELDS:
            assert getattr(fast, field) == getattr(oracle, field), (
                f"{context}: {field}"
            )
        assert fast.workload_metrics == oracle.workload_metrics, context
        for key, value in oracle.buffer_ledger.items():
            assert fast.buffer_ledger[key] == pytest.approx(
                value, rel=1e-9, abs=1e-15
            ), f"{context}: {key}"


def build_mixed_grid_case(case_seed: int):
    """A randomized REACT + static/Dewdrop lane mix on one shared trace.

    Models what the batch backend sees on a heterogeneous grid cell: lanes
    from different kernel families interleaved in submission order.  The
    test partitions them by ``batch_key`` exactly like the backend before
    handing each group to its own :class:`BatchSimulator`.
    """
    rng = np.random.default_rng(88_000 + case_seed)
    trace = random_trace(rng)
    dt_on = float(rng.choice([0.01, 0.02, 0.04]))
    dt_off = dt_on * int(rng.integers(2, 6))
    max_drain = float(rng.choice([30.0, 120.0]))
    lane_seeds = [
        int(seed) for seed in rng.integers(0, 2**31, size=int(rng.integers(6, 10)))
    ]

    def systems():
        built = []
        for lane, lane_seed in enumerate(lane_seeds):
            lane_rng = np.random.default_rng(lane_seed)
            if lane % 2:
                buffer = ReactBuffer(
                    active_current_hint=float(lane_rng.uniform(5e-4, 3e-3)),
                )
            elif int(lane_rng.integers(0, 2)):
                buffer = StaticBuffer(
                    float(lane_rng.uniform(3e-4, 2e-2)), name="static"
                )
            else:
                buffer = DewdropBuffer(float(lane_rng.uniform(2e-3, 2e-2)))
            built.append(
                BatterylessSystem.build(
                    trace, buffer, random_workload(lane_rng), mcu=MSP430FR5994()
                )
            )
        return built

    return systems, dict(dt_on=dt_on, dt_off=dt_off, max_drain_time=max_drain)


@pytest.mark.parametrize("case_seed", range(4))
def test_mixed_react_static_grid_matches_step_by_step_oracle(case_seed):
    """REACT and static-family lanes of one grid, each batched per family.

    Interleaved REACT and static/Dewdrop lanes are partitioned by
    ``batch_key`` (the backend's contract) into per-family lockstep
    kernels; every lane must agree with the step-by-step scalar oracle on
    the exact counters, with ledgers within summation-order tolerance.
    """
    systems, kwargs = build_mixed_grid_case(case_seed)
    reference = [
        Simulator(system, fast_forward=False, **kwargs).run()
        for system in systems()
    ]
    lanes = systems()
    groups = {}
    for index, system in enumerate(lanes):
        groups.setdefault(system.buffer.batch_key(), []).append(index)
    assert len(groups) >= 2, "case must actually mix kernel families"
    batched = [None] * len(lanes)
    for indices in groups.values():
        results = BatchSimulator(
            [lanes[i] for i in indices], scalar_tail_lanes=0, **kwargs
        ).run()
        for index, result in zip(indices, results):
            batched[index] = result
    for lane, (oracle, fast) in enumerate(zip(reference, batched)):
        context = (
            f"case_seed={case_seed} lane={lane} "
            f"{oracle.buffer_name}/{oracle.workload_name}"
        )
        for field in EXACT_FIELDS:
            assert getattr(fast, field) == getattr(oracle, field), (
                f"{context}: {field}"
            )
        assert fast.workload_metrics == oracle.workload_metrics, context
        for key, value in oracle.buffer_ledger.items():
            assert fast.buffer_ledger[key] == pytest.approx(
                value, rel=1e-9, abs=1e-15
            ), f"{context}: {key}"
