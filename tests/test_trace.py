"""PowerTrace container: statistics, queries, transforms, and persistence."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import TraceError
from repro.harvester.trace import PowerTrace


def make_trace(samples=(1e-3, 2e-3, 3e-3, 4e-3), period=1.0) -> PowerTrace:
    return PowerTrace(samples, sample_period=period, name="test")


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            PowerTrace([], 1.0)

    def test_rejects_negative_samples(self):
        with pytest.raises(TraceError):
            PowerTrace([1e-3, -1e-3], 1.0)

    def test_rejects_non_finite(self):
        with pytest.raises(TraceError):
            PowerTrace([1e-3, float("nan")], 1.0)

    def test_rejects_bad_period(self):
        with pytest.raises(TraceError):
            PowerTrace([1e-3], 0.0)

    def test_powers_view_is_read_only(self):
        trace = make_trace()
        with pytest.raises(ValueError):
            trace.powers[0] = 5.0


class TestStatistics:
    def test_duration_and_mean(self):
        trace = make_trace()
        assert trace.duration == pytest.approx(4.0)
        assert trace.mean_power == pytest.approx(2.5e-3)
        assert trace.peak_power == pytest.approx(4e-3)

    def test_total_energy(self):
        trace = make_trace(period=2.0)
        assert trace.total_energy == pytest.approx(sum([1e-3, 2e-3, 3e-3, 4e-3]) * 2.0)

    def test_coefficient_of_variation_of_constant_trace_is_zero(self):
        trace = PowerTrace([2e-3] * 10, 1.0)
        assert trace.coefficient_of_variation == pytest.approx(0.0)

    def test_statistics_spike_fraction(self):
        powers = [1e-3] * 9 + [20e-3]
        trace = PowerTrace(powers, 1.0)
        stats = trace.statistics(spike_threshold=10e-3, low_power_threshold=3e-3)
        assert stats.spike_energy_fraction == pytest.approx(20e-3 / (9e-3 + 20e-3))
        assert stats.time_below_fraction == pytest.approx(0.9)

    def test_statistics_as_row(self):
        row = make_trace().statistics().as_row()
        assert row["duration_s"] == 4.0
        assert "mean_power_mW" in row


class TestQueries:
    def test_power_at_uses_zero_order_hold(self):
        trace = make_trace()
        assert trace.power_at(0.5) == pytest.approx(1e-3)
        assert trace.power_at(3.99) == pytest.approx(4e-3)

    def test_power_after_end_is_zero(self):
        assert make_trace().power_at(100.0) == 0.0

    def test_power_at_negative_time_rejected(self):
        with pytest.raises(TraceError):
            make_trace().power_at(-1.0)

    def test_energy_between(self):
        trace = make_trace()
        assert trace.energy_between(0.0, 2.0) == pytest.approx(3e-3)
        assert trace.energy_between(0.0, trace.duration) == pytest.approx(
            trace.total_energy
        )

    def test_energy_between_rejects_inverted_interval(self):
        with pytest.raises(TraceError):
            make_trace().energy_between(2.0, 1.0)

    def test_iteration_yields_time_power_pairs(self):
        pairs = list(make_trace())
        assert pairs[0] == (0.0, 1e-3)
        assert len(pairs) == 4


class TestTransforms:
    def test_scaled(self):
        doubled = make_trace().scaled(2.0)
        assert doubled.mean_power == pytest.approx(5e-3)

    def test_scaled_rejects_negative(self):
        with pytest.raises(TraceError):
            make_trace().scaled(-1.0)

    def test_clipped(self):
        clipped = make_trace().clipped(2e-3)
        assert clipped.peak_power == pytest.approx(2e-3)

    def test_truncated(self):
        short = make_trace().truncated(2.0)
        assert short.duration == pytest.approx(2.0)

    def test_resampled_preserves_duration(self):
        resampled = make_trace().resampled(0.5)
        assert resampled.duration == pytest.approx(4.0)
        assert resampled.power_at(0.6) == pytest.approx(1e-3)

    def test_concatenated(self):
        combined = make_trace().concatenated(make_trace())
        assert combined.duration == pytest.approx(8.0)

    def test_concatenated_requires_matching_period(self):
        with pytest.raises(TraceError):
            make_trace(period=1.0).concatenated(make_trace(period=2.0))


class TestPersistence:
    def test_csv_round_trip(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.csv"
        trace.to_csv(path)
        loaded = PowerTrace.from_csv(path)
        assert loaded.duration == pytest.approx(trace.duration)
        assert np.allclose(loaded.powers, trace.powers)

    def test_from_csv_requires_two_samples(self, tmp_path):
        path = tmp_path / "tiny.csv"
        path.write_text("time_s,power_w\n0.0,0.001\n")
        with pytest.raises(TraceError):
            PowerTrace.from_csv(path)

    def test_from_samples(self):
        trace = PowerTrace.from_samples([(0.0, 1e-3), (1.0, 2e-3)], sample_period=1.0)
        assert trace.mean_power == pytest.approx(1.5e-3)


@given(
    samples=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=50),
    period=st.floats(0.1, 10.0),
)
def test_energy_between_never_exceeds_total(samples, period):
    trace = PowerTrace(samples, period)
    assert trace.energy_between(0.0, trace.duration / 2.0) <= trace.total_energy + 1e-12
