"""Property-based tests on the shared EnergyBuffer contract.

Every buffer architecture, whatever its internal topology, must obey the
same physical invariants: energy is never created, the ledger balances, and
voltages stay within the component ratings.  Hypothesis drives random
harvest/draw/housekeeping sequences against each implementation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.buffers.capybara import CapybaraBuffer
from repro.buffers.dewdrop import DewdropBuffer
from repro.buffers.morphy import MorphyBuffer
from repro.buffers.react_adapter import ReactBuffer
from repro.buffers.static import StaticBuffer
from repro.core.config import BankSpec, ReactConfig
from repro.units import microfarads, millifarads


def small_react_config() -> ReactConfig:
    return ReactConfig(
        last_level_capacitance=microfarads(770.0),
        banks=(
            BankSpec(unit_capacitance=microfarads(220.0), count=3),
            BankSpec(unit_capacitance=microfarads(880.0), count=3),
        ),
    )


BUFFER_FACTORIES = {
    "static": lambda: StaticBuffer(millifarads(1.0)),
    "morphy": lambda: MorphyBuffer(),
    "react": lambda: ReactBuffer(config=small_react_config()),
    "capybara": lambda: CapybaraBuffer(),
    "dewdrop": lambda: DewdropBuffer(millifarads(10.0)),
}

#: One random step of the buffer exercise: (harvested energy, load current, dt).
STEP = st.tuples(
    st.floats(0.0, 5e-3),
    st.floats(0.0, 20e-3),
    st.floats(1e-3, 0.5),
)


@pytest.mark.parametrize("kind", sorted(BUFFER_FACTORIES))
@settings(max_examples=25, deadline=None)
@given(steps=st.lists(STEP, min_size=1, max_size=30))
def test_energy_is_never_created(kind, steps):
    buffer = BUFFER_FACTORIES[kind]()
    time = 0.0
    for harvested, current, dt in steps:
        buffer.harvest(harvested, dt)
        buffer.draw(current, dt)
        buffer.housekeeping(time, dt, system_on=bool(int(time * 10) % 2))
        time += dt

    ledger = buffer.ledger
    # Conservation: what was stored either went to the load, leaked, was lost
    # in switching, or is still in the buffer.
    remaining = ledger.stored - ledger.delivered - ledger.leaked
    assert buffer.stored_energy <= remaining + 1e-6
    # Nothing in the ledger can exceed what the environment offered.
    assert ledger.stored <= ledger.offered + 1e-9
    assert ledger.delivered <= ledger.offered + 1e-9
    assert ledger.clipped >= -1e-9
    assert ledger.leaked >= -1e-9
    assert ledger.switching_loss >= -1e-9


@pytest.mark.parametrize("kind", sorted(BUFFER_FACTORIES))
@settings(max_examples=25, deadline=None)
@given(steps=st.lists(STEP, min_size=1, max_size=30))
def test_voltage_stays_within_ratings(kind, steps):
    buffer = BUFFER_FACTORIES[kind]()
    time = 0.0
    for harvested, current, dt in steps:
        buffer.harvest(harvested, dt)
        buffer.draw(current, dt)
        buffer.housekeeping(time, dt, system_on=True)
        time += dt
        assert -1e-9 <= buffer.output_voltage <= 3.6 + 1e-6
        assert buffer.stored_energy >= -1e-12
        assert buffer.capacitance > 0.0


@pytest.mark.parametrize("kind", sorted(BUFFER_FACTORIES))
def test_reset_restores_cold_start(kind):
    buffer = BUFFER_FACTORIES[kind]()
    buffer.harvest(5e-3, 1.0)
    buffer.draw(1e-3, 0.1)
    buffer.housekeeping(0.0, 0.1, system_on=True)
    buffer.reset()
    assert buffer.stored_energy == pytest.approx(0.0, abs=1e-12)
    assert buffer.output_voltage == pytest.approx(0.0, abs=1e-9)
    assert buffer.ledger.offered == 0.0
    assert buffer.longevity_request == 0.0


@pytest.mark.parametrize("kind", sorted(BUFFER_FACTORIES))
def test_longevity_api_contract(kind):
    buffer = BUFFER_FACTORIES[kind]()
    buffer.request_longevity(1e-3)
    assert buffer.longevity_request == pytest.approx(1e-3)
    # An empty buffer can never satisfy a non-trivial request.
    assert not buffer.longevity_satisfied()
    buffer.clear_longevity()
    assert buffer.longevity_request == 0.0
    assert buffer.longevity_satisfied()
    with pytest.raises(ValueError):
        buffer.request_longevity(-1.0)
