"""Experiment harness: runner infrastructure, individual artifacts, and the CLI.

The heavier table/figure sweeps are exercised at benchmark time; here the
cheap experiments run end-to-end in quick mode, the grid runner and the
process-pool backend are checked on a reduced subset, and the deprecation
shims (``make_runner``, the legacy runner subclasses, ``--workers`` /
``--batch``) are pinned to the backends they resolve to.  The backend
registry and the composed ``pool+batch`` backend have their own module
(``tests/test_backends.py``).
"""

import pickle

import pytest

from repro.buffers.morphy import MorphyBuffer
from repro.buffers.static import StaticBuffer
from repro.exceptions import ConfigurationError
from repro.experiments import EXPERIMENTS
from repro.experiments.backends import (
    BatchBackend,
    PoolBatchBackend,
    ProcessPoolBackend,
    RunSpec,
    SerialBackend,
    execute_run_spec,
)
from repro.experiments.batched import BatchExperimentRunner
from repro.experiments.cli import build_parser, main
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.runner import (
    BUFFER_ORDER,
    ExperimentRunner,
    ExperimentSettings,
    make_runner,
    make_workload,
    standard_buffers,
)
from repro.experiments import switching_loss, table1_configuration, table3_traces
from repro.units import microfarads
from repro.workloads import (
    DataEncryption,
    PacketForwarding,
    RadioTransmit,
    SenseAndCompute,
)


def exploding_buffers():
    """Module-level factory (picklable) whose construction fails.

    Used to verify that an exception raised inside a pool worker propagates
    out of ``run_grid`` instead of hanging or being swallowed.
    """
    raise ConfigurationError("buffer factory exploded in the worker")


def slow_then_fast_buffers():
    """Module-level factory whose first buffer simulates far slower.

    Morphy's controller makes its cell one-plus orders of magnitude more
    expensive than a small static cell, so with two workers the second
    spec reliably completes before the first — the out-of-order-completion
    case ordered collection must hide.
    """
    return [MorphyBuffer(), StaticBuffer(microfarads(770.0), name="770 uF")]


class TestSettings:
    def test_quick_mode_truncates_long_traces(self):
        settings = ExperimentSettings(quick=True)
        trace = settings.trace("Solar Campus")
        assert trace.duration <= settings.quick_trace_cap + 1.0

    def test_full_mode_keeps_table3_duration(self):
        settings = ExperimentSettings(quick=False)
        assert settings.trace("RF Cart").duration == pytest.approx(313.0, abs=1.0)

    def test_effective_timesteps(self):
        assert ExperimentSettings(quick=True).effective_dt_on == pytest.approx(0.02)
        assert ExperimentSettings(quick=False).effective_dt_on == pytest.approx(0.01)

    def test_traces_subset(self):
        settings = ExperimentSettings(quick=True)
        traces = settings.traces(["RF Cart", "RF Mobile"])
        assert list(traces) == ["RF Cart", "RF Mobile"]

    def test_backend_name_resolution(self):
        """Legacy workers/batch knobs map onto the equivalent backend."""
        assert ExperimentSettings().backend_name == "serial"
        assert ExperimentSettings(workers=4).backend_name == "pool"
        assert ExperimentSettings(batch=True).backend_name == "batch"
        assert ExperimentSettings(batch=True, workers=4).backend_name == "pool+batch"
        assert ExperimentSettings(backend="serial", workers=4).backend_name == "serial"


class TestRunnerInfrastructure:
    def test_standard_buffers_match_paper_order(self):
        names = [buffer.name for buffer in standard_buffers()]
        assert names == list(BUFFER_ORDER)

    def test_make_workload_types(self):
        assert isinstance(make_workload("DE", "RF Cart"), DataEncryption)
        assert isinstance(make_workload("SC", "RF Cart"), SenseAndCompute)
        assert isinstance(make_workload("RT", "RF Cart"), RadioTransmit)
        pf = make_workload("PF", "Solar Commute")
        assert isinstance(pf, PacketForwarding)
        assert pf.mean_interarrival == pytest.approx(60.0)
        with pytest.raises(KeyError):
            make_workload("XX", "RF Cart")

    def test_run_grid_subset(self):
        settings = ExperimentSettings(quick=True)
        runner = ExperimentRunner(settings)
        seen = []
        results = runner.run_grid(
            workloads=("SC",),
            trace_names=("RF Cart",),
            progress=lambda r: seen.append(r.buffer_name),
        )
        assert len(results) == len(BUFFER_ORDER)
        assert seen == [r.buffer_name for r in results]
        assert {r.trace_name for r in results} == {"RF Cart"}

    def test_grid_specs_match_serial_iteration_order(self):
        settings = ExperimentSettings(quick=True)
        runner = ExperimentRunner(settings)
        specs = runner.grid_specs(workloads=("SC", "DE"), trace_names=("RF Cart",))
        assert len(specs) == 2 * len(BUFFER_ORDER)
        assert [s.workload for s in specs[: len(BUFFER_ORDER)]] == ["SC"] * len(
            BUFFER_ORDER
        )
        assert [s.buffer_index for s in specs[: len(BUFFER_ORDER)]] == list(
            range(len(BUFFER_ORDER))
        )

    def test_run_specs_are_picklable(self):
        settings = ExperimentSettings(quick=True)
        specs = ExperimentRunner(settings).grid_specs(
            workloads=("DE",), trace_names=("RF Cart",)
        )
        for spec in specs:
            restored = pickle.loads(pickle.dumps(spec))
            assert restored == spec

    def test_execute_run_spec_matches_serial_runner(self):
        settings = ExperimentSettings(quick=True)
        spec = RunSpec(
            workload="DE", trace_name="RF Cart", buffer_index=0, settings=settings
        )
        from_spec = execute_run_spec(spec)
        serial = ExperimentRunner(settings)
        direct = serial.run_single(
            settings.trace("RF Cart"),
            standard_buffers()[0],
            make_workload("DE", "RF Cart"),
        )
        assert from_spec.work_units == direct.work_units
        assert from_spec.enable_count == direct.enable_count
        assert from_spec.latency == direct.latency


class TestProcessPoolBackend:
    def test_pool_grid_equals_serial_grid(self):
        settings = ExperimentSettings(quick=True)
        serial = ExperimentRunner(settings).run_grid(
            workloads=("DE",), trace_names=("RF Cart", "RF Obstruction")
        )
        seen = []
        pooled = ExperimentRunner(
            settings, backend=ProcessPoolBackend(workers=2)
        ).run_grid(
            workloads=("DE",),
            trace_names=("RF Cart", "RF Obstruction"),
            progress=lambda r: seen.append(r.buffer_name),
        )
        assert [r.buffer_name for r in pooled] == [r.buffer_name for r in serial]
        assert seen == [r.buffer_name for r in pooled]
        for serial_result, pooled_result in zip(serial, pooled):
            assert pooled_result.work_units == serial_result.work_units
            assert pooled_result.enable_count == serial_result.enable_count
            assert pooled_result.brownout_count == serial_result.brownout_count
            assert pooled_result.latency == serial_result.latency
            assert pooled_result.energy_delivered_to_load == pytest.approx(
                serial_result.energy_delivered_to_load, rel=1e-12
            )

    def test_workers_one_degrades_to_serial_path(self):
        settings = ExperimentSettings(quick=True)
        runner = ExperimentRunner(settings, backend=ProcessPoolBackend(workers=1))
        results = runner.run_grid(workloads=("SC",), trace_names=("RF Cart",))
        assert len(results) == len(BUFFER_ORDER)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(workers=0)
        with pytest.raises(ConfigurationError):
            PoolBatchBackend(workers=0)

    def test_workers_one_uses_no_pool(self, monkeypatch):
        """The degenerate workers=1 pool must never be constructed."""
        import repro.experiments.backends as backends_module

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("workers=1 must not build a process pool")

        monkeypatch.setattr(backends_module, "ProcessPoolExecutor", forbidden)
        runner = ExperimentRunner(
            ExperimentSettings(quick=True), backend=ProcessPoolBackend(workers=1)
        )
        results = runner.run_grid(workloads=("DE",), trace_names=("RF Cart",))
        assert len(results) == len(BUFFER_ORDER)

    def test_single_cell_grid_skips_pool_even_with_workers(self, monkeypatch):
        import repro.experiments.backends as backends_module

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("single-cell grids must run serial")

        monkeypatch.setattr(backends_module, "ProcessPoolExecutor", forbidden)
        runner = ExperimentRunner(
            ExperimentSettings(quick=True),
            buffer_factory=lambda: [StaticBuffer(microfarads(770.0), name="770 uF")],
            backend=ProcessPoolBackend(workers=4),
        )
        results = runner.run_grid(workloads=("DE",), trace_names=("RF Cart",))
        assert [r.buffer_name for r in results] == ["770 uF"]

    def test_child_exception_propagates(self):
        """A run spec that raises in the worker surfaces in the parent."""
        specs = [
            RunSpec(
                workload="DE",
                trace_name=trace_name,
                buffer_index=0,
                settings=ExperimentSettings(quick=True),
                buffer_factory=exploding_buffers,
            )
            for trace_name in ("RF Cart", "RF Obstruction")
        ]
        with pytest.raises(ConfigurationError, match="exploded in the worker"):
            ProcessPoolBackend(workers=2).run_specs(specs)
        # And end-to-end through run_grid (the factory raises in the parent
        # during spec construction or in the child — either way it must not
        # hang and must surface the original exception type).
        runner = ExperimentRunner(
            ExperimentSettings(quick=True),
            buffer_factory=exploding_buffers,
            backend=ProcessPoolBackend(workers=2),
        )
        with pytest.raises(ConfigurationError, match="exploded"):
            runner.run_grid(workloads=("DE",), trace_names=("RF Cart",))

    def test_ordered_collection_under_out_of_order_completion(self):
        """A slow first cell must not displace results from serial order."""
        settings = ExperimentSettings(quick=True)
        serial = ExperimentRunner(
            settings, buffer_factory=slow_then_fast_buffers
        ).run_grid(workloads=("DE",), trace_names=("RF Cart",))
        seen = []
        pooled = ExperimentRunner(
            settings,
            buffer_factory=slow_then_fast_buffers,
            backend=ProcessPoolBackend(workers=2),
        ).run_grid(
            workloads=("DE",),
            trace_names=("RF Cart",),
            progress=lambda r: seen.append(r.buffer_name),
        )
        # Morphy (slow) first, static (fast) second — completion order is
        # reversed, collection order must not be.
        assert [r.buffer_name for r in pooled] == ["Morphy", "770 uF"]
        assert seen == ["Morphy", "770 uF"]
        for serial_result, pooled_result in zip(serial, pooled):
            assert pooled_result.work_units == serial_result.work_units
            assert pooled_result.latency == serial_result.latency


class TestDeprecationShims:
    """`make_runner`, the legacy runner subclasses, and the flags they map to."""

    def test_make_runner_warns_and_maps_workers_to_pool(self):
        with pytest.warns(DeprecationWarning, match="make_runner"):
            runner = make_runner(ExperimentSettings(quick=True, workers=4))
        assert type(runner) is ExperimentRunner
        backend = runner.resolved_backend()
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.workers == 4

    def test_make_runner_maps_default_to_serial(self):
        with pytest.warns(DeprecationWarning):
            runner = make_runner(ExperimentSettings(quick=True))
        assert isinstance(runner.resolved_backend(), SerialBackend)

    def test_make_runner_maps_batch_to_batch_backend(self):
        with pytest.warns(DeprecationWarning):
            runner = make_runner(ExperimentSettings(quick=True, batch=True))
        assert isinstance(runner.resolved_backend(), BatchBackend)

    def test_make_runner_composes_batch_and_workers(self):
        """The old mutual-exclusion error is gone: the two flags compose."""
        with pytest.warns(DeprecationWarning):
            runner = make_runner(ExperimentSettings(quick=True, batch=True, workers=4))
        backend = runner.resolved_backend()
        assert isinstance(backend, PoolBatchBackend)
        assert backend.workers == 4

    def test_parallel_runner_shim_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="ParallelExperimentRunner"):
            runner = ParallelExperimentRunner(ExperimentSettings(quick=True), workers=2)
        assert isinstance(runner.backend, ProcessPoolBackend)
        assert runner.backend.workers == 2
        results = runner.run_grid(workloads=("DE",), trace_names=("RF Cart",))
        assert len(results) == len(BUFFER_ORDER)

    def test_parallel_runner_shim_rejects_invalid_workers(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                ParallelExperimentRunner(ExperimentSettings(quick=True), workers=0)

    def test_batch_runner_shim_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="BatchExperimentRunner"):
            runner = BatchExperimentRunner(ExperimentSettings(quick=True), min_lanes=9)
        assert isinstance(runner.backend, BatchBackend)
        assert runner.backend.min_lanes == 9


class TestCheapExperiments:
    def test_registry_is_complete(self):
        expected = {
            "fig1", "sec2", "switching-loss", "table1", "table2", "table3",
            "table4", "table5", "fig6", "fig7", "overhead",
        }
        assert set(EXPERIMENTS) == expected

    def test_table1_experiment(self):
        output = table1_configuration.run(verbose=False)
        assert output["config"].maximum_capacitance == pytest.approx(18.03e-3, rel=1e-3)
        assert all(row["satisfies_eq2"] for row in output["sizing_rows"])

    def test_table3_experiment(self):
        output = table3_traces.run(ExperimentSettings(quick=True), verbose=False)
        assert len(output["rows"]) == 5
        for row in output["rows"]:
            assert row["avg_power_mW"] == pytest.approx(
                row["paper_avg_power_mW"], rel=1e-3
            )

    def test_switching_loss_experiment_matches_paper(self):
        output = switching_loss.run(verbose=False)
        by_size = {row["array_size"]: row for row in output["loss_rows"]}
        assert by_size[4]["model_loss_fraction"] == pytest.approx(0.25, abs=1e-3)
        assert by_size[8]["model_loss_fraction"] == pytest.approx(0.5625, abs=1e-3)
        for row in output["reclamation_rows"]:
            assert row["gain_factor"] == pytest.approx(
                row["expected_gain_N^2"], rel=1e-6
            )


class TestCli:
    def test_parser_accepts_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--quick"])
        assert args.experiment == "table1"
        assert args.quick
        assert args.workers is None
        assert args.backend is None

    def test_parser_accepts_workers_flag(self):
        args = build_parser().parse_args(["table2", "--quick", "--workers", "4"])
        assert args.workers == 4

    def test_parser_accepts_backend_flag(self):
        args = build_parser().parse_args(["table2", "--backend", "pool+batch"])
        assert args.backend == "pool+batch"

    def test_parser_rejects_unknown_backend_listing_choices(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table2", "--backend", "quantum"])
        captured = capsys.readouterr()
        assert "pool+batch" in captured.err and "serial" in captured.err

    def test_batch_and_workers_compose_instead_of_erroring(self):
        args = build_parser().parse_args(["table2", "--batch", "--workers", "4"])
        assert args.batch and args.workers == 4
        settings = ExperimentSettings(batch=args.batch, workers=args.workers)
        assert settings.backend_name == "pool+batch"

    def test_legacy_flags_warn_deprecation(self):
        with pytest.warns(DeprecationWarning, match="--backend batch"):
            main(["list", "--batch"])
        with pytest.warns(DeprecationWarning, match="--backend pool"):
            main(["list", "--workers", "2"])

    def test_parser_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        captured = capsys.readouterr()
        assert "table2" in captured.out

    def test_run_single_cheap_experiment(self, capsys):
        assert main(["table1", "--quick"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
