"""Integration tests tying the simulation to the paper's qualitative claims.

These use short traces so they stay fast; the full-length reproduction of
each table and figure lives in the benchmark harness and the CLI.  Each
test asserts a *relationship* the paper reports (who wins, what fails),
never an absolute count.
"""

import pytest

from repro.buffers.morphy import MorphyBuffer
from repro.buffers.react_adapter import ReactBuffer
from repro.buffers.static import StaticBuffer
from repro.harvester.synthetic import rf_trace
from repro.units import microfarads, millifarads
from repro.workloads.data_encryption import DataEncryption
from repro.workloads.radio_transmit import RadioTransmit
from repro.workloads.sense_compute import SenseAndCompute

from tests.conftest import build_simulator


@pytest.fixture(scope="module")
def volatile_trace():
    """A bursty RF trace with clear surplus and deficit periods."""
    return rf_trace(
        duration=240.0, mean_power=0.6e-3, coefficient_of_variation=1.6, seed=9
    )


def run(trace, buffer, workload):
    return build_simulator(trace, buffer, workload, max_drain_time=200.0).run()


class TestReactivityClaims:
    def test_react_latency_matches_small_static_buffer(self, volatile_trace):
        """§5.2: REACT charges only its last-level buffer from cold start."""
        small = run(volatile_trace, StaticBuffer(microfarads(770.0)), SenseAndCompute())
        react = run(volatile_trace, ReactBuffer(), SenseAndCompute())
        assert react.latency == pytest.approx(small.latency, rel=0.15)

    def test_large_static_buffer_is_much_slower_to_start(self, volatile_trace):
        small = run(volatile_trace, StaticBuffer(microfarads(770.0)), SenseAndCompute())
        large = run(volatile_trace, StaticBuffer(millifarads(17.0)), SenseAndCompute())
        assert large.latency is None or large.latency > 4.0 * small.latency

    def test_morphy_starts_at_least_as_fast_as_react(self, volatile_trace):
        """Morphy's smallest configuration (250 uF) undercuts REACT's 770 uF."""
        morphy = run(volatile_trace, MorphyBuffer(), SenseAndCompute())
        react = run(volatile_trace, ReactBuffer(), SenseAndCompute())
        assert morphy.latency <= react.latency + 1.0


class TestCapacityAndEfficiencyClaims:
    def test_react_clips_less_than_the_small_static_buffer(self, volatile_trace):
        small = run(volatile_trace, StaticBuffer(microfarads(770.0)), SenseAndCompute())
        react = run(volatile_trace, ReactBuffer(), SenseAndCompute())
        assert react.buffer_ledger["clipped"] <= small.buffer_ledger["clipped"]

    def test_react_completes_at_least_as_much_work_as_static_designs(
        self, volatile_trace
    ):
        """Figure 7's direction on a single trace: REACT >= the static designs."""
        react = run(volatile_trace, ReactBuffer(), SenseAndCompute())
        for capacitance, name in ((770e-6, "770 uF"), (17e-3, "17 mF")):
            static = run(
                volatile_trace, StaticBuffer(capacitance, name=name), SenseAndCompute()
            )
            assert react.work_units >= static.work_units * 0.95

    def test_morphy_pays_switching_losses_react_avoids(self, volatile_trace):
        morphy = run(volatile_trace, MorphyBuffer(), SenseAndCompute())
        react = run(volatile_trace, ReactBuffer(), SenseAndCompute())
        offered = morphy.buffer_ledger["offered"]
        assert morphy.buffer_ledger["switching_loss"] > 0.0
        assert (
            react.buffer_ledger["switching_loss"] / react.buffer_ledger["offered"]
            < morphy.buffer_ledger["switching_loss"] / offered
        )

    def test_oversized_buffer_never_starts_on_weak_trace(self):
        """Table 4's '-' entry: 17 mF cannot start on RF Obstruction-class power."""
        weak = rf_trace(
            duration=200.0, mean_power=0.2e-3, coefficient_of_variation=0.6, seed=2
        )
        large = run(weak, StaticBuffer(millifarads(17.0)), SenseAndCompute())
        small = run(weak, StaticBuffer(microfarads(770.0)), SenseAndCompute())
        react = run(weak, ReactBuffer(), SenseAndCompute())
        assert not large.started
        assert small.started
        assert react.started


class TestLongevityClaims:
    def test_small_static_buffer_fails_transmissions(self, volatile_trace):
        """§5.4: the 770 uF buffer wastes energy on doomed transmissions."""
        result = run(
            volatile_trace,
            StaticBuffer(microfarads(770.0)),
            RadioTransmit(use_longevity_guarantee=False),
        )
        assert result.workload_metrics["failed_operations"] > result.work_units

    def test_longevity_guarantee_converts_failures_into_successes(self, volatile_trace):
        eager = run(
            volatile_trace, ReactBuffer(), RadioTransmit(use_longevity_guarantee=False)
        )
        guarded = run(
            volatile_trace, ReactBuffer(), RadioTransmit(use_longevity_guarantee=True)
        )
        assert guarded.work_units >= eager.work_units
        assert (
            guarded.workload_metrics["failed_operations"]
            <= eager.workload_metrics["failed_operations"]
        )

    def test_react_outperforms_small_buffer_on_radio_transmit(self, volatile_trace):
        small = run(
            volatile_trace,
            StaticBuffer(microfarads(770.0)),
            RadioTransmit(use_longevity_guarantee=False),
        )
        react = run(volatile_trace, ReactBuffer(), RadioTransmit())
        assert react.work_units > small.work_units


class TestOverheadClaims:
    def test_react_overhead_is_small_on_continuous_power(self, steady_trace):
        """§5.1: REACT costs a few percent, not tens of percent, of throughput."""
        import numpy as np

        from repro.harvester.trace import PowerTrace

        trace = PowerTrace(np.full(120, 20e-3), 1.0, name="bench supply")
        react = build_simulator(
            trace, ReactBuffer(), DataEncryption(), drain_after_trace=False
        ).run()
        static = build_simulator(
            trace,
            StaticBuffer(microfarads(770.0)),
            DataEncryption(),
            drain_after_trace=False,
        ).run()
        assert react.work_units >= 0.9 * static.work_units

    def test_deterministic_repetition(self, short_rf_trace):
        """The same configuration simulated twice produces identical results."""
        first = run(short_rf_trace, ReactBuffer(), SenseAndCompute())
        second = run(short_rf_trace, ReactBuffer(), SenseAndCompute())
        assert first.work_units == second.work_units
        assert first.latency == second.latency
        assert first.buffer_ledger == second.buffer_ledger
