"""Vectorized multi-system batch engine: equivalence and infrastructure.

The batch engine's contract is that every batched lane reproduces the
scalar engine's results: bit-identically against step-by-step execution,
and within floating-point summation order (pinned at 1e-9 relative
tolerance) against the scalar engine's default off-phase fast path.  These
tests pin that contract on the full quick-mode grid for every batched
buffer (the statics and Dewdrop), exercise lane divergence and retirement,
the scalar tail hand-off, the per-lane fallback for unbatchable buffers,
and the runner/CLI wiring of the third execution mode.
"""

import numpy as np
import pytest

from repro.buffers.capybara import CapybaraBuffer
from repro.buffers.dewdrop import DewdropBuffer
from repro.buffers.morphy import MorphyBuffer
from repro.buffers.morphy_batch import MorphyBatchKernel
from repro.buffers.react_adapter import ReactBuffer
from repro.buffers.react_batch import ReactBatchKernel
from repro.buffers.static import StaticBatchKernel, StaticBuffer
from repro.capacitors.leakage import (
    ConstantCurrentLeakage,
    NoLeakage,
    VoltageProportionalLeakage,
    stack_proportional_leakage,
)
from repro.exceptions import SimulationError
from repro.experiments.backends import BatchBackend, PoolBatchBackend
from repro.experiments.cli import build_parser
from repro.experiments.runner import (
    ExperimentRunner,
    ExperimentSettings,
    make_workload,
)
from repro.harvester.regulator import BoostRegulator, IdealRegulator, Regulator
from repro.harvester.trace import PowerTrace
from repro.platform.mcu import MSP430FR5994
from repro.sim.batch import KERNEL_BUILDERS, BatchSimulator
from repro.sim.engine import Simulator
from repro.sim.system import BatterylessSystem
from repro.units import microfarads, milliamps, millifarads

QUICK = ExperimentSettings(quick=True)

#: Result fields the batch engine must reproduce exactly (they are counters
#: or additively accumulated timestamps whose arithmetic is replicated
#: operation for operation).
EXACT_FIELDS = (
    "latency",
    "simulated_time",
    "on_time",
    "active_time",
    "enable_count",
    "brownout_count",
    "work_units",
)


def static_and_dewdrop_buffers():
    """The static-kernel buffers: the paper's statics plus Dewdrop."""
    return [
        StaticBuffer(microfarads(770.0), name="770 uF"),
        StaticBuffer(millifarads(10.0), name="10 mF"),
        StaticBuffer(millifarads(17.0), name="17 mF"),
        DewdropBuffer(millifarads(10.0)),
    ]


def morphy_variant_buffers():
    """Two topology-sharing Morphy arrays (one lockstep kernel, distinct
    electricals), so every trace group packs enough Morphy lanes to batch."""
    return [
        MorphyBuffer(),
        MorphyBuffer(unit_capacitance=millifarads(1.0), name="Morphy 1 mF"),
    ]


def react_variant_buffers():
    """Two config-sharing REACT adapters (one lockstep kernel, distinct
    polling hints), so every trace group packs enough REACT lanes to batch."""
    return [
        ReactBuffer(name="REACT"),
        ReactBuffer(name="REACT 3 mA", active_current_hint=milliamps(3.0)),
    ]


def mixed_kernel_buffers():
    """Static-kernel, Morphy-kernel and REACT-kernel lanes in one grid."""
    return (
        static_and_dewdrop_buffers()
        + morphy_variant_buffers()
        + react_variant_buffers()
    )


def simulator_kwargs(settings=QUICK):
    return dict(
        dt_on=settings.effective_dt_on,
        dt_off=settings.effective_dt_off,
        max_drain_time=settings.max_drain_time,
    )


def build_system(trace, buffer, workload_name, trace_name, regulator=None):
    return BatterylessSystem.build(
        trace,
        buffer,
        make_workload(workload_name, trace_name),
        mcu=MSP430FR5994(),
        regulator=regulator,
    )


def assert_results_equivalent(reference, batched, exact_ledgers=False):
    """Batched results must match the scalar reference per the contract."""
    assert reference.trace_name == batched.trace_name
    assert reference.buffer_name == batched.buffer_name
    assert reference.workload_name == batched.workload_name
    for field in EXACT_FIELDS:
        assert getattr(reference, field) == getattr(batched, field), field
    assert reference.workload_metrics == batched.workload_metrics
    for key, value in reference.buffer_ledger.items():
        if exact_ledgers:
            assert batched.buffer_ledger[key] == value, key
        else:
            assert batched.buffer_ledger[key] == pytest.approx(
                value, rel=1e-9, abs=1e-15
            ), key


class TestBatchability:
    def test_static_and_dewdrop_are_batchable(self):
        for buffer in static_and_dewdrop_buffers():
            assert buffer.can_batch()
            assert buffer.batch_key() == "static"

    def test_morphy_and_react_are_batchable(self):
        assert MorphyBuffer().can_batch()
        assert ReactBuffer().can_batch()
        assert ReactBuffer().batch_key() is not None

    def test_react_batch_key_groups_by_config(self):
        """Config-sharing REACT lanes batch; the polling hint may differ."""
        assert (
            ReactBuffer(active_current_hint=milliamps(0.5)).batch_key()
            == ReactBuffer(active_current_hint=milliamps(3.0)).batch_key()
        )
        slow = ReactBuffer()
        slow.controller.expansion_min_interval *= 2.0
        assert slow.batch_key() != ReactBuffer().batch_key()

    def test_react_history_recording_disables_batching(self):
        buffer = ReactBuffer()
        buffer.controller.record_history = True
        assert not buffer.can_batch()
        assert ReactBatchKernel.build([buffer]) is None

    def test_capybara_stays_scalar(self):
        """Capybara is a different architecture (base + task capacitor with
        software-directed surplus steering, no bank fabric): no lockstep
        kernel claims it, so its lanes always run the scalar engine."""
        buffer = CapybaraBuffer()
        assert not buffer.can_batch()
        assert buffer.batch_key() is None
        for build in KERNEL_BUILDERS:
            assert build([buffer]) is None

    def test_morphy_batch_key_groups_by_topology(self):
        """Same topology batches together; unit capacitance may differ."""
        assert MorphyBuffer().batch_key() == MorphyBuffer(
            unit_capacitance=millifarads(1.0)
        ).batch_key()
        assert (
            MorphyBuffer().batch_key() != MorphyBuffer(cap_count=4).batch_key()
        )

    def test_exotic_leakage_disables_batching(self):
        buffer = StaticBuffer(
            millifarads(10.0), leakage=ConstantCurrentLeakage(1e-6)
        )
        assert not buffer.can_batch()
        assert StaticBatchKernel.build([buffer]) is None
        morphy = MorphyBuffer()
        morphy.leakage = ConstantCurrentLeakage(1e-6)
        assert not morphy.can_batch()
        assert MorphyBatchKernel.build([morphy]) is None

    def test_mixed_kernel_families_do_not_share_a_kernel(self):
        assert MorphyBatchKernel.build([MorphyBuffer(), StaticBuffer(1e-3)]) is None
        assert StaticBatchKernel.build([StaticBuffer(1e-3), MorphyBuffer()]) is None
        assert (
            MorphyBatchKernel.build([MorphyBuffer(), MorphyBuffer(cap_count=4)])
            is None
        )
        assert ReactBatchKernel.build([ReactBuffer(), MorphyBuffer()]) is None
        slow = ReactBuffer()
        slow.controller.expansion_min_interval *= 2.0
        assert ReactBatchKernel.build([ReactBuffer(), slow]) is None

    def test_leakage_stacking(self):
        stacked = stack_proportional_leakage(
            [VoltageProportionalLeakage(1e-6, 6.3), NoLeakage()]
        )
        assert stacked is not None
        rated_current, rated_voltage = stacked
        assert rated_current[0] == pytest.approx(1e-6)
        assert rated_current[1] == 0.0
        assert rated_voltage[0] == pytest.approx(6.3)
        assert stack_proportional_leakage([ConstantCurrentLeakage(1e-6)]) is None


class TestVectorizedPrimitives:
    def test_trace_powers_at_matches_scalar_lookup(self):
        trace = QUICK.trace("RF Cart")
        times = np.array([0.0, 0.37, 1.0, 5.5, trace.duration - 0.01,
                          trace.duration, trace.duration + 123.4])
        batched = trace.powers_at(times)
        for t, p in zip(times, batched):
            assert p == trace.power_at(float(t))

    def test_zero_order_hold_table_matches_powers_at(self):
        trace = QUICK.trace("RF Cart")
        padded, sentinel = trace.zero_order_hold_table()
        times = np.array([0.0, 0.37, 5.5, trace.duration - 0.01,
                          trace.duration, trace.duration + 123.4])
        indices = np.minimum(
            (times / trace.sample_period).astype(np.int64), sentinel
        )
        assert list(padded[indices]) == list(trace.powers_at(times))

    @pytest.mark.parametrize("regulator", [IdealRegulator(), BoostRegulator()])
    def test_regulator_batch_matches_scalar(self, regulator):
        powers = np.array([0.0, 1e-7, 5e-7, 2e-6, 1e-4, 3e-3])
        voltages = np.array([0.0, 1.0, 1.8, 2.5, 3.3, 3.6])
        batched = regulator.delivered_power_batch(powers, voltages)
        for p, v, d in zip(powers, voltages, batched):
            assert d == regulator.delivered_power(float(p), float(v))

    def test_regulator_batch_fallback_is_exact_for_subclasses(self):
        class Halving(Regulator):
            def efficiency(self, input_power, buffer_voltage):
                return 0.5

        regulator = Halving()
        powers = np.array([0.0, 1e-3, 2e-3])
        voltages = np.zeros(3)
        batched = regulator.delivered_power_batch(powers, voltages)
        assert list(batched) == [0.0, 0.5e-3, 1e-3]


class TestBatchSimulatorEquivalence:
    def test_bitwise_equal_to_step_by_step_engine(self):
        """Pure lockstep execution replays the scalar recurrence bit-for-bit."""
        trace = QUICK.trace("RF Cart")
        lanes = [
            ("770 uF", microfarads(770.0), "DE"), ("10 mF", millifarads(10.0), "SC")
        ]

        def systems():
            return [
                build_system(trace, StaticBuffer(c, name=n), w, "RF Cart")
                for n, c, w in lanes
            ]

        reference = [
            Simulator(system, fast_forward=False, **simulator_kwargs()).run()
            for system in systems()
        ]
        batched = BatchSimulator(
            systems(), scalar_tail_lanes=0, **simulator_kwargs()
        ).run()
        for ref, got in zip(reference, batched):
            assert_results_equivalent(ref, got, exact_ledgers=True)

    def test_lane_divergence_and_retirement(self):
        """Lanes with wildly different lifetimes retire independently."""
        trace = QUICK.trace("RF Obstruction")
        sizes = [
            ("tiny", microfarads(200.0)),
            ("small", microfarads(770.0)),
            ("large", millifarads(17.0)),
            ("never-starts", millifarads(300.0)),
        ]

        def systems():
            return [
                build_system(trace, StaticBuffer(c, name=n), "SC", "RF Obstruction")
                for n, c in sizes
            ]

        reference = [
            Simulator(system, **simulator_kwargs()).run() for system in systems()
        ]
        batched = BatchSimulator(
            systems(), scalar_tail_lanes=0, **simulator_kwargs()
        ).run()
        assert reference[-1].latency is None  # the oversized lane never enables
        for ref, got in zip(reference, batched):
            assert_results_equivalent(ref, got)

    def test_scalar_tail_handoff_changes_nothing(self):
        trace = QUICK.trace("RF Cart")

        def systems():
            return [
                build_system(
                    trace, buffer, workload, "RF Cart"
                )
                for workload in ("DE", "SC")
                for buffer in static_and_dewdrop_buffers()
            ]

        pure = BatchSimulator(
            systems(), scalar_tail_lanes=0, **simulator_kwargs()
        ).run()
        with_tail = BatchSimulator(
            systems(), scalar_tail_lanes=4, **simulator_kwargs()
        ).run()
        for ref, got in zip(pure, with_tail):
            assert_results_equivalent(ref, got)

    def test_fast_forward_false_threads_through_to_the_tail(self):
        """A step-by-step ablation is bit-exact end to end.

        The lockstep loop is always step-by-step arithmetic; with
        ``fast_forward=False`` the scalar tail hand-off is too, so every
        lane — including ledgers — must equal the step-by-step scalar
        engine bitwise even with the tail hand-off active.
        """
        trace = QUICK.trace("RF Cart")

        def systems():
            return [
                build_system(trace, buffer, workload, "RF Cart")
                for workload in ("DE", "SC")
                for buffer in static_and_dewdrop_buffers()
            ]

        reference = [
            Simulator(system, fast_forward=False, **simulator_kwargs()).run()
            for system in systems()
        ]
        batched = BatchSimulator(
            systems(), fast_forward=False, **simulator_kwargs()
        ).run()
        for ref, got in zip(reference, batched):
            assert_results_equivalent(ref, got, exact_ledgers=True)

    def test_single_lane_batch_delegates_to_scalar_engine(self):
        trace = QUICK.trace("RF Cart")
        reference = Simulator(
            build_system(trace, StaticBuffer(millifarads(10.0)), "DE", "RF Cart"),
            **simulator_kwargs(),
        ).run()
        batched = BatchSimulator(
            [build_system(trace, StaticBuffer(millifarads(10.0)), "DE", "RF Cart")],
            **simulator_kwargs(),
        ).run()
        assert len(batched) == 1
        assert_results_equivalent(reference, batched[0], exact_ledgers=True)

    def test_precharged_lanes_enable_on_the_first_step(self):
        """A lane starting at the enable threshold matches scalar exactly.

        Exercises the zero-harvest enable-prediction path: with no power in
        the first trace sample, the voltage bound degenerates to the present
        voltage and the enabling step must still resolve at ``dt_on``.
        """
        trace = PowerTrace(
            np.concatenate([np.zeros(5), np.full(10, 2e-3)]),
            sample_period=1.0,
            name="dark-start",
        )

        def systems():
            built = []
            for voltage in (3.5, 2.0):
                buffer = StaticBuffer(millifarads(10.0), name=f"{voltage} V")
                buffer._capacitor.set_voltage(voltage)
                built.append(build_system(trace, buffer, "DE", "RF Cart"))
            return built

        reference = [
            Simulator(
                system, dt_on=0.02, dt_off=0.1, max_drain_time=20.0
            ).run()
            for system in systems()
        ]
        batched = BatchSimulator(
            systems(), dt_on=0.02, dt_off=0.1, max_drain_time=20.0,
            scalar_tail_lanes=0,
        ).run()
        assert reference[0].latency == pytest.approx(0.02)
        for ref, got in zip(reference, batched):
            assert_results_equivalent(ref, got)

    def test_boost_regulator_lanes_match_scalar(self):
        trace = QUICK.trace("RF Mobile")

        def systems():
            return [
                build_system(
                    trace,
                    StaticBuffer(millifarads(c)),
                    "DE",
                    "RF Mobile",
                    regulator=BoostRegulator(),
                )
                for c in (1.0, 10.0)
            ]

        reference = [
            Simulator(system, **simulator_kwargs()).run() for system in systems()
        ]
        batched = BatchSimulator(
            systems(), scalar_tail_lanes=0, **simulator_kwargs()
        ).run()
        for ref, got in zip(reference, batched):
            assert_results_equivalent(ref, got)

    def test_raw_energy_counted_even_when_nothing_is_delivered(self):
        """The frontend's raw ledger must not depend on delivered power.

        A boost regulator delivers nothing below its quiescent power, but
        the raw harvested energy still exists and the scalar frontend
        counts it; batched lanes must agree exactly.
        """
        quiescent = BoostRegulator().quiescent_power
        trace = PowerTrace(
            np.full(30, quiescent * 0.5), sample_period=1.0, name="sub-quiescent"
        )

        def systems():
            return [
                build_system(
                    trace,
                    StaticBuffer(millifarads(c)),
                    "DE",
                    "RF Cart",
                    regulator=BoostRegulator(),
                )
                for c in (1.0, 10.0)
            ]

        scalar_systems = systems()
        for system in scalar_systems:
            Simulator(
                system, dt_on=0.02, dt_off=0.1, max_drain_time=5.0,
                fast_forward=False,
            ).run()
        batch_systems = systems()
        BatchSimulator(
            batch_systems, dt_on=0.02, dt_off=0.1, max_drain_time=5.0,
            scalar_tail_lanes=0,
        ).run()
        for ref, got in zip(scalar_systems, batch_systems):
            assert ref.frontend.raw_energy_offered > 0.0
            assert got.frontend.raw_energy_offered == ref.frontend.raw_energy_offered
            assert got.frontend.energy_delivered == ref.frontend.energy_delivered

    def test_mid_segment_retirement_mixed_lanes_bit_exact(self):
        """Lanes leaving mid-segment don't disturb fast-forwarding peers.

        A mixed batch — quiescent lanes deep inside skippable hint windows
        or off-phase charge segments alongside lanes that brown out,
        drain, and retire partway through those same trace segments —
        exercises the masked normal step (a fast-forwarded majority, a
        stepping minority) and retirement compaction while other lanes'
        skip windows are still pending.  Everything must stay bit-exact
        against the step-by-step scalar engine, ledgers included.
        """
        trace = QUICK.trace("RF Obstruction")
        lanes = [
            ("tiny", microfarads(200.0), "SC"),
            ("small", microfarads(770.0), "DE"),
            ("mid", millifarads(10.0), "SC"),
            ("large", millifarads(17.0), "DE"),
            ("never-starts", millifarads(300.0), "SC"),
        ]

        def systems():
            return [
                build_system(
                    trace, StaticBuffer(c, name=n), w, "RF Obstruction"
                )
                for n, c, w in lanes
            ]

        reference = [
            Simulator(system, fast_forward=False, **simulator_kwargs()).run()
            for system in systems()
        ]
        batched = BatchSimulator(
            systems(), scalar_tail_lanes=0, **simulator_kwargs()
        ).run()
        # The mix actually diverges: brownouts on the small lanes, none of
        # the oversized lane ever starting.
        assert any(r.brownout_count > 0 for r in reference)
        assert reference[-1].latency is None
        retire_times = {r.simulated_time for r in reference}
        assert len(retire_times) > 1  # lanes retire at different timestamps
        for ref, got in zip(reference, batched):
            assert_results_equivalent(ref, got, exact_ledgers=True)

    def test_retirement_inside_skipped_segment_with_and_without_ff(self):
        """Fast-forwarding must not shift when a lane retires.

        The same mixed batch with fast-forwarding disabled pins the
        retirement schedule; the default (fast-forwarding) batch must
        reproduce it lane for lane — a lane's drain termination or hard
        stop may not slip past a segment its neighbours skipped.
        """
        trace = QUICK.trace("Solar Campus")
        sizes = [microfarads(330.0), microfarads(770.0), millifarads(10.0)]

        def systems():
            return [
                build_system(
                    trace, StaticBuffer(c), w, "Solar Campus"
                )
                for w in ("DE", "SC")
                for c in sizes
            ]

        stepped = BatchSimulator(
            systems(), fast_forward=False, scalar_tail_lanes=0,
            **simulator_kwargs(),
        ).run()
        fast = BatchSimulator(
            systems(), scalar_tail_lanes=0, **simulator_kwargs()
        ).run()
        for ref, got in zip(stepped, fast):
            assert_results_equivalent(ref, got, exact_ledgers=True)


class TestMorphyBatchEquivalence:
    """The Morphy lockstep kernel against the scalar engine.

    Same discipline as the static lanes: bit-identical against step-by-step
    execution (counters, timestamps, *and* ledgers), 1e-9 ledgers against
    the scalar default fast path.  The lanes mix workloads and unit
    capacitances so configuration levels, poll schedules, and gate states
    all diverge across the batch.
    """

    def systems(self, trace, workloads=("DE", "SC")):
        return [
            build_system(trace, buffer, workload, trace.name)
            for workload in workloads
            for buffer in morphy_variant_buffers()
        ]

    def test_bitwise_equal_to_step_by_step_engine(self):
        trace = QUICK.trace("RF Cart")
        reference = [
            Simulator(system, fast_forward=False, **simulator_kwargs()).run()
            for system in self.systems(trace)
        ]
        batched = BatchSimulator(
            self.systems(trace), scalar_tail_lanes=0, **simulator_kwargs()
        ).run()
        for ref, got in zip(reference, batched):
            assert_results_equivalent(ref, got, exact_ledgers=True)

    def test_reconfiguration_heavy_lanes_match_bitwise(self):
        """Solar lanes drive the 10 Hz controller through many level changes."""
        trace = QUICK.trace("Solar Campus")
        reference = [
            Simulator(system, fast_forward=False, **simulator_kwargs()).run()
            for system in self.systems(trace, workloads=("SC", "RT"))
        ]
        batched = BatchSimulator(
            self.systems(trace, workloads=("SC", "RT")),
            scalar_tail_lanes=0,
            **simulator_kwargs(),
        ).run()
        for ref, got in zip(reference, batched):
            assert_results_equivalent(ref, got, exact_ledgers=True)

    def test_reconfiguration_counts_write_back(self):
        """The kernel's per-lane reconfiguration tally lands on the buffers."""
        trace = QUICK.trace("Solar Campus")
        scalar_systems = self.systems(trace, workloads=("SC",))
        for system in scalar_systems:
            Simulator(system, fast_forward=False, **simulator_kwargs()).run()
        batch_systems = self.systems(trace, workloads=("SC",))
        BatchSimulator(
            batch_systems, scalar_tail_lanes=0, **simulator_kwargs()
        ).run()
        assert any(s.buffer.reconfiguration_count > 0 for s in scalar_systems)
        for ref, got in zip(scalar_systems, batch_systems):
            assert got.buffer.reconfiguration_count == ref.buffer.reconfiguration_count
            assert got.buffer.level == ref.buffer.level
            assert got.buffer._voltages == ref.buffer._voltages
            assert got.buffer._next_poll_time == ref.buffer._next_poll_time

    def test_scalar_tail_handoff_changes_nothing(self):
        trace = QUICK.trace("RF Cart")
        pure = BatchSimulator(
            self.systems(trace), scalar_tail_lanes=0, **simulator_kwargs()
        ).run()
        with_tail = BatchSimulator(
            self.systems(trace), scalar_tail_lanes=3, **simulator_kwargs()
        ).run()
        for ref, got in zip(pure, with_tail):
            assert_results_equivalent(ref, got)


class TestReactBatchEquivalence:
    """The REACT lockstep kernel against the scalar engine.

    Same discipline as the static and Morphy lanes: bit-identical against
    step-by-step execution (counters, timestamps, *and* ledgers), 1e-9
    ledgers against the scalar default fast path.  The lanes mix workloads
    and polling hints so poll schedules, bank states, and power-gate
    phases all diverge across the batch.
    """

    def systems(self, trace, workloads=("DE", "SC")):
        return [
            build_system(trace, buffer, workload, trace.name)
            for workload in workloads
            for buffer in react_variant_buffers()
        ]

    def test_bitwise_equal_to_step_by_step_engine(self):
        trace = QUICK.trace("RF Cart")
        reference = [
            Simulator(system, fast_forward=False, **simulator_kwargs()).run()
            for system in self.systems(trace)
        ]
        batched = BatchSimulator(
            self.systems(trace), scalar_tail_lanes=0, fast_forward=False,
            **simulator_kwargs(),
        ).run()
        for ref, got in zip(reference, batched):
            assert_results_equivalent(ref, got, exact_ledgers=True)

    def test_fast_forward_matches_scalar_fast_path(self):
        trace = QUICK.trace("RF Cart")
        reference = [
            Simulator(system, **simulator_kwargs()).run()
            for system in self.systems(trace)
        ]
        batched = BatchSimulator(
            self.systems(trace), scalar_tail_lanes=0, **simulator_kwargs()
        ).run()
        for ref, got in zip(reference, batched):
            assert_results_equivalent(ref, got)

    def test_reconfiguration_heavy_lanes_match_bitwise(self):
        """Solar lanes drive the 10 Hz controller through many bank steps."""
        trace = QUICK.trace("Solar Campus")
        reference = [
            Simulator(system, fast_forward=False, **simulator_kwargs()).run()
            for system in self.systems(trace, workloads=("SC", "RT"))
        ]
        batched = BatchSimulator(
            self.systems(trace, workloads=("SC", "RT")),
            scalar_tail_lanes=0,
            fast_forward=False,
            **simulator_kwargs(),
        ).run()
        for ref, got in zip(reference, batched):
            assert_results_equivalent(ref, got, exact_ledgers=True)

    def test_controller_and_fabric_state_write_back(self):
        """Finalized lanes land every counter on the live objects exactly:
        controller tallies, bank states and cell voltages, switch-pole
        actuation counts and energies, and the hardware loss counters."""
        trace = QUICK.trace("Solar Campus")
        scalar_systems = self.systems(trace, workloads=("SC",))
        for system in scalar_systems:
            Simulator(system, fast_forward=False, **simulator_kwargs()).run()
        batch_systems = self.systems(trace, workloads=("SC",))
        BatchSimulator(
            batch_systems, scalar_tail_lanes=0, fast_forward=False,
            **simulator_kwargs(),
        ).run()
        assert any(
            s.buffer.controller.step_up_count > 0 for s in scalar_systems
        )
        for ref, got in zip(scalar_systems, batch_systems):
            ref_buffer, got_buffer = ref.buffer, got.buffer
            assert (
                got_buffer.controller.poll_count
                == ref_buffer.controller.poll_count
            )
            assert (
                got_buffer.controller.step_up_count
                == ref_buffer.controller.step_up_count
            )
            assert (
                got_buffer.controller.step_down_count
                == ref_buffer.controller.step_down_count
            )
            assert (
                got_buffer.controller._next_poll_time
                == ref_buffer.controller._next_poll_time
            )
            assert (
                got_buffer.hardware.monitor.last_signal
                is ref_buffer.hardware.monitor.last_signal
            )
            assert (
                got_buffer.hardware.energy_leaked
                == ref_buffer.hardware.energy_leaked
            )
            assert (
                got_buffer.hardware.transfer_loss
                == ref_buffer.hardware.transfer_loss
            )
            for ref_bank, got_bank in zip(
                ref_buffer.hardware.banks, got_buffer.hardware.banks
            ):
                assert got_bank.state is ref_bank.state
                assert got_bank.cell_voltage == ref_bank.cell_voltage
                assert (
                    got_bank.reconfiguration_count
                    == ref_bank.reconfiguration_count
                )
                for ref_pole, got_pole in (
                    (ref_bank.switch.pole_a, got_bank.switch.pole_a),
                    (ref_bank.switch.pole_b, got_bank.switch.pole_b),
                ):
                    assert got_pole.state is ref_pole.state
                    assert got_pole.actuation_count == ref_pole.actuation_count
                    assert got_pole.energy_spent == ref_pole.energy_spent

    def test_hint_expiry_clustering_is_bit_neutral(self):
        """Shared-expiry clustering only trims replay budgets (invariant 1
        of the segment plan), so clustered and unclustered batched runs
        must be bit-identical — the clustering buys fewer, wider lockstep
        groups, never a different trajectory."""
        trace = QUICK.trace("RF Cart")
        clustered = BatchSimulator(
            self.systems(trace), scalar_tail_lanes=0, **simulator_kwargs()
        ).run()
        unclustered = BatchSimulator(
            self.systems(trace),
            scalar_tail_lanes=0,
            cluster_hint_expiries=False,
            **simulator_kwargs(),
        ).run()
        for ref, got in zip(unclustered, clustered):
            assert_results_equivalent(ref, got, exact_ledgers=True)

    def test_scalar_tail_handoff_changes_nothing(self):
        trace = QUICK.trace("RF Cart")
        pure = BatchSimulator(
            self.systems(trace), scalar_tail_lanes=0, **simulator_kwargs()
        ).run()
        with_tail = BatchSimulator(
            self.systems(trace), scalar_tail_lanes=3, **simulator_kwargs()
        ).run()
        for ref, got in zip(pure, with_tail):
            assert_results_equivalent(ref, got)


class TestBatchSimulatorValidation:
    def test_rejects_unbatchable_buffers(self):
        trace = QUICK.trace("RF Cart")
        with pytest.raises(SimulationError, match="batched kernel"):
            BatchSimulator(
                [build_system(trace, CapybaraBuffer(), "DE", "RF Cart")]
            )

    def test_rejects_mixed_kernel_families(self):
        trace = QUICK.trace("RF Cart")
        systems = [
            build_system(trace, MorphyBuffer(), "DE", "RF Cart"),
            build_system(trace, StaticBuffer(millifarads(10.0)), "DE", "RF Cart"),
        ]
        with pytest.raises(SimulationError, match="incompatible kernels"):
            BatchSimulator(systems)

    def test_rejects_mixed_traces(self):
        lane_a = build_system(
            QUICK.trace("RF Cart"), StaticBuffer(millifarads(10.0)), "DE", "RF Cart"
        )
        lane_b = build_system(
            QUICK.trace("Solar Commute"),
            StaticBuffer(millifarads(10.0)),
            "DE",
            "Solar Commute",
        )
        with pytest.raises(SimulationError, match="share one power trace"):
            BatchSimulator([lane_a, lane_b])

    def test_rejects_mixed_regulators(self):
        trace = QUICK.trace("RF Cart")
        lane_a = build_system(trace, StaticBuffer(millifarads(10.0)), "DE", "RF Cart")
        lane_b = build_system(
            trace,
            StaticBuffer(millifarads(10.0)),
            "DE",
            "RF Cart",
            regulator=BoostRegulator(),
        )
        with pytest.raises(SimulationError, match="share one regulator"):
            BatchSimulator([lane_a, lane_b])

    def test_rejects_empty_batch_and_bad_steps(self):
        trace = QUICK.trace("RF Cart")
        system = build_system(trace, StaticBuffer(millifarads(10.0)), "DE", "RF Cart")
        with pytest.raises(SimulationError):
            BatchSimulator([])
        with pytest.raises(SimulationError):
            BatchSimulator([system], dt_on=0.1, dt_off=0.05)
        with pytest.raises(SimulationError):
            BatchSimulator([system], max_drain_time=-1.0)

    def test_shared_trace_accepted_by_value(self):
        """Equal traces from different objects batch together."""
        trace_a = QUICK.trace("RF Cart")
        trace_b = QUICK.trace("RF Cart")
        systems = [
            build_system(trace_a, StaticBuffer(millifarads(10.0)), "DE", "RF Cart"),
            build_system(trace_b, StaticBuffer(millifarads(10.0)), "SC", "RF Cart"),
        ]
        assert len(BatchSimulator(systems, **simulator_kwargs()).run()) == 2

    def test_from_settings_threads_fidelity_and_overrides(self):
        trace = QUICK.trace("RF Cart")
        systems = [
            build_system(trace, StaticBuffer(millifarads(10.0)), "DE", "RF Cart")
        ]
        simulator = BatchSimulator.from_settings(systems, QUICK, fast_forward=False)
        assert simulator.dt_on == QUICK.effective_dt_on
        assert simulator.dt_off == QUICK.effective_dt_off
        assert simulator.max_drain_time == QUICK.max_drain_time
        assert simulator.fast_forward is False


class TestFullGridEquivalence:
    """The acceptance gate: batched == scalar on the full quick-mode grid."""

    def test_full_quick_grid_static_and_dewdrop(self):
        serial = ExperimentRunner(
            QUICK, buffer_factory=static_and_dewdrop_buffers
        ).run_grid()
        batched = ExperimentRunner(
            QUICK, buffer_factory=static_and_dewdrop_buffers, backend=BatchBackend()
        ).run_grid()
        assert len(serial) == len(batched) == 4 * 5 * 4  # workloads×traces×buffers
        for ref, got in zip(serial, batched):
            assert_results_equivalent(ref, got)

    def test_full_quick_grid_morphy(self):
        """The Morphy acceptance gate: batched == scalar on the full quick grid.

        Every workload × trace cell with two Morphy lanes each, so each
        trace group packs eight Morphy lanes into one lockstep kernel.
        """
        serial = ExperimentRunner(
            QUICK, buffer_factory=morphy_variant_buffers
        ).run_grid()
        batched = ExperimentRunner(
            QUICK, buffer_factory=morphy_variant_buffers, backend=BatchBackend()
        ).run_grid()
        assert len(serial) == len(batched) == 4 * 5 * 2  # workloads×traces×buffers
        for ref, got in zip(serial, batched):
            assert_results_equivalent(ref, got)

    def test_full_quick_grid_react(self):
        """The REACT acceptance gate: batched == scalar on the full quick grid.

        Every workload × trace cell with two config-sharing REACT lanes, so
        each trace group packs eight REACT lanes into one lockstep kernel.
        """
        serial = ExperimentRunner(
            QUICK, buffer_factory=react_variant_buffers
        ).run_grid()
        batched = ExperimentRunner(
            QUICK, buffer_factory=react_variant_buffers, backend=BatchBackend()
        ).run_grid()
        assert len(serial) == len(batched) == 4 * 5 * 2  # workloads×traces×buffers
        for ref, got in zip(serial, batched):
            assert_results_equivalent(ref, got)

    def test_mixed_kernel_grid_batches_every_family(self):
        """Static, Morphy and REACT lanes of one trace batch in separate kernels."""
        serial = ExperimentRunner(
            QUICK, buffer_factory=mixed_kernel_buffers
        ).run_grid(trace_names=("RF Cart",))
        batched = ExperimentRunner(
            QUICK, buffer_factory=mixed_kernel_buffers, backend=BatchBackend()
        ).run_grid(trace_names=("RF Cart",))
        assert len(serial) == len(batched) == 4 * 8
        for ref, got in zip(serial, batched):
            assert_results_equivalent(ref, got)

    def test_mixed_grid_falls_back_per_lane(self):
        """Capybara cells (and narrow kernel groups) run scalar, in serial order."""
        serial = ExperimentRunner(QUICK).run_grid(
            workloads=("SC",), trace_names=("RF Cart",)
        )
        seen = []
        batched = ExperimentRunner(QUICK, backend=BatchBackend()).run_grid(
            workloads=("SC",),
            trace_names=("RF Cart",),
            progress=lambda r: seen.append(r.buffer_name),
        )
        assert [r.buffer_name for r in batched] == [r.buffer_name for r in serial]
        assert seen == [r.buffer_name for r in batched]
        for ref, got in zip(serial, batched):
            assert_results_equivalent(ref, got)

    def test_min_lanes_routes_everything_scalar(self):
        serial = ExperimentRunner(QUICK).run_grid(
            workloads=("DE",), trace_names=("RF Cart",)
        )
        batched = ExperimentRunner(
            QUICK, backend=BatchBackend(min_lanes=100)
        ).run_grid(workloads=("DE",), trace_names=("RF Cart",))
        for ref, got in zip(serial, batched):
            assert_results_equivalent(ref, got, exact_ledgers=True)


class TestBatchedExecutionWiring:
    def test_settings_resolve_batch_backend(self):
        settings = ExperimentSettings(quick=True, batch=True)
        assert settings.backend_name == "batch"
        backend = ExperimentRunner(settings).resolved_backend()
        assert isinstance(backend, BatchBackend)

    def test_batch_and_workers_compose_to_pool_batch(self):
        """The old mutual-exclusion error is gone: the flags compose."""
        settings = ExperimentSettings(quick=True, batch=True, workers=4)
        assert settings.backend_name == "pool+batch"
        backend = ExperimentRunner(settings).resolved_backend()
        assert isinstance(backend, PoolBatchBackend)
        assert backend.workers == 4

    def test_cli_accepts_batch_flag(self):
        args = build_parser().parse_args(["table2", "--quick", "--batch"])
        assert args.batch and args.quick

    def test_cli_accepts_batch_with_workers(self):
        args = build_parser().parse_args(["table2", "--batch", "--workers", "4"])
        assert args.batch and args.workers == 4


class TestMidFlightScalarResume:
    """The engine hooks the tail hand-off relies on."""

    def test_start_time_resumes_accounting(self):
        trace = PowerTrace(np.full(20, 5e-3), sample_period=1.0, name="const")
        system = build_system(trace, StaticBuffer(millifarads(10.0)), "DE", "RF Cart")
        result = Simulator(
            system, dt_on=0.02, dt_off=0.1, max_drain_time=5.0, start_time=18.0,
            initial_latency=3.21,
        ).run()
        assert result.latency == pytest.approx(3.21)
        assert result.simulated_time >= 18.0

    def test_negative_start_time_rejected(self):
        trace = PowerTrace([1e-3], sample_period=1.0)
        system = build_system(trace, StaticBuffer(millifarads(10.0)), "DE", "RF Cart")
        with pytest.raises(SimulationError):
            Simulator(system, start_time=-1.0)
