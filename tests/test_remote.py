"""The distributed sweep service: transport, scheduling, fault tolerance.

Four contracts are pinned here:

* **Wire protocol** — length-prefixed pickle frames round-trip every
  message, a clean EOF between frames reads as ``None``, and truncated or
  misframed streams raise instead of hanging or mis-parsing.
* **Shard planning** — shards follow the shared batch-partition
  boundaries: every spec lands in exactly one shard, lane groups never
  split below ``min_lanes``, and shard-internal order is spec order.
* **Bit-equality** — the full quick grid through ``remote:serial`` with
  local worker processes returns the serial backend's results in serial
  order under the same discipline as ``tests/test_batch_engine.py``
  (exact counters, 1e-9 ledgers) — including with a worker SIGKILLed
  mid-sweep.
* **Fault tolerance** — stalled workers trip the per-shard timeout and
  their shards are requeued elsewhere; an exhausted retry budget raises
  :class:`~repro.exceptions.SweepTransportError` naming the affected spec
  indices (never a hang); a fleet that dies entirely fails fast.

Subprocess-worker tests stick to :func:`standard_buffers` — test-local
buffer factories don't exist in a freshly spawned worker interpreter, so
their specs can't unpickle there.  The in-process fake-client tests are
free to use tiny local factories.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time

import pytest
from test_backends import assert_results_equivalent

from repro.buffers.capybara import CapybaraBuffer
from repro.buffers.static import StaticBuffer
from repro.exceptions import ConfigurationError, SweepTransportError
from repro.experiments import sweep
from repro.experiments.backends import (
    SerialBackend,
    available_backends,
    backend_name_prefix,
    register_backend_prefix,
    resolve_backend,
    split_backend_name,
    unregister_backend_prefix,
)
from repro.experiments.remote import (
    LocalWorkerPool,
    RemoteBackend,
    SweepWorker,
    plan_shards,
    protocol,
    worker_command,
)
from repro.experiments.remote.coordinator import _Coordinator
from repro.experiments.remote.worker import main as worker_main
from repro.experiments.runner import ExperimentRunner, ExperimentSettings
from repro.experiments.store import CachedBackend
from repro.units import millifarads

QUICK = ExperimentSettings(quick=True)
FAST = ExperimentSettings(quick=True, quick_trace_cap=120.0)


def static_ladder_buffers():
    """Six trace-sharing static lanes (in-process tests only; see above)."""
    return [
        StaticBuffer(millifarads(0.5 * (index + 1)), name=f"{0.5 * (index + 1):.1f} mF")
        for index in range(6)
    ]


def capybara_pair_buffers():
    """Two unbatchable lanes (in-process tests only): singles shards, floor 1."""
    return [
        CapybaraBuffer(name="Capybara A"),
        CapybaraBuffer(task_capacitance=millifarads(20.0), name="Capybara B"),
    ]


@pytest.fixture(scope="module")
def serial_full_grid():
    """The serial oracle for the full quick grid, computed once."""
    return sweep(settings=QUICK, backend="serial")


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def roundtrip(self, message):
        left, right = socket.socketpair()
        try:
            protocol.send_message(left, message)
            return protocol.recv_message(right)
        finally:
            left.close()
            right.close()

    def test_messages_roundtrip(self):
        specs = ExperimentRunner(FAST).grid_specs(
            workloads=("DE",), trace_names=("RF Cart",)
        )
        for message in (
            protocol.Hello(worker_id="h:1", pid=1, host="h"),
            protocol.Heartbeat(worker_id="h:1"),
            protocol.ShardAssignment(
                shard_id=3,
                attempt=1,
                inner="serial",
                indices=(0, 1),
                specs=tuple(specs[:2]),
            ),
            protocol.ShardFailure(
                shard_id=3, attempt=2, worker_id="h:1", error="boom"
            ),
            protocol.Shutdown(reason="drained"),
        ):
            received = self.roundtrip(message)
            assert type(received) is type(message)
            if not isinstance(message, protocol.ShardAssignment):
                assert received == message
            else:
                assert received.indices == message.indices
                assert len(received.specs) == len(message.specs)

    def test_clean_eof_reads_as_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert protocol.recv_message(right) is None
        finally:
            right.close()

    def test_eof_mid_frame_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x00\x00\x00\x00\x10abc")  # 16 promised
            left.close()
            with pytest.raises(ConnectionError, match="mid-frame"):
                protocol.recv_message(right)
        finally:
            right.close()

    def test_oversize_frame_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\xff" * 8)
            with pytest.raises(ConnectionError, match="refusing protocol frame"):
                protocol.recv_message(right)
        finally:
            left.close()
            right.close()

    def test_parse_address(self):
        assert protocol.parse_address("host:9000") == ("host", 9000)
        assert protocol.parse_address(":9000") == ("127.0.0.1", 9000)
        for bad in ("host", "host:", "host:http", "9000"):
            with pytest.raises(ValueError, match="HOST:PORT"):
                protocol.parse_address(bad)


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------


class TestShardPlanning:
    def test_every_spec_in_exactly_one_shard_in_order(self):
        specs = ExperimentRunner(QUICK).grid_specs()
        shards = plan_shards(specs, workers=3)
        seen = [index for shard in shards for index in shard.indices]
        assert sorted(seen) == list(range(len(specs)))
        for shard in shards:
            assert list(shard.indices) == sorted(shard.indices)
            group_keys = {specs[i].group_key for i in shard.indices}
            assert len(group_keys) == 1  # one trace (and kernel) per shard

    def test_wide_lane_group_splits_but_not_below_min_lanes(self):
        specs = ExperimentRunner(
            QUICK, buffer_factory=static_ladder_buffers
        ).grid_specs(workloads=("SC",), trace_names=("RF Cart",))
        shards = plan_shards(specs, workers=3, min_lanes=3)
        assert len(shards) == 2  # six lanes split in two, floor of three
        assert all(len(shard.indices) >= 3 for shard in shards)
        assert plan_shards(specs, workers=3, min_lanes=6) == plan_shards(
            specs, workers=1, min_lanes=6
        )  # too narrow to split, whatever the worker count

    def test_shard_count_tracks_worker_count(self):
        specs = ExperimentRunner(
            QUICK, buffer_factory=static_ladder_buffers
        ).grid_specs(workloads=("SC",), trace_names=("RF Cart",))
        assert len(plan_shards(specs, workers=4, min_lanes=2)) > len(
            plan_shards(specs, workers=1, min_lanes=2)
        )


class TestShardRetuning:
    """Observed per-cell wall-clock re-splits pending shards mid-sweep.

    ``plan_shards`` sizes shards from lane counts alone (~2 per worker);
    these tests drive ``_Coordinator._observe_shard_cost`` directly — no
    sockets — and pin the retune invariants: splits respect the group
    floor, dispatched shards keep their identity, bookkeeping stays
    consistent, and the knob can be disabled.
    """

    def coordinator(self, buffer_factory, shard_target_seconds=30.0, **backend_kwargs):
        specs = ExperimentRunner(QUICK, buffer_factory=buffer_factory).grid_specs(
            workloads=("DE", "SC"), trace_names=("RF Cart",)
        )
        backend = RemoteBackend(
            inner="serial",
            workers=1,
            shard_target_seconds=shard_target_seconds,
            **backend_kwargs,
        )
        return _Coordinator(backend, list(specs))

    def assert_consistent(self, run):
        """Every spec still lands in exactly one live shard, ids resolve."""
        seen = sorted(
            index for shard in run.shards if not shard.done for index in shard.indices
        )
        assert seen == list(range(len(run.specs)))
        for shard in run.pending:
            assert run.shard_by_id[shard.shard_id] is shard
        assert run.report.shards_total == len(run.shards)

    def test_observed_heavy_cells_split_pending_shards(self):
        run = self.coordinator(capybara_pair_buffers)
        assert [len(shard.indices) for shard in run.pending] == [2, 2]
        first = run.pending.popleft()
        first.attempts = 1  # in flight on a worker
        # 20 s/cell against a 30 s target: pending shards shrink to 1 cell.
        run._observe_shard_cost(first, wall_seconds=40.0)
        assert run.report.shard_splits == 1
        assert [len(shard.indices) for shard in run.pending] == [1, 1]
        run.pending.appendleft(first)
        self.assert_consistent(run)

    def test_cheap_cells_leave_the_plan_alone(self):
        run = self.coordinator(capybara_pair_buffers)
        before = [shard.shard_id for shard in run.pending]
        run._observe_shard_cost(run.pending[0], wall_seconds=0.02)
        assert [shard.shard_id for shard in run.pending] == before
        assert run.report.shard_splits == 0

    def test_lane_groups_never_split_below_min_lanes(self):
        # Six static lanes in one shard with a floor of five: even at
        # 20 s/cell the retune cannot carve off a sub-floor piece.
        run = self.coordinator(static_ladder_buffers, min_lanes=5)
        wide = run.pending[0]
        assert len(wide.indices) == 6
        run._observe_shard_cost(wide, wall_seconds=20.0 * len(wide.indices))
        assert all(len(shard.indices) >= 5 for shard in run.pending)
        assert run.report.shard_splits == 0

    def test_requeued_shards_keep_their_identity(self):
        run = self.coordinator(capybara_pair_buffers)
        requeued = run.pending[0]
        requeued.attempts = 1  # already dispatched once, then requeued
        run._observe_shard_cost(run.pending[1], wall_seconds=40.0)
        assert requeued in run.pending  # never split: retry ledger survives
        assert len(requeued.indices) == 2

    def test_none_disables_retuning(self):
        run = self.coordinator(capybara_pair_buffers, shard_target_seconds=None)
        before = [shard.shard_id for shard in run.pending]
        run._observe_shard_cost(run.pending[0], wall_seconds=1e6)
        assert [shard.shard_id for shard in run.pending] == before
        assert run._per_cell_seconds is None

    def test_non_positive_target_rejected(self):
        with pytest.raises(ConfigurationError, match="shard_target_seconds"):
            RemoteBackend(inner="serial", workers=1, shard_target_seconds=0.0)


# ----------------------------------------------------------------------
# Registry composition (the shared backend-prefix mechanism)
# ----------------------------------------------------------------------


class TestPrefixRegistry:
    def test_compositions_enumerated(self):
        names = available_backends()
        assert "remote:serial" in names
        assert "cached:remote:serial" in names
        assert "cached:serial" in names
        # cached: nests remote:, never itself; remote: nests nothing.
        assert "remote:remote:serial" not in names
        assert "remote:cached:serial" not in names
        assert "cached:cached:serial" not in names

    def test_nested_composition_resolves(self, tmp_path):
        settings = ExperimentSettings(quick=True, cache_dir=str(tmp_path))
        backend = resolve_backend("cached:remote:serial", settings)
        assert isinstance(backend, CachedBackend)
        assert isinstance(backend.inner, RemoteBackend)
        assert backend.inner.inner == "serial"
        assert backend.name == "cached:remote:serial"

    def test_unknown_inner_raises_listing_registry(self):
        for name in ("remote:quantum", "remote:remote:serial", "remote:"):
            with pytest.raises(ConfigurationError) as excinfo:
                resolve_backend(name, QUICK)
            assert "serial" in str(excinfo.value)
        with pytest.raises(ConfigurationError):
            resolve_backend("cached:cached:serial", QUICK)

    def test_split_and_lookup_helpers(self):
        spec, inner = split_backend_name("cached:remote:serial")
        assert spec is not None and spec.prefix == "cached:"
        assert inner == "remote:serial"
        assert backend_name_prefix("serial") is None
        assert backend_name_prefix("remote:serial").prefix == "remote:"

    def test_duplicate_prefix_registration_rejected_unless_replaced(self):
        resolver = lambda name, settings: None  # noqa: E731 - never called
        try:
            register_backend_prefix("trial:", resolver)
            with pytest.raises(ConfigurationError, match="already registered"):
                register_backend_prefix("trial:", resolver)
            register_backend_prefix("trial:", resolver, replace=True)
            assert "trial:serial" in available_backends()
        finally:
            unregister_backend_prefix("trial:")
        assert "trial:serial" not in available_backends()


# ----------------------------------------------------------------------
# Bit-equality through real worker processes
# ----------------------------------------------------------------------


class TestRemoteEquivalence:
    def test_full_quick_grid_matches_serial(self, serial_full_grid):
        """The acceptance gate: remote:serial x2 workers == serial, full grid."""
        seen = []
        remote = sweep(
            settings=QUICK,
            backend=RemoteBackend(inner="serial", workers=2),
            progress=lambda result: seen.append(result.buffer_name),
        )
        assert len(remote) == len(serial_full_grid) == 4 * 5 * 5
        assert remote.specs == serial_full_grid.specs
        for reference, candidate in zip(serial_full_grid.results, remote.results):
            assert_results_equivalent(reference, candidate)
        assert seen == [result.buffer_name for result in serial_full_grid.results]

    def test_mid_sweep_retune_splits_shards_and_matches_serial(self):
        """A sub-second shard target forces observed-cost re-splitting on
        the first completion; the re-sharded drain must stay bit-identical
        to serial and the report must record the splits."""
        specs = ExperimentRunner(QUICK).grid_specs(
            workloads=("DE", "SC"), trace_names=("RF Cart",)
        )
        serial = SerialBackend().run_specs(specs)
        backend = RemoteBackend(
            inner="serial", workers=2, min_lanes=1, shard_target_seconds=1e-6
        )
        remote = backend.run_specs(specs)
        report = backend.last_run_report
        assert report.shard_splits > 0
        assert report.shards_total > len(plan_shards(specs, workers=2, min_lanes=1))
        assert len(remote) == len(serial)
        for reference, candidate in zip(serial, remote):
            assert_results_equivalent(reference, candidate)

    def test_worker_sigkill_mid_sweep_still_matches_serial(
        self, serial_full_grid, monkeypatch
    ):
        """Killing one of three workers mid-shard costs retries, not results."""
        import repro.experiments.remote.coordinator as coordinator_module

        pools = []

        class CapturingPool(LocalWorkerPool):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                pools.append(self)

        monkeypatch.setattr(coordinator_module, "LocalWorkerPool", CapturingPool)
        backend = RemoteBackend(inner="serial", workers=3)
        outcome = {}

        def run():
            try:
                outcome["results"] = backend.run_specs(serial_full_grid.specs)
            except BaseException as error:  # pragma: no cover - failure path
                outcome["error"] = error

        thread = threading.Thread(target=run)
        thread.start()
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            run_state = backend._active_run
            if pools and run_state is not None and run_state.report.dispatches:
                break
            time.sleep(0.02)
        else:  # pragma: no cover - only on pathological slowness
            pytest.fail("sweep never dispatched a shard")
        os.kill(pools[0].processes[0].pid, signal.SIGKILL)
        thread.join(timeout=600.0)
        assert not thread.is_alive()
        assert "error" not in outcome, outcome.get("error")
        for reference, candidate in zip(
            serial_full_grid.results, outcome["results"]
        ):
            assert_results_equivalent(reference, candidate)


# ----------------------------------------------------------------------
# Fault tolerance against scripted (in-process) workers
# ----------------------------------------------------------------------


class FakeWorker:
    """A protocol-level client the tests script: stall or fail on demand."""

    def __init__(self, port, behavior):
        self.behavior = behavior  # "stall" | "fail"
        self.assigned = threading.Event()
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
        protocol.send_message(
            self.sock,
            protocol.Hello(worker_id=f"fake-{behavior}", pid=0, host="fake"),
        )
        self.thread = threading.Thread(target=self._loop, daemon=True)
        self.thread.start()

    def _loop(self):
        try:
            while True:
                message = protocol.recv_message(self.sock)
                if message is None or isinstance(message, protocol.Shutdown):
                    return
                if isinstance(message, protocol.ShardAssignment):
                    self.assigned.set()
                    if self.behavior == "fail":
                        protocol.send_message(
                            self.sock,
                            protocol.ShardFailure(
                                shard_id=message.shard_id,
                                attempt=message.attempt,
                                worker_id="fake-fail",
                                error="scripted shard failure",
                            ),
                        )
                    # "stall": swallow the assignment and keep reading.
        except (OSError, ConnectionError):
            return

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def run_backend_async(backend, specs):
    """Start ``backend.run_specs`` on a thread; poll for the bound port."""
    outcome = {}

    def run():
        try:
            outcome["results"] = backend.run_specs(specs)
        except BaseException as error:
            outcome["error"] = error

    thread = threading.Thread(target=run)
    thread.start()
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        run_state = backend._active_run
        if run_state is not None and run_state.bound_address is not None:
            return thread, outcome, run_state.bound_address[1]
        if not thread.is_alive():
            break
        time.sleep(0.01)
    thread.join(timeout=1.0)
    raise AssertionError(f"coordinator never bound a port; outcome={outcome}")


class TestFaultTolerance:
    def test_stalled_worker_trips_shard_timeout_and_requeues(self):
        specs = ExperimentRunner(
            FAST, buffer_factory=static_ladder_buffers
        ).grid_specs(workloads=("DE",), trace_names=("RF Cart",))
        serial = resolve_backend("serial", FAST).run_specs(specs)
        backend = RemoteBackend(
            inner="serial",
            workers=0,
            listen=("127.0.0.1", 0),
            shard_timeout=0.5,
            heartbeat_timeout=60.0,
        )
        thread, outcome, port = run_backend_async(backend, specs)
        staller = FakeWorker(port, "stall")
        try:
            assert staller.assigned.wait(timeout=30.0)
            # Only now add a real worker: the stalled shard must be taken
            # away from the fake and complete elsewhere.
            real = threading.Thread(
                target=SweepWorker("127.0.0.1", port).run, daemon=True
            )
            real.start()
            thread.join(timeout=120.0)
            assert not thread.is_alive()
        finally:
            staller.close()
        assert "error" not in outcome, outcome.get("error")
        report = backend.last_run_report
        assert report.requeues >= 1
        assert report.workers_lost >= 1
        for reference, candidate in zip(serial, outcome["results"]):
            assert_results_equivalent(reference, candidate)

    def test_retry_budget_exhaustion_raises_naming_spec_indices(self):
        specs = ExperimentRunner(
            FAST, buffer_factory=static_ladder_buffers
        ).grid_specs(workloads=("DE",), trace_names=("RF Cart",))
        backend = RemoteBackend(
            inner="serial",
            workers=0,
            listen=("127.0.0.1", 0),
            max_shard_retries=1,
        )
        thread, outcome, port = run_backend_async(backend, specs)
        failer = FakeWorker(port, "fail")
        try:
            thread.join(timeout=60.0)
            assert not thread.is_alive()
        finally:
            failer.close()
        error = outcome.get("error")
        assert isinstance(error, SweepTransportError)
        message = str(error)
        assert "spec indices" in message
        assert "scripted shard failure" in message
        # Every index named in the error is a real position in the grid.
        failed_shard = next(
            shard
            for shard in plan_shards(specs, workers=1)
            if str(list(shard.indices)) in message
        )
        assert set(failed_shard.indices) <= set(range(len(specs)))

    def test_all_workers_exiting_fails_fast_not_hangs(self, monkeypatch):
        import sys

        import repro.experiments.remote.launcher as launcher_module

        monkeypatch.setattr(
            launcher_module,
            "worker_command",
            lambda address, **kwargs: [sys.executable, "-c", "pass"],
        )
        specs = ExperimentRunner(FAST).grid_specs(
            workloads=("DE",), trace_names=("RF Cart",)
        )
        backend = RemoteBackend(inner="serial", workers=2)
        with pytest.raises(SweepTransportError, match="exited"):
            backend.run_specs(specs)

    def test_zero_workers_without_listen_rejected(self):
        with pytest.raises(ConfigurationError, match="listen"):
            RemoteBackend(inner="serial", workers=0)
        with pytest.raises(ConfigurationError, match="workers"):
            RemoteBackend(inner="serial", workers=-1)


# ----------------------------------------------------------------------
# Store composition: workers share the coordinator's cache directory
# ----------------------------------------------------------------------


class TestCacheSharing:
    def test_cold_remote_populates_store_and_warm_rerun_hits(self, tmp_path):
        settings = ExperimentSettings(quick=True, cache_dir=str(tmp_path))
        cold = sweep(
            workloads=("DE",),
            trace_names=("RF Cart",),
            settings=settings,
            backend="cached:remote:serial",
        )
        assert cold.cache_stats.misses == len(cold.results)
        warm = sweep(
            workloads=("DE",),
            trace_names=("RF Cart",),
            settings=settings,
            backend="cached:remote:serial",
        )
        assert warm.cache_stats.misses == 0
        assert warm.cache_stats.hits == len(warm.results)
        for reference, candidate in zip(cold.results, warm.results):
            assert_results_equivalent(reference, candidate)


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------


class TestCli:
    def test_worker_requires_connect(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            worker_main([])
        assert excinfo.value.code == 2
        assert "--connect" in capsys.readouterr().err

    def test_worker_rejects_malformed_address(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            worker_main(["--connect", "nonsense"])
        assert excinfo.value.code == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_worker_subcommand_routes_through_main_cli(self, capsys):
        from repro.experiments.cli import main as cli_main

        with pytest.raises(SystemExit) as excinfo:
            cli_main(["worker"])
        assert excinfo.value.code == 2
        assert "react-repro worker" in capsys.readouterr().err

    def test_worker_command_matches_cli_contract(self):
        command = worker_command(("10.0.0.5", 9123), inner="batch", verbose=True)
        assert "--connect" in command and "10.0.0.5:9123" in command
        assert command[command.index("--inner") + 1] == "batch"
        assert "--verbose" in command

    def test_settings_resolve_remote_worker_defaults(self):
        backend = resolve_backend(
            "remote:serial", ExperimentSettings(quick=True, remote_workers=3)
        )
        assert backend.workers == 3
        listening = resolve_backend(
            "remote:serial",
            ExperimentSettings(quick=True, remote_listen="127.0.0.1:0"),
        )
        assert listening.workers == 0  # external workers expected
        assert listening.listen == ("127.0.0.1", 0)
