"""Solar panel, RF harvester, regulator, and frontend models."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.harvester.frontend import HarvestingFrontend
from repro.harvester.regulator import BoostRegulator, IdealRegulator
from repro.harvester.rf import (
    RfHarvester,
    dbm_to_watts,
    rf_to_dc_efficiency,
    watts_to_dbm,
)
from repro.harvester.solar import FULL_SUN_IRRADIANCE, SolarPanel, diurnal_irradiance
from repro.harvester.trace import PowerTrace


class TestSolarPanel:
    def test_paper_panel_full_sun_power(self):
        """The paper's 5 cm^2, 22 % panel produces ~90-110 mW in full sun."""
        panel = SolarPanel(area_cm2=5.0, efficiency=0.22, fill_factor=1.0)
        power = panel.power_from_irradiance(FULL_SUN_IRRADIANCE)
        assert power == pytest.approx(0.11, rel=0.01)

    def test_power_scales_linearly_with_irradiance(self):
        panel = SolarPanel()
        assert panel.power_from_irradiance(500.0) == pytest.approx(
            panel.power_from_irradiance(1000.0) / 2.0
        )

    def test_negative_irradiance_rejected(self):
        with pytest.raises(ValueError):
            SolarPanel().power_from_irradiance(-1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SolarPanel(area_cm2=0.0)
        with pytest.raises(ConfigurationError):
            SolarPanel(efficiency=1.5)

    def test_trace_from_irradiance(self):
        panel = SolarPanel()
        trace = panel.trace_from_irradiance(
            np.array([0.0, 100.0, 200.0]), sample_period=60.0
        )
        assert isinstance(trace, PowerTrace)
        assert trace.powers[0] == 0.0
        assert trace.powers[2] == pytest.approx(2 * trace.powers[1])

    def test_diurnal_irradiance_dark_at_night(self):
        irradiance = diurnal_irradiance(duration=24 * 3600.0, sample_period=600.0)
        assert irradiance.min() == 0.0
        assert irradiance.max() > 0.0

    def test_diurnal_irradiance_validation(self):
        with pytest.raises(ValueError):
            diurnal_irradiance(duration=0.0)

    @pytest.mark.parametrize("samples", [1, 2, 3, 7])
    def test_diurnal_irradiance_short_timelines_keep_their_shape(self, samples):
        """Timelines shorter than the cloud-smoothing window (even shorter
        than its 3-sample floor) must come back sample for sample:
        np.convolve's "same" mode returns the *kernel's* length when the
        kernel is the longer operand."""
        irradiance = diurnal_irradiance(
            duration=samples * 5.0, sample_period=5.0, sunrise=0.0, sunset=600.0
        )
        assert irradiance.shape == (samples,)
        assert (irradiance >= 0.0).all()


class TestRfHarvester:
    def test_dbm_conversions_round_trip(self):
        assert watts_to_dbm(dbm_to_watts(7.0)) == pytest.approx(7.0)
        assert watts_to_dbm(0.0) == -np.inf

    def test_efficiency_is_zero_below_sensitivity(self):
        assert rf_to_dc_efficiency(dbm_to_watts(-20.0)) == 0.0

    def test_efficiency_peaks_near_ten_dbm(self):
        assert rf_to_dc_efficiency(dbm_to_watts(10.0)) == pytest.approx(0.55, abs=0.02)

    def test_received_power_follows_inverse_square(self):
        harvester = RfHarvester()
        near = harvester.received_rf_power(1.0)
        far = harvester.received_rf_power(2.0)
        assert near / far == pytest.approx(4.0)

    def test_harvested_power_is_below_received(self):
        harvester = RfHarvester()
        assert harvester.harvested_power(2.0) < harvester.received_rf_power(2.0)

    def test_obstruction_attenuates(self):
        harvester = RfHarvester()
        assert harvester.harvested_power(
            2.0, obstruction_db=10.0
        ) < harvester.harvested_power(2.0)

    def test_distance_validation(self):
        with pytest.raises(ValueError):
            RfHarvester().received_rf_power(0.0)

    def test_trace_from_distances(self):
        harvester = RfHarvester()
        trace = harvester.trace_from_distances(np.array([1.0, 2.0, 4.0]))
        assert trace.powers[0] > trace.powers[1] > trace.powers[2]


class TestRegulators:
    def test_ideal_regulator_is_lossless(self):
        regulator = IdealRegulator()
        assert regulator.delivered_power(1e-3, 2.0) == pytest.approx(1e-3)

    def test_boost_regulator_efficiency_rises_with_power(self):
        regulator = BoostRegulator()
        assert regulator.efficiency(10e-3, 3.0) > regulator.efficiency(50e-6, 3.0)

    def test_boost_regulator_cold_start_penalty(self):
        regulator = BoostRegulator()
        assert regulator.efficiency(1e-3, 1.0) <= regulator.cold_start_efficiency

    def test_boost_regulator_zero_below_quiescent(self):
        regulator = BoostRegulator(quiescent_power=1e-6)
        assert regulator.delivered_power(0.5e-6, 3.0) == 0.0

    def test_boost_validation(self):
        with pytest.raises(ConfigurationError):
            BoostRegulator(peak_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            BoostRegulator(half_efficiency_power=0.0)


class TestFrontend:
    def test_step_accumulates_ledger(self, steady_trace):
        frontend = HarvestingFrontend(steady_trace)
        energy = frontend.step(0.0, 1.0, buffer_voltage=2.0)
        assert energy == pytest.approx(5e-3)
        assert frontend.raw_energy_offered == pytest.approx(5e-3)
        assert frontend.conversion_efficiency == pytest.approx(1.0)

    def test_step_with_boost_regulator_loses_energy(self, steady_trace):
        frontend = HarvestingFrontend(steady_trace, regulator=BoostRegulator())
        energy = frontend.step(0.0, 1.0, buffer_voltage=3.0)
        assert energy < 5e-3
        assert frontend.conversion_efficiency < 1.0

    def test_reset_clears_ledger(self, steady_trace):
        frontend = HarvestingFrontend(steady_trace)
        frontend.step(0.0, 1.0, 2.0)
        frontend.reset()
        assert frontend.raw_energy_offered == 0.0

    def test_step_rejects_nonpositive_dt(self, steady_trace):
        frontend = HarvestingFrontend(steady_trace)
        with pytest.raises(ValueError):
            frontend.step(0.0, 0.0, 2.0)

    def test_power_after_trace_end_is_zero(self, steady_trace):
        frontend = HarvestingFrontend(steady_trace)
        assert frontend.raw_power(steady_trace.duration + 10.0) == 0.0
