"""Static buffer baseline and the related-work extensions (Capybara, Dewdrop)."""

import pytest

from repro.buffers.capybara import CapybaraBuffer
from repro.buffers.dewdrop import DewdropBuffer
from repro.buffers.static import StaticBuffer
from repro.exceptions import ConfigurationError
from repro.units import capacitor_energy, microfarads, millifarads


class TestStaticBuffer:
    def test_harvest_then_draw_round_trip(self):
        buffer = StaticBuffer(millifarads(1.0))
        stored = buffer.harvest(1e-3, dt=1.0)
        assert stored == pytest.approx(1e-3)
        delivered = buffer.draw(current=1e-3, dt=0.5)
        assert delivered > 0.0
        assert buffer.ledger.delivered == pytest.approx(delivered)

    def test_clipping_recorded(self):
        buffer = StaticBuffer(microfarads(770.0))
        buffer.harvest(1.0, dt=1.0)  # far beyond capacity
        assert buffer.output_voltage == pytest.approx(3.6)
        assert buffer.ledger.clipped > 0.0
        assert buffer.ledger.capture_efficiency < 0.02

    def test_leakage_applied_in_housekeeping(self):
        buffer = StaticBuffer(millifarads(10.0))
        buffer.harvest(0.05, dt=1.0)
        before = buffer.stored_energy
        buffer.housekeeping(time=0.0, dt=100.0, system_on=False)
        assert buffer.stored_energy < before
        assert buffer.ledger.leaked > 0.0

    def test_usable_energy_excludes_below_brownout(self):
        buffer = StaticBuffer(millifarads(1.0), brownout_voltage=1.8)
        buffer.harvest(capacitor_energy(1e-3, 3.3), dt=1.0)
        expected = capacitor_energy(1e-3, 3.3) - capacitor_energy(1e-3, 1.8)
        assert buffer.usable_energy() == pytest.approx(expected, rel=1e-6)

    def test_does_not_support_longevity(self):
        assert StaticBuffer(millifarads(1.0)).supports_longevity is False

    def test_can_reach_voltage(self):
        buffer = StaticBuffer(millifarads(1.0))
        assert not buffer.can_reach_voltage(3.3)
        buffer.harvest(capacitor_energy(1e-3, 3.4), dt=1.0)
        assert buffer.can_reach_voltage(3.3)

    def test_reset(self):
        buffer = StaticBuffer(millifarads(1.0))
        buffer.harvest(1e-3, dt=1.0)
        buffer.reset()
        assert buffer.stored_energy == 0.0
        assert buffer.ledger.offered == 0.0

    def test_snapshot_keys(self):
        snapshot = StaticBuffer(millifarads(1.0)).snapshot()
        assert set(snapshot) >= {"voltage", "stored_energy", "capacitance"}

    def test_default_name_from_capacitance(self):
        assert StaticBuffer(microfarads(770.0)).name == "770 uF"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StaticBuffer(0.0)
        with pytest.raises(ConfigurationError):
            StaticBuffer(millifarads(1.0), max_voltage=1.0, brownout_voltage=1.8)


class TestCapybaraBuffer:
    def test_surplus_spills_into_task_capacitor(self):
        buffer = CapybaraBuffer(
            base_capacitance=microfarads(770.0), task_capacitance=millifarads(10.0)
        )
        buffer.harvest(0.02, dt=1.0)  # overfills the base capacitor
        assert buffer.snapshot()["task_voltage"] > 0.0
        assert buffer.stored_energy > capacitor_energy(770e-6, 3.6) * 0.99

    def test_longevity_dump_transfers_task_energy(self):
        buffer = CapybaraBuffer()
        buffer.harvest(0.05, dt=1.0)
        buffer.draw(current=5e-3, dt=100.0)  # drain the base capacitor
        buffer.request_longevity(1e-3)
        base_before = buffer.base.voltage
        buffer.housekeeping(time=0.0, dt=0.1, system_on=True)
        assert buffer.base.voltage > base_before
        assert buffer.ledger.switching_loss >= 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CapybaraBuffer(max_voltage=1.0, brownout_voltage=1.8)


class TestDewdropBuffer:
    def test_required_voltage_grows_with_task_energy(self):
        buffer = DewdropBuffer(millifarads(2.0))
        small = buffer.required_voltage(1e-4)
        large = buffer.required_voltage(5e-3)
        assert large > small
        assert small == pytest.approx(buffer.minimum_enable_voltage)
        assert large <= buffer.max_voltage

    def test_longevity_satisfied_tracks_required_voltage(self):
        buffer = DewdropBuffer(millifarads(10.0))
        buffer.request_longevity(2e-3)
        assert not buffer.longevity_satisfied()
        buffer.harvest(0.06, dt=1.0)
        assert buffer.longevity_satisfied()

    def test_no_request_is_always_satisfied(self):
        assert DewdropBuffer(millifarads(1.0)).longevity_satisfied()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DewdropBuffer(millifarads(1.0), minimum_enable_voltage=1.0)

    def test_negative_task_energy_rejected(self):
        with pytest.raises(ValueError):
            DewdropBuffer(millifarads(1.0)).required_voltage(-1.0)
