"""Unit-conversion and capacitor-math helpers."""


import pytest
from hypothesis import given, strategies as st

from repro import units


def test_prefix_conversions_round_trip():
    assert units.microfarads(770.0) == pytest.approx(770e-6)
    assert units.millifarads(10.0) == pytest.approx(10e-3)
    assert units.milliamps(1.5) == pytest.approx(1.5e-3)
    assert units.microamps(28.0) == pytest.approx(28e-6)
    assert units.milliwatts(5.0) == pytest.approx(5e-3)
    assert units.microwatts(68.0) == pytest.approx(68e-6)
    assert units.millijoules(2.9) == pytest.approx(2.9e-3)


def test_reporting_conversions_invert_input_conversions():
    assert units.to_millijoules(units.millijoules(3.3)) == pytest.approx(3.3)
    assert units.to_milliwatts(units.milliwatts(0.5)) == pytest.approx(0.5)


def test_capacitor_energy_matches_closed_form():
    assert units.capacitor_energy(1e-3, 3.0) == pytest.approx(0.5 * 1e-3 * 9.0)


def test_capacitor_energy_zero_voltage_is_zero():
    assert units.capacitor_energy(1e-3, 0.0) == 0.0


def test_capacitor_voltage_and_charge_are_inverse():
    charge = units.capacitor_charge(2e-3, 3.3)
    assert units.capacitor_voltage(2e-3, charge) == pytest.approx(3.3)


def test_capacitor_voltage_rejects_nonpositive_capacitance():
    with pytest.raises(ValueError):
        units.capacitor_voltage(0.0, 1.0)


def test_usable_energy_between_voltage_levels():
    value = units.usable_energy(770e-6, 3.3, 1.8)
    assert value == pytest.approx(0.5 * 770e-6 * (3.3**2 - 1.8**2))


def test_usable_energy_rejects_inverted_window():
    with pytest.raises(ValueError):
        units.usable_energy(1e-3, 1.8, 3.3)


@given(
    capacitance=st.floats(1e-6, 1.0),
    voltage=st.floats(0.0, 10.0),
)
def test_energy_is_nonnegative_and_monotone_in_voltage(capacitance, voltage):
    energy = units.capacitor_energy(capacitance, voltage)
    assert energy >= 0.0
    assert units.capacitor_energy(capacitance, voltage + 1.0) >= energy


@given(
    capacitance=st.floats(1e-6, 1.0),
    v_low=st.floats(0.0, 5.0),
    extra=st.floats(0.0, 5.0),
)
def test_usable_energy_decomposes_total_energy(capacitance, v_low, extra):
    v_high = v_low + extra
    usable = units.usable_energy(capacitance, v_high, v_low)
    total_difference = units.capacitor_energy(
        capacitance, v_high
    ) - units.capacitor_energy(capacitance, v_low)
    assert usable == pytest.approx(total_difference, rel=1e-9, abs=1e-12)
