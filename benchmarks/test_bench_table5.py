"""Benchmark for Table 5 — Packet Forwarding packets received and retransmitted."""

from benchmarks.conftest import run_once
from repro.experiments import table5_packet_forwarding


def test_bench_table5_packet_forwarding(benchmark, bench_settings):
    output = run_once(
        benchmark, table5_packet_forwarding.run, bench_settings, verbose=False
    )
    received = output["received"]
    transmitted = output["transmitted"]
    benchmark.extra_info["received"] = received
    benchmark.extra_info["transmitted"] = transmitted

    rx_mean = received["Mean"]
    tx_mean = transmitted["Mean"]

    # Paper: REACT receives and forwards more packets than any static buffer
    # on average, because it is awake when packets arrive and can bank the
    # energy for the retransmission.
    assert rx_mean["REACT"] >= 0.9 * max(
        rx_mean["770 uF"], rx_mean["10 mF"], rx_mean["17 mF"]
    )
    assert tx_mean["REACT"] >= 0.9 * max(
        tx_mean["770 uF"], tx_mean["10 mF"], tx_mean["17 mF"]
    )
    # The reactivity-limited small buffer forwards almost nothing.
    assert tx_mean["770 uF"] < 0.5 * tx_mean["REACT"]
    # Forwarded packets can never exceed received packets for any system.
    for trace_name, row in transmitted.items():
        if trace_name == "Mean":
            continue
        for buffer_name, tx_count in row.items():
            assert tx_count <= received[trace_name][buffer_name] + 1e-9
