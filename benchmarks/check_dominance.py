#!/usr/bin/env python
"""Benchmark dominance-regression gate for the nightly CI job.

The sweep benchmarks assert absolute dominance themselves (batch >= 1.0x
serial lives in ``test_bench_sweep.py``), but an absolute floor cannot
see a *relative* slide — 1.5x decaying to 1.05x over a month of commits
still passes 1.0.  This gate closes that hole: the committed
``benchmarks/BENCH_sweep.json`` is the floor.  CI snapshots the committed
file before the suite rewrites it in the tree, then compares every gated
speedup ratio in the fresh results against ``margin`` times its committed
value and exits non-zero on any regression, so the nightly job fails
instead of silently uploading a slower artifact.

Usage::

    python benchmarks/check_dominance.py committed.json fresh.json [--margin 0.85]

The default margin absorbs shared-runner noise; ratios are wall-clock
quotients of two runs on the same machine, so they are far steadier than
the raw seconds, but not exact.  A key missing from the committed file is
not gated (no floor recorded yet); a gated key missing from the fresh
results is a failure (the benchmark that produced it disappeared).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

#: (variant, key) speedup ratios gated against the committed floor.  Each
#: is a batch-vs-serial (or skip-vs-step) dominance claim the refactor
#: history fought for; add a pair here when a new sweep variant lands.
#: Deliberately absent: the ``remote_sweep`` ratios
#: (``remote_speedup_vs_serial``) — the transport pays worker startup,
#: pickling, and socket costs that swamp the quick grid on a shared
#: runner, so those numbers are recorded for the trajectory, not gated.
GATED_RATIOS: Tuple[Tuple[str, str], ...] = (
    ("batched_capacitance_sweep", "batched_speedup_vs_serial"),
    ("batched_capacitance_sweep", "batch_segment_skip_speedup"),
    ("morphy_batched_sweep", "batched_speedup_vs_serial"),
    ("react_batched_sweep", "batched_speedup_vs_serial"),
    ("grid_sweep", "fast_path_speedup"),
    ("mixed_grid_react_heavy", "fast_path_speedup"),
)


def check(committed: dict, fresh: dict, margin: float) -> List[str]:
    """Return one human-readable line per regression (empty = gate passes)."""
    failures: List[str] = []
    for variant, key in GATED_RATIOS:
        floor_base = committed.get(variant, {}).get(key)
        if floor_base is None:
            continue
        floor = margin * floor_base
        measured = fresh.get(variant, {}).get(key)
        if measured is None:
            failures.append(
                f"{variant}.{key}: committed floor {floor_base:.3f} but the "
                f"fresh results no longer record this ratio"
            )
        elif measured < floor:
            failures.append(
                f"{variant}.{key}: {measured:.3f} < {floor:.3f} "
                f"(= {margin} * committed {floor_base:.3f})"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("committed", help="snapshot of the committed BENCH_sweep.json")
    parser.add_argument("fresh", help="BENCH_sweep.json rewritten by the benchmark run")
    parser.add_argument(
        "--margin",
        type=float,
        default=0.85,
        help="noise allowance: fail when fresh < margin * committed (default 0.85)",
    )
    args = parser.parse_args(argv)
    with open(args.committed) as handle:
        committed = json.load(handle)
    with open(args.fresh) as handle:
        fresh = json.load(handle)
    failures = check(committed, fresh, args.margin)
    for variant, key in GATED_RATIOS:
        base = committed.get(variant, {}).get(key)
        measured = fresh.get(variant, {}).get(key)
        if base is not None and measured is not None and measured >= args.margin * base:
            print(f"ok   {variant}.{key}: {measured:.3f} >= {args.margin} * {base:.3f}")
    for line in failures:
        print(f"FAIL {line}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
