"""Benchmark for Table 2 — DE / SC / RT work completed across traces and buffers.

Regenerates the full Table 2 grid in quick fidelity and checks the
relationships the paper's text calls out, rather than absolute counts.
"""


from benchmarks.conftest import run_once
from repro.experiments import table2_benchmarks


def test_bench_table2_full_grid(benchmark, bench_settings):
    output = run_once(benchmark, table2_benchmarks.run, bench_settings, verbose=False)
    matrices = output["matrices"]
    benchmark.extra_info["matrices"] = {
        workload: {trace: row for trace, row in matrix.items()}
        for workload, matrix in matrices.items()
    }

    # The oversized 17 mF buffer never starts on the weakest RF trace, so it
    # completes no work there (the "-"/0 entries of the paper's table).
    for workload in ("DE", "SC"):
        assert matrices[workload]["RF Obstruction"]["17 mF"] == 0.0

    # REACT completes at least roughly as much work as every static buffer on
    # the volatile RF Mobile trace for the throughput-style benchmarks.
    for workload in ("DE", "SC"):
        react = matrices[workload]["RF Mobile"]["REACT"]
        for static_name in ("770 uF", "10 mF", "17 mF"):
            assert react >= 0.9 * matrices[workload]["RF Mobile"][static_name]

    # The reactivity-limited 770 uF buffer collapses on the longevity-bound
    # RT benchmark relative to the high-capacity designs.
    rt_mean = matrices["RT"]["Mean"]
    assert rt_mean["770 uF"] < 0.7 * rt_mean["REACT"]

    # REACT's mean performance leads every static buffer on SC.
    sc_mean = matrices["SC"]["Mean"]
    assert sc_mean["REACT"] >= max(
        sc_mean["770 uF"], sc_mean["10 mF"], sc_mean["17 mF"]
    )
