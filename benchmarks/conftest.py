"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures through
the same experiment modules the CLI uses, in *quick* fidelity (truncated
solar traces, coarser timestep) so the whole suite completes in minutes.
Full-fidelity regeneration is available via ``react-repro <artifact>``.

pytest-benchmark conventions used here:

* each artifact is produced exactly once per benchmark (``rounds=1``) —
  the measured quantity is the cost of regenerating the artifact, and the
  artifact itself is attached to ``benchmark.extra_info`` so the numbers
  can be inspected in the saved benchmark JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import pytest

from repro.experiments.runner import ExperimentSettings


#: Fidelity used by the benchmark suite.
BENCH_SETTINGS = ExperimentSettings(quick=True, quick_trace_cap=300.0)

#: Stable on-repo path for the sweep-throughput trajectory.  The nightly CI
#: benchmark job uploads the full pytest-benchmark JSON as an artifact, but
#: artifacts expire; the headline sweep numbers are additionally merged
#: into this file so the perf trajectory lives (and diffs) in the tree.
BENCH_SWEEP_JSON = Path(__file__).resolve().parent / "BENCH_sweep.json"


def record_sweep_metrics(variant: str, info: Dict[str, object]) -> None:
    """Merge ``info`` under ``variant`` into :data:`BENCH_SWEEP_JSON`.

    Each sweep benchmark records its ``extra_info`` here as well, keyed by
    variant name, so one stable file accumulates every variant of the run.
    A corrupt or missing file is simply rewritten.
    """
    data: Dict[str, object] = {}
    if BENCH_SWEEP_JSON.exists():
        try:
            loaded = json.loads(BENCH_SWEEP_JSON.read_text())
            if isinstance(loaded, dict):
                data = loaded
        except ValueError:
            pass
    data[variant] = dict(info)
    BENCH_SWEEP_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """Quick-fidelity settings shared by every benchmark."""
    return BENCH_SETTINGS


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
