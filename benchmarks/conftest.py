"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures through
the same experiment modules the CLI uses, in *quick* fidelity (truncated
solar traces, coarser timestep) so the whole suite completes in minutes.
Full-fidelity regeneration is available via ``react-repro <artifact>``.

pytest-benchmark conventions used here:

* each artifact is produced exactly once per benchmark (``rounds=1``) —
  the measured quantity is the cost of regenerating the artifact, and the
  artifact itself is attached to ``benchmark.extra_info`` so the numbers
  can be inspected in the saved benchmark JSON.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentSettings


#: Fidelity used by the benchmark suite.
BENCH_SETTINGS = ExperimentSettings(quick=True, quick_trace_cap=300.0)


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """Quick-fidelity settings shared by every benchmark."""
    return BENCH_SETTINGS


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
