"""Benchmark for Table 4 — system latency across traces and buffers."""

from benchmarks.conftest import run_once
from repro.experiments import table4_latency


def test_bench_table4_latency(benchmark, bench_settings):
    output = run_once(benchmark, table4_latency.run, bench_settings, verbose=False)
    matrix = output["matrix"]
    benchmark.extra_info["matrix"] = matrix
    means = matrix["Mean"]

    # Paper: REACT matches the smallest static buffer's latency ...
    assert means["REACT"] <= 1.25 * means["770 uF"]
    # ... and is several times faster than the equal-capacity static buffer
    # (7.7x in the paper; the exact factor depends on the trace realisations).
    assert output["ratios"]["17 mF / REACT"] > 3.0
    # Morphy's smaller minimum configuration makes it at least as fast as REACT.
    assert means["Morphy"] <= means["REACT"] + 1.0
    # The 17 mF buffer fails to start on at least one weak trace ("-" entries).
    assert any(row.get("17 mF") == float("inf") for row in matrix.values())
