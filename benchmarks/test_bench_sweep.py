"""Benchmark for the evaluation-sweep machinery itself.

Times the quick-mode grid sweep across the execution backends — step-by-step
serial (the seed's execution model), fast-path serial, a 4-worker process
pool, the vectorized lockstep batch (static and Morphy kernels), and the
composed ``pool+batch`` backend — and records the throughput ratios both in
the pytest-benchmark JSON and in the stable, on-repo
``benchmarks/BENCH_sweep.json`` (via
:func:`benchmarks.conftest.record_sweep_metrics`) so the perf trajectory
tracks sweep speed alongside the per-artifact numbers.  Grids are driven
through the same public :func:`repro.experiments.sweep` surface the
table/figure modules use.

Correctness assertions, not timing assertions, gate the tests: every
backend must return the same results in the same order as the serial
backend, and the fast-path engine must agree with the step-by-step engine
on the headline counters.  (Timing ratios depend on the host's core count —
on a single-core CI runner the worker pools cannot win — so all pool
ratios are recorded, not asserted; the single-core Morphy batch speedup
and the mixed-grid fast-path speedup carry the positive assertions, and
the static batch sweep keeps a pathological-regression floor.)
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from benchmarks.conftest import record_sweep_metrics, run_once
from repro.buffers.morphy import MorphyBuffer
from repro.buffers.react_adapter import ReactBuffer
from repro.buffers.static import StaticBuffer
from repro.experiments.backends import (
    BatchBackend,
    PoolBatchBackend,
    ProcessPoolBackend,
)
from repro.experiments.remote import RemoteBackend
from repro.experiments.runner import ExperimentRunner
from repro.experiments import sweep
from repro.units import milliamps, millifarads

#: A representative slice of the grid: every buffer and every trace, two
#: workloads (one throughput-style, one reactivity-style).  Small enough to
#: run three times inside the benchmark budget.
SWEEP_WORKLOADS = ("DE", "SC")

#: The batched engine's target shape: many trace-sharing cells.  A dense
#: static-capacitance sweep (the Figure-1-style design-space exploration)
#: packs every size into one lockstep batch per trace.
BATCH_SWEEP_SIZES_MF = np.geomspace(0.8, 300.0, 64)
BATCH_SWEEP_TRACES = ("RF Cart", "Solar Campus")


def capacitance_sweep_buffers():
    """Module-level factory: one static buffer per swept capacitance."""
    return [
        StaticBuffer(millifarads(float(size)), name=f"{size:.2f} mF")
        for size in BATCH_SWEEP_SIZES_MF
    ]


#: The Morphy sweep: the heaviest cells of every grid.  All variants share
#: the default eight-capacitor topology (one lockstep kernel) and sweep the
#: unit capacitance, the Figure-1-style exploration for the reconfigurable
#: array.  Morphy cells cost several times a static cell, so the sweep is
#: narrower than the static one but still packs 48 lanes into each trace's
#: kernel.
MORPHY_SWEEP_SIZES_MF = np.geomspace(0.5, 4.0, 24)
MORPHY_SWEEP_TRACES = ("RF Cart",)


def morphy_sweep_buffers():
    """Module-level factory: one Morphy array per swept unit capacitance."""
    return [
        MorphyBuffer(
            unit_capacitance=millifarads(float(size)), name=f"Morphy {size:.3f} mF"
        )
        for size in MORPHY_SWEEP_SIZES_MF
    ]


#: The REACT sweep: polling-overhead sensitivity of the reconfigurable
#: fabric.  Every lane shares the Table-1 ``ReactConfig`` (one batch key,
#: so the batch backend packs the whole trace column into a single
#: :class:`~repro.buffers.react_batch.ReactBatchKernel`) and sweeps the
#: MCU active-current hint the 10 Hz polling-overhead model charges —
#: per-lane kernel state, not part of the batch key.  Two alignment-heavy
#: workloads keep the lanes in lockstep so the full-batch on-phase replay
#: engages (REACT's ``fast_forward_needs_full_batch`` economics).
REACT_SWEEP_HINTS_MA = np.linspace(0.5, 3.0, 40)
REACT_SWEEP_TRACES = ("RF Cart",)


def react_sweep_buffers():
    """Module-level factory: one REACT adapter per swept polling hint."""
    return [
        ReactBuffer(
            name=f"REACT {hint:.3f} mA",
            active_current_hint=milliamps(float(hint)),
        )
        for hint in REACT_SWEEP_HINTS_MA
    ]


def test_bench_grid_sweep_serial_vs_parallel(benchmark, bench_settings):
    serial_runner = ExperimentRunner(bench_settings)
    parallel_runner = ExperimentRunner(
        bench_settings, backend=ProcessPoolBackend(workers=4)
    )
    step_by_step_runner = ExperimentRunner(
        dataclasses.replace(bench_settings, fast_forward=False)
    )

    started = time.perf_counter()
    step_by_step = step_by_step_runner.run_grid(workloads=SWEEP_WORKLOADS)
    step_by_step_seconds = time.perf_counter() - started

    started = time.perf_counter()
    serial = run_once(benchmark, serial_runner.run_grid, workloads=SWEEP_WORKLOADS)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = parallel_runner.run_grid(workloads=SWEEP_WORKLOADS)
    parallel_seconds = time.perf_counter() - started

    # The parallel runner must reproduce the serial grid exactly, in order.
    assert len(parallel) == len(serial)
    for serial_result, parallel_result in zip(serial, parallel):
        assert parallel_result.trace_name == serial_result.trace_name
        assert parallel_result.buffer_name == serial_result.buffer_name
        assert parallel_result.workload_name == serial_result.workload_name
        assert parallel_result.work_units == serial_result.work_units
        assert parallel_result.enable_count == serial_result.enable_count
        assert parallel_result.brownout_count == serial_result.brownout_count
        assert parallel_result.latency == serial_result.latency

    # The fast-path engine must agree with step-by-step execution.
    for reference, fast in zip(step_by_step, serial):
        assert fast.work_units == reference.work_units
        assert fast.enable_count == reference.enable_count
        assert fast.brownout_count == reference.brownout_count

    benchmark.extra_info["grid_cells"] = len(serial)
    benchmark.extra_info["step_by_step_serial_seconds"] = round(step_by_step_seconds, 3)
    benchmark.extra_info["fast_path_serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["parallel_workers4_seconds"] = round(parallel_seconds, 3)
    benchmark.extra_info["fast_path_speedup"] = round(
        step_by_step_seconds / serial_seconds, 3
    )
    benchmark.extra_info["parallel_speedup_vs_fast_serial"] = round(
        serial_seconds / parallel_seconds, 3
    )
    record_sweep_metrics("grid_sweep", benchmark.extra_info)


#: The mixed-grid shape that motivated on-phase fast forwarding: every
#: paper buffer (the REACT and Morphy cells dominate wall-clock) under the
#: two longevity-heavy workloads, whose deep-sleep wait-for-energy
#: stretches are exactly what the workload quiescence protocol skips.
MIXED_GRID_WORKLOADS = ("RT", "PF")
MIXED_GRID_TRACES = ("RF Cart", "Solar Campus")


def test_bench_mixed_grid_react_heavy_sweep(benchmark, bench_settings):
    """Serial throughput on the REACT-heavy mixed grid.

    This is the committed perf trajectory for the on-phase fast path: the
    full buffer column (REACT cells run scalar and dominate) under RT/PF,
    timed with every fast path enabled against the step-by-step engine.
    Correctness gates the test (exact counters against the oracle); the
    speedup is asserted at the 1.3× floor the quiescence protocol is
    expected to clear on this shape (locally ~1.6×).
    """
    fast_runner = ExperimentRunner(bench_settings)
    step_runner = ExperimentRunner(
        dataclasses.replace(bench_settings, fast_forward=False)
    )

    started = time.perf_counter()
    step_by_step = step_runner.run_grid(
        workloads=MIXED_GRID_WORKLOADS, trace_names=MIXED_GRID_TRACES
    )
    step_by_step_seconds = time.perf_counter() - started

    started = time.perf_counter()
    fast = run_once(
        benchmark,
        fast_runner.run_grid,
        workloads=MIXED_GRID_WORKLOADS,
        trace_names=MIXED_GRID_TRACES,
    )
    fast_seconds = time.perf_counter() - started

    assert len(fast) == len(step_by_step)
    for reference, candidate in zip(step_by_step, fast):
        assert candidate.trace_name == reference.trace_name
        assert candidate.buffer_name == reference.buffer_name
        assert candidate.work_units == reference.work_units
        assert candidate.enable_count == reference.enable_count
        assert candidate.brownout_count == reference.brownout_count
        assert candidate.latency == reference.latency
        assert candidate.on_time == reference.on_time
        assert candidate.active_time == reference.active_time

    speedup = step_by_step_seconds / fast_seconds
    benchmark.extra_info["grid_cells"] = len(fast)
    benchmark.extra_info["step_by_step_serial_seconds"] = round(
        step_by_step_seconds, 3
    )
    benchmark.extra_info["serial_seconds"] = round(fast_seconds, 3)
    benchmark.extra_info["fast_path_speedup"] = round(speedup, 3)
    record_sweep_metrics("mixed_grid_react_heavy", benchmark.extra_info)
    assert speedup >= 1.3, (
        f"on-phase fast forwarding should clear 1.3x on the REACT-heavy "
        f"mixed grid, got {speedup:.2f}x"
    )


def _assert_sweep_matches_serial(serial, candidate):
    """Ordered counter-level equality between two sweeps of one grid."""
    assert len(candidate) == len(serial)
    for serial_result, candidate_result in zip(serial, candidate):
        assert candidate_result.trace_name == serial_result.trace_name
        assert candidate_result.buffer_name == serial_result.buffer_name
        assert candidate_result.work_units == serial_result.work_units
        assert candidate_result.enable_count == serial_result.enable_count
        assert candidate_result.brownout_count == serial_result.brownout_count
        assert candidate_result.latency == serial_result.latency
        assert candidate_result.on_time == serial_result.on_time


def test_bench_batched_capacitance_sweep(benchmark, bench_settings):
    """Batched lockstep sweep vs the serial engine on trace-sharing cells.

    Every (size × workload) cell of a capacitance sweep shares its trace, so
    the batch backend packs each trace's 128 cells into one vectorized
    simulation, and the ``pool+batch`` backend splits those lanes into
    per-worker shards that batch inside the pool.  Correctness gates the
    test — both grids must agree with the serial grid exactly on every
    counter.

    On throughput this shape is the batch engine's hardest case — serial
    skips whole quiescent on-segments of a static lane through an inlined
    float loop — but since the shared segment planner
    (:mod:`repro.sim.segments`) taught the batch engine the same trick
    (per-lane whole-segment replay through
    :meth:`~repro.buffers.static.StaticBatchKernel.fast_forward`, with the
    lockstep loop skipped outright when every lane fast-forwards), batch
    dominates serial here too.  That dominance is the assertion: the
    batched sweep must run at least as fast as the serial sweep
    (``speedup >= 1.0``).  ``batch_segment_skip_speedup`` records what the
    segment replay itself buys (batched with fast-forwarding disabled vs
    enabled), and the ``pool+batch`` throughput is recorded alongside
    (pool ratios depend on the runner's core count, so it carries no
    assertion).
    """
    serial_runner = ExperimentRunner(
        bench_settings, buffer_factory=capacitance_sweep_buffers
    )
    batch_runner = ExperimentRunner(
        bench_settings,
        buffer_factory=capacitance_sweep_buffers,
        backend=BatchBackend(),
    )

    started = time.perf_counter()
    serial = serial_runner.run_grid(
        workloads=SWEEP_WORKLOADS, trace_names=BATCH_SWEEP_TRACES
    )
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched = run_once(
        benchmark,
        batch_runner.run_grid,
        workloads=SWEEP_WORKLOADS,
        trace_names=BATCH_SWEEP_TRACES,
    )
    batched_seconds = time.perf_counter() - started

    started = time.perf_counter()
    pool_batch = sweep(
        workloads=SWEEP_WORKLOADS,
        trace_names=BATCH_SWEEP_TRACES,
        settings=bench_settings,
        buffer_factory=capacitance_sweep_buffers,
        backend=PoolBatchBackend(workers=4),
    ).results
    pool_batch_seconds = time.perf_counter() - started

    step_batch_runner = ExperimentRunner(
        dataclasses.replace(bench_settings, fast_forward=False),
        buffer_factory=capacitance_sweep_buffers,
        backend=BatchBackend(),
    )
    started = time.perf_counter()
    step_batched = step_batch_runner.run_grid(
        workloads=SWEEP_WORKLOADS, trace_names=BATCH_SWEEP_TRACES
    )
    step_batched_seconds = time.perf_counter() - started

    _assert_sweep_matches_serial(serial, batched)
    _assert_sweep_matches_serial(serial, pool_batch)
    _assert_sweep_matches_serial(serial, step_batched)

    speedup = serial_seconds / batched_seconds
    benchmark.extra_info["grid_cells"] = len(serial)
    benchmark.extra_info["lanes_per_trace"] = len(BATCH_SWEEP_SIZES_MF) * len(
        SWEEP_WORKLOADS
    )
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["batched_seconds"] = round(batched_seconds, 3)
    benchmark.extra_info["batched_speedup_vs_serial"] = round(speedup, 3)
    benchmark.extra_info["pool_batch_workers4_seconds"] = round(pool_batch_seconds, 3)
    benchmark.extra_info["pool_batch_speedup_vs_serial"] = round(
        serial_seconds / pool_batch_seconds, 3
    )
    benchmark.extra_info["pool_batch_speedup_vs_batched"] = round(
        batched_seconds / pool_batch_seconds, 3
    )
    benchmark.extra_info["step_batched_seconds"] = round(step_batched_seconds, 3)
    benchmark.extra_info["batch_segment_skip_speedup"] = round(
        step_batched_seconds / batched_seconds, 3
    )
    record_sweep_metrics("batched_capacitance_sweep", benchmark.extra_info)
    assert speedup >= 1.0, (
        f"batched sweep fell behind serial throughput ({speedup:.2f}x); "
        f"batch >= serial dominance is the shared segment planner's claim "
        f"on its hardest (all-static, hint-heavy) shape"
    )


def test_bench_morphy_batched_sweep(benchmark, bench_settings):
    """Batched lockstep sweep of the heaviest grid cells: the Morphy lanes.

    Every (unit-capacitance × workload) Morphy cell of a trace shares one
    :class:`~repro.buffers.morphy_batch.MorphyBatchKernel`, so the batch
    backend packs the trace's 48 lanes into a single vectorized run and the
    ``pool+batch`` backend shards them across workers.  Correctness gates
    the test — both grids must agree with the serial grid exactly on every
    counter — and the single-core batched speedup is recorded and asserted
    at a conservative floor (locally ~2–2.5×; Morphy's per-step scalar
    Python is heavier than a static's, so the lockstep win is on top of an
    already slower baseline).
    """
    serial_runner = ExperimentRunner(
        bench_settings, buffer_factory=morphy_sweep_buffers
    )
    batch_runner = ExperimentRunner(
        bench_settings,
        buffer_factory=morphy_sweep_buffers,
        backend=BatchBackend(),
    )

    started = time.perf_counter()
    serial = serial_runner.run_grid(
        workloads=SWEEP_WORKLOADS, trace_names=MORPHY_SWEEP_TRACES
    )
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched = run_once(
        benchmark,
        batch_runner.run_grid,
        workloads=SWEEP_WORKLOADS,
        trace_names=MORPHY_SWEEP_TRACES,
    )
    batched_seconds = time.perf_counter() - started

    started = time.perf_counter()
    pool_batch = sweep(
        workloads=SWEEP_WORKLOADS,
        trace_names=MORPHY_SWEEP_TRACES,
        settings=bench_settings,
        buffer_factory=morphy_sweep_buffers,
        backend=PoolBatchBackend(workers=4),
    ).results
    pool_batch_seconds = time.perf_counter() - started

    _assert_sweep_matches_serial(serial, batched)
    _assert_sweep_matches_serial(serial, pool_batch)

    speedup = serial_seconds / batched_seconds
    benchmark.extra_info["grid_cells"] = len(serial)
    benchmark.extra_info["lanes_per_trace"] = len(MORPHY_SWEEP_SIZES_MF) * len(
        SWEEP_WORKLOADS
    )
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["batched_seconds"] = round(batched_seconds, 3)
    benchmark.extra_info["batched_speedup_vs_serial"] = round(speedup, 3)
    benchmark.extra_info["pool_batch_workers4_seconds"] = round(pool_batch_seconds, 3)
    benchmark.extra_info["pool_batch_speedup_vs_serial"] = round(
        serial_seconds / pool_batch_seconds, 3
    )
    record_sweep_metrics("morphy_batched_sweep", benchmark.extra_info)
    assert speedup >= 1.4, (
        f"batched Morphy sweep should beat serial throughput, got {speedup:.2f}x"
    )


def test_bench_react_batched_sweep(benchmark, bench_settings):
    """Batched lockstep sweep of the REACT polling-overhead column.

    Every (hint × workload) REACT cell of a trace shares one
    :class:`~repro.buffers.react_batch.ReactBatchKernel` (the swept MCU
    active-current hint is per-lane kernel state, not part of the batch
    key), so the batch backend packs the trace's 80 lanes into a single
    vectorized run and the ``pool+batch`` backend shards them across
    workers.  Correctness gates the test — both grids must agree with the
    serial grid exactly on every counter — and the single-core batched
    speedup is asserted at the 1.3× floor.  REACT's per-step cost is
    round-loop heavy (bank equalization, the harvest argmin scan), so the
    vectorized step costs more dispatches than Morphy's and the lockstep
    win needs wide batches: the 80-lane column clears the floor with
    margin (locally ~1.6–1.9×) where a 20-lane batch would not.
    """
    serial_runner = ExperimentRunner(
        bench_settings, buffer_factory=react_sweep_buffers
    )
    batch_runner = ExperimentRunner(
        bench_settings,
        buffer_factory=react_sweep_buffers,
        backend=BatchBackend(),
    )

    started = time.perf_counter()
    serial = serial_runner.run_grid(
        workloads=SWEEP_WORKLOADS, trace_names=REACT_SWEEP_TRACES
    )
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched = run_once(
        benchmark,
        batch_runner.run_grid,
        workloads=SWEEP_WORKLOADS,
        trace_names=REACT_SWEEP_TRACES,
    )
    batched_seconds = time.perf_counter() - started

    started = time.perf_counter()
    pool_batch = sweep(
        workloads=SWEEP_WORKLOADS,
        trace_names=REACT_SWEEP_TRACES,
        settings=bench_settings,
        buffer_factory=react_sweep_buffers,
        backend=PoolBatchBackend(workers=4),
    ).results
    pool_batch_seconds = time.perf_counter() - started

    _assert_sweep_matches_serial(serial, batched)
    _assert_sweep_matches_serial(serial, pool_batch)

    speedup = serial_seconds / batched_seconds
    benchmark.extra_info["grid_cells"] = len(serial)
    benchmark.extra_info["lanes_per_trace"] = len(REACT_SWEEP_HINTS_MA) * len(
        SWEEP_WORKLOADS
    )
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["batched_seconds"] = round(batched_seconds, 3)
    benchmark.extra_info["batched_speedup_vs_serial"] = round(speedup, 3)
    benchmark.extra_info["pool_batch_workers4_seconds"] = round(pool_batch_seconds, 3)
    benchmark.extra_info["pool_batch_speedup_vs_serial"] = round(
        serial_seconds / pool_batch_seconds, 3
    )
    record_sweep_metrics("react_batched_sweep", benchmark.extra_info)
    assert speedup >= 1.3, (
        f"batched REACT sweep should beat serial throughput, got {speedup:.2f}x"
    )


def test_bench_remote_sweep(benchmark, bench_settings):
    """Distributed sweep throughput: the coordinator/worker transport.

    The same representative grid as ``grid_sweep``, executed by two
    localhost worker processes through ``remote:serial``
    (:mod:`repro.experiments.remote`).  Correctness gates the test — the
    reassembled grid must match the serial grid exactly, in order — while
    both remote ratios are recorded, not asserted: besides the usual
    core-count dependence of any pool-style ratio, the transport pays a
    per-sweep tax the in-process backends don't (worker interpreter
    startup, spec/result pickling, socket round-trips), so on the quick
    grid the speedup can legitimately sit below 1.0 on a loaded runner.
    Neither ratio is in ``check_dominance.py``'s gate for the same reason.
    """
    serial_runner = ExperimentRunner(bench_settings)
    remote_runner = ExperimentRunner(
        bench_settings, backend=RemoteBackend(inner="serial", workers=2)
    )

    started = time.perf_counter()
    serial = serial_runner.run_grid(workloads=SWEEP_WORKLOADS)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    remote = run_once(benchmark, remote_runner.run_grid, workloads=SWEEP_WORKLOADS)
    remote_seconds = time.perf_counter() - started

    _assert_sweep_matches_serial(serial, remote)

    report = remote_runner.backend.last_run_report
    benchmark.extra_info["grid_cells"] = len(serial)
    benchmark.extra_info["shards"] = report.shards_total
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["remote_workers2_seconds"] = round(remote_seconds, 3)
    benchmark.extra_info["remote_speedup_vs_serial"] = round(
        serial_seconds / remote_seconds, 3
    )
    record_sweep_metrics("remote_sweep", benchmark.extra_info)
