"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not artifacts from the paper; they isolate the individual design
decisions REACT's evaluation argues for:

* bank isolation (REACT) versus a fully interconnected network (Morphy),
* charge reclamation (parallel -> series on undervoltage) on versus off,
* bank granularity (many small steps versus one big bank),
* software-directed longevity guarantees on versus off.
"""


from benchmarks.conftest import run_once
from repro.buffers.morphy import MorphyBuffer
from repro.buffers.react_adapter import ReactBuffer
from repro.buffers.static import StaticBuffer
from repro.core.config import BankSpec, ReactConfig
from repro.experiments.runner import ExperimentRunner, make_workload
from repro.units import microfarads, millifarads
from repro.workloads.radio_transmit import RadioTransmit
from repro.workloads.sense_compute import SenseAndCompute


def run_pair(settings, trace_name, buffers, workload_name="SC"):
    """Run the same trace/workload against a list of buffers."""
    runner = ExperimentRunner(settings)
    trace = settings.trace(trace_name)
    results = {}
    for buffer in buffers:
        workload = make_workload(workload_name, trace_name)
        results[buffer.name] = runner.run_single(trace, buffer, workload)
    return results


def test_bench_ablation_isolation(benchmark, bench_settings):
    """Isolated banks (REACT) vs interconnected network (Morphy): switching loss."""
    results = run_once(
        benchmark,
        run_pair,
        bench_settings,
        "RF Cart",
        [ReactBuffer(), MorphyBuffer()],
        "SC",
    )
    react, morphy = results["REACT"], results["Morphy"]
    benchmark.extra_info["switching_loss"] = {
        "REACT": react.buffer_ledger["switching_loss"],
        "Morphy": morphy.buffer_ledger["switching_loss"],
    }
    react_loss_fraction = (
        react.buffer_ledger["switching_loss"] / react.buffer_ledger["offered"]
    )
    morphy_loss_fraction = (
        morphy.buffer_ledger["switching_loss"] / morphy.buffer_ledger["offered"]
    )
    assert react_loss_fraction < morphy_loss_fraction


def test_bench_ablation_reclamation(benchmark, bench_settings):
    """Charge reclamation on vs off: stranded energy after a long deficit."""

    def run_reclamation_ablation():
        from repro.core.config import table1_config

        runner = ExperimentRunner(bench_settings)
        trace = bench_settings.trace("RF Mobile")
        # Reclamation "off": with the low threshold dropped to the brown-out
        # voltage the controller only learns about a deficit at the instant
        # the platform loses power, so the parallel -> series reclamation
        # steps effectively never run.
        with_reclaim = ReactBuffer(config=table1_config(), name="REACT")
        without_reclaim = ReactBuffer(
            config=table1_config(low_threshold=1.81), name="REACT-no-reclaim"
        )
        results = {}
        for buffer in (with_reclaim, without_reclaim):
            results[buffer.name] = runner.run_single(trace, buffer, RadioTransmit())
        return results

    results = run_once(benchmark, run_reclamation_ablation)
    benchmark.extra_info["work_units"] = {
        name: result.work_units for name, result in results.items()
    }
    assert results["REACT"].work_units >= results["REACT-no-reclaim"].work_units


def test_bench_ablation_granularity(benchmark, bench_settings):
    """Bank granularity: the Table 1 fabric vs a single monolithic bank."""

    def run_granularity_ablation():
        from repro.core.config import table1_config

        coarse_config = ReactConfig(
            last_level_capacitance=microfarads(770.0),
            banks=(
                BankSpec(
                    unit_capacitance=millifarads(8.6), count=2, label="monolithic"
                ),
            ),
        )
        return run_pair(
            bench_settings,
            "RF Mobile",
            [
                ReactBuffer(config=table1_config(), name="REACT"),
                ReactBuffer(config=coarse_config, name="REACT-coarse"),
            ],
            "SC",
        )

    results = run_once(benchmark, run_granularity_ablation)
    benchmark.extra_info["work_units"] = {
        name: result.work_units for name, result in results.items()
    }
    fine = results["REACT"]
    coarse = results["REACT-coarse"]
    # Expanding in small steps (Table 1 fabric) avoids the cold-start penalty
    # of connecting one huge bank, so the fine-grained fabric completes at
    # least as much application work.
    assert fine.work_units >= 0.95 * coarse.work_units


def test_bench_ablation_longevity(benchmark, bench_settings):
    """Software-directed longevity guarantees on vs off for the RT benchmark."""

    def run_longevity_ablation():
        runner = ExperimentRunner(bench_settings)
        trace = bench_settings.trace("RF Mobile")
        results = {}
        for label, use_guarantee in (("guarded", True), ("eager", False)):
            result = runner.run_single(
                trace,
                ReactBuffer(name=f"REACT-{label}"),
                RadioTransmit(use_longevity_guarantee=use_guarantee),
            )
            results[label] = result
        return results

    results = run_once(benchmark, run_longevity_ablation)
    benchmark.extra_info["transmissions"] = {
        label: result.work_units for label, result in results.items()
    }
    assert results["guarded"].work_units >= results["eager"].work_units
    assert (
        results["guarded"].workload_metrics["failed_operations"]
        <= results["eager"].workload_metrics["failed_operations"]
    )


def test_bench_single_simulation_throughput(benchmark, bench_settings):
    """Raw simulator throughput: one SC run on a truncated RF trace.

    This is the only benchmark measured over multiple rounds; it tracks the
    cost of the core simulation loop itself rather than a paper artifact.
    """
    runner = ExperimentRunner(bench_settings)
    trace = bench_settings.trace("RF Cart")

    def run_one():
        return runner.run_single(
            trace, StaticBuffer(millifarads(10.0)), SenseAndCompute()
        )

    result = benchmark.pedantic(run_one, rounds=3, iterations=1)
    assert result.work_units > 0.0
