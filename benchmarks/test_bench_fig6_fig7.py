"""Benchmarks for Figure 6 (characterization timelines) and Figure 7 (aggregate)."""

from benchmarks.conftest import run_once
from repro.experiments import fig6_voltage_trace, fig7_normalized


def test_bench_fig6_voltage_timelines(benchmark, bench_settings):
    """Figure 6 — buffer voltage and on-time for SC under RF Mobile."""
    output = run_once(benchmark, fig6_voltage_trace.run, bench_settings, verbose=False)
    rows = {row["buffer"]: row for row in output["rows"]}
    benchmark.extra_info["rows"] = output["rows"]

    # REACT starts as fast as the 770 uF buffer and well before the 10 mF one.
    assert rows["REACT"]["latency_s"] <= 1.3 * rows["770 uF"]["latency_s"]
    assert rows["10 mF"]["latency_s"] > rows["770 uF"]["latency_s"]
    # The 770 uF buffer clips harvested energy (visible as 3.6 V plateaus in
    # the paper's figure); REACT expands instead of clipping.
    assert rows["770 uF"]["clipped_fraction"] >= rows["REACT"]["clipped_fraction"]
    # Every timeline stays within the electrical limits.
    for row in output["rows"]:
        assert row["peak_voltage"] <= 3.6 + 1e-6


def test_bench_fig7_normalized_performance(benchmark, bench_settings):
    """Figure 7 — mean per-benchmark performance normalized to REACT."""
    output = run_once(benchmark, fig7_normalized.run, bench_settings, verbose=False)
    normalized = output["normalized"]
    improvements = output["improvements"]
    benchmark.extra_info["normalized"] = normalized
    benchmark.extra_info["improvements"] = improvements

    overall = normalized["Mean"]
    # REACT is the reference, so its normalized score is 1.0 by construction.
    assert overall["REACT"] == 1.0
    # Paper: REACT improves on every baseline on average (by 19-39 % for the
    # statics and 26 % for Morphy on the paper's testbed; the direction is
    # what this reproduction checks).
    for baseline in ("770 uF", "10 mF", "17 mF", "Morphy"):
        assert overall[baseline] <= 1.05
    assert improvements["770 uF"] > 0.10
    assert improvements["17 mF"] > 0.05
