"""Benchmarks for the analytic artifacts: Table 1, Table 3, §3.3 math, §5.1.

These artifacts are cheap to regenerate; they are benchmarked for
completeness (every table and figure has a harness entry) and their key
numbers are asserted against the paper's closed-form values.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import (
    overhead,
    switching_loss,
    table1_configuration,
    table3_traces,
)


def test_bench_table1_configuration(benchmark, bench_settings):
    """Table 1 — REACT bank configuration and Equation 2 checks."""
    output = run_once(
        benchmark, table1_configuration.run, bench_settings, verbose=False
    )
    benchmark.extra_info["rows"] = output["rows"]
    assert output["config"].maximum_capacitance == pytest.approx(18.03e-3, rel=1e-3)
    assert all(row["satisfies_eq2"] for row in output["sizing_rows"])


def test_bench_table3_trace_statistics(benchmark, bench_settings):
    """Table 3 — power-trace details (duration, mean power, CV)."""
    output = run_once(benchmark, table3_traces.run, bench_settings, verbose=False)
    benchmark.extra_info["rows"] = output["rows"]
    for row in output["rows"]:
        assert row["avg_power_mW"] == pytest.approx(row["paper_avg_power_mW"], rel=1e-3)
        assert row["power_cv_percent"] == pytest.approx(
            row["paper_cv_percent"], rel=0.3
        )


def test_bench_switching_loss_analysis(benchmark, bench_settings):
    """§3.3.1 / §3.3.4 — reconfiguration loss and reclamation gain."""
    output = run_once(benchmark, switching_loss.run, bench_settings, verbose=False)
    benchmark.extra_info["loss_rows"] = output["loss_rows"]
    by_size = {row["array_size"]: row for row in output["loss_rows"]}
    assert by_size[4]["model_loss_fraction"] == pytest.approx(0.25, abs=1e-3)
    assert by_size[8]["model_loss_fraction"] == pytest.approx(0.5625, abs=1e-3)


def test_bench_overhead_characterization(benchmark, bench_settings):
    """§5.1 — REACT software and power overhead."""
    output = run_once(benchmark, overhead.run, bench_settings, verbose=False)
    benchmark.extra_info["rows"] = output["rows"]
    # The hardware overhead should be tens of microwatts, in the paper's range.
    assert 10e-6 < output["total_overhead_power"] < 200e-6
    # Polling should cost only a few percent of throughput on bench power.
    assert abs(output["software_overhead_measured"]) < 0.10
