"""Benchmarks for Figure 1 and the §2.1 characterization numbers."""


from benchmarks.conftest import run_once
from repro.experiments import fig1_static_tradeoff, sec2_characterization


def test_bench_fig1_static_tradeoff(benchmark, bench_settings):
    """Figure 1 — 1 mF vs 300 mF static buffers on a solar pedestrian trace."""
    output = run_once(
        benchmark, fig1_static_tradeoff.run, bench_settings, verbose=False
    )
    rows = {row["buffer"]: row for row in output["rows"]}
    benchmark.extra_info["rows"] = output["rows"]
    # The small buffer charges much sooner and cycles far more often.
    assert rows["1 mF"]["latency_s"] < rows["300 mF"]["latency_s"]
    assert rows["1 mF"]["power_cycles"] > rows["300 mF"]["power_cycles"]
    # The large buffer sustains much longer uninterrupted operation.
    assert rows["300 mF"]["mean_cycle_s"] > 5.0 * rows["1 mF"]["mean_cycle_s"]


def test_bench_sec2_characterization(benchmark, bench_settings):
    """§2.1 — charge-time ratio, spike structure, and night-time duty cycles."""
    output = run_once(
        benchmark, sec2_characterization.run, bench_settings, verbose=False
    )
    benchmark.extra_info["summary"] = {
        "charge_time_ratio": output["charge_time_ratio"],
        "spike_energy_fraction": output["spike_energy_fraction"],
        "time_below_fraction": output["time_below_fraction"],
    }
    # Paper: the 300 mF buffer takes >8x longer to enable than the 1 mF one.
    assert output["charge_time_ratio"] > 5.0
    # Paper: most energy arrives in spikes, most time is spent at low power.
    assert output["spike_energy_fraction"] > 0.4
    assert output["time_below_fraction"] > 0.5
    # Paper: oversized buffers never start at night.
    night = {row["buffer"]: row for row in output["night_rows"]}
    assert night["1 mF"]["started"]
    assert not night["300 mF"]["started"]
