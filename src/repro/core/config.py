"""REACT configuration: bank fabric layout, thresholds, and overheads.

The defaults reproduce the paper's prototype (Table 1 plus the §4/§5.1
operating points): a 770 µF last-level buffer, five reconfigurable banks
spanning 770 µF–18.03 mF total, a 3.3 V enable / 1.8 V brown-out window,
3.5 V / 2.0 V instrumentation thresholds, 10 Hz software polling, and
roughly 14 µW of hardware overhead per connected bank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.exceptions import ConfigurationError
from repro.units import microfarads


@dataclass(frozen=True)
class BankSpec:
    """Physical description of one reconfigurable capacitor bank."""

    unit_capacitance: float
    count: int
    supercapacitor: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if self.unit_capacitance <= 0.0:
            raise ConfigurationError(
                f"unit capacitance must be positive, got {self.unit_capacitance}"
            )
        if self.count < 1:
            raise ConfigurationError(
                f"bank needs at least one capacitor, got {self.count}"
            )

    @property
    def parallel_capacitance(self) -> float:
        """Equivalent capacitance in the full-parallel configuration."""
        return self.unit_capacitance * self.count

    @property
    def series_capacitance(self) -> float:
        """Equivalent capacitance in the full-series configuration."""
        return self.unit_capacitance / self.count

    @property
    def total_capacitance(self) -> float:
        """Sum of the physical capacitances (what fits on the board)."""
        return self.unit_capacitance * self.count


@dataclass(frozen=True)
class ReactConfig:
    """Complete configuration of a REACT buffer instance."""

    last_level_capacitance: float = microfarads(770.0)
    banks: Tuple[BankSpec, ...] = ()
    enable_voltage: float = 3.3
    brownout_voltage: float = 1.8
    high_threshold: float = 3.5
    low_threshold: float = 1.9
    max_voltage: float = 3.6
    poll_rate_hz: float = 10.0
    poll_active_time: float = 0.6e-3
    per_bank_overhead_power: float = 8e-6
    instrumentation_power: float = 2e-6
    ceramic_leakage_per_farad: float = 3e-3
    supercap_leakage_current: float = 0.15e-6

    def __post_init__(self) -> None:
        if self.last_level_capacitance <= 0.0:
            raise ConfigurationError("last-level capacitance must be positive")
        if not self.brownout_voltage < self.enable_voltage:
            raise ConfigurationError("enable voltage must exceed brown-out voltage")
        if not self.low_threshold < self.high_threshold:
            raise ConfigurationError("high threshold must exceed low threshold")
        if not self.high_threshold <= self.max_voltage:
            raise ConfigurationError("high threshold must not exceed the max voltage")
        if not self.brownout_voltage <= self.low_threshold:
            raise ConfigurationError(
                "low threshold should sit at or above the brown-out voltage"
            )
        if self.poll_rate_hz <= 0.0:
            raise ConfigurationError("poll rate must be positive")
        if self.poll_active_time < 0.0:
            raise ConfigurationError("poll active time must be non-negative")

    # -- derived quantities -----------------------------------------------------------

    @property
    def poll_period(self) -> float:
        """Seconds between controller polls of the voltage instrumentation."""
        return 1.0 / self.poll_rate_hz

    @property
    def minimum_capacitance(self) -> float:
        """Capacitance at cold start (only the last-level buffer connected)."""
        return self.last_level_capacitance

    @property
    def maximum_capacitance(self) -> float:
        """Capacitance with every bank connected in parallel."""
        return self.last_level_capacitance + sum(
            bank.parallel_capacitance for bank in self.banks
        )

    @property
    def total_physical_capacitance(self) -> float:
        """Sum of every capacitor on the board (same as maximum_capacitance)."""
        return self.last_level_capacitance + sum(
            bank.total_capacitance for bank in self.banks
        )

    @property
    def capacitance_levels(self) -> List[float]:
        """Equivalent capacitance after each controller step-up, in order.

        Level 0 is the bare last-level buffer; each bank then contributes
        its series capacitance followed by its parallel capacitance, in
        connection order (§3.4).
        """
        levels = [self.last_level_capacitance]
        running = self.last_level_capacitance
        for bank in self.banks:
            levels.append(running + bank.series_capacitance)
            running += bank.parallel_capacitance
            levels.append(running)
        return levels

    def software_overhead_fraction(self, active_current: float) -> float:
        """Fraction of active-mode throughput spent polling (§5.1: ~1.8 %)."""
        if active_current <= 0.0:
            return 0.0
        return self.poll_rate_hz * self.poll_active_time

    def describe_banks(self) -> List[dict]:
        """Table-1-style rows describing the bank fabric."""
        rows = [
            {
                "bank": 0,
                "capacitor_size_uF": round(self.last_level_capacitance * 1e6, 1),
                "capacitor_count": 1,
                "role": "last-level buffer",
            }
        ]
        for index, bank in enumerate(self.banks, start=1):
            rows.append(
                {
                    "bank": index,
                    "capacitor_size_uF": round(bank.unit_capacitance * 1e6, 1),
                    "capacitor_count": bank.count,
                    "role": (
                        "supercapacitor bank" if bank.supercapacitor else "ceramic bank"
                    ),
                }
            )
        return rows


#: Bank fabric from Table 1 of the paper (bank 0 is the last-level buffer).
TABLE1_BANKS: Tuple[BankSpec, ...] = (
    BankSpec(unit_capacitance=microfarads(220.0), count=3, label="bank1"),
    BankSpec(unit_capacitance=microfarads(440.0), count=3, label="bank2"),
    BankSpec(unit_capacitance=microfarads(880.0), count=3, label="bank3"),
    BankSpec(unit_capacitance=microfarads(880.0), count=3, label="bank4"),
    BankSpec(
        unit_capacitance=microfarads(5000.0),
        count=2,
        supercapacitor=True,
        label="bank5",
    ),
)


def table1_config(**overrides) -> ReactConfig:
    """The paper's prototype configuration (770 µF – 18.03 mF).

    Keyword overrides are forwarded to :class:`ReactConfig`, so callers can
    tweak thresholds or polling without re-declaring the bank fabric.
    """
    parameters = {"banks": TABLE1_BANKS}
    parameters.update(overrides)
    return ReactConfig(**parameters)
