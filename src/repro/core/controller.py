"""REACT's software controller (§3.4).

The controller is deliberately tiny: it polls the two-comparator voltage
instrumentation at a fixed rate (10 Hz in the paper) and maintains a state
machine per capacitor bank.  On a buffer-full signal it expands capacitance
one step — connecting the next bank in series, then reconfiguring it to
parallel — and on a buffer-empty signal it steps the fabric the opposite
way, reclaiming charge by switching parallel banks to series before
disconnecting them.

It also exposes the software-directed longevity interface (§3.4.1):
application code can request a minimum buffered-energy level and sleep
until the fabric has accumulated it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from repro.core.bank import CapacitorBank
from repro.core.config import ReactConfig
from repro.core.hardware import ReactHardware
from repro.platform.monitor import BufferSignal


class ControllerAction(Enum):
    """What the controller did on a given poll."""

    NONE = "none"
    STEP_UP = "step_up"
    STEP_DOWN = "step_down"


@dataclass
class PollRecord:
    """One controller poll, kept for the characterization experiment (§5.1)."""

    time: float
    signal: BufferSignal
    action: ControllerAction
    capacitance_level: int


class ReactController:
    """Polling state machine that drives bank reconfiguration."""

    def __init__(
        self,
        hardware: ReactHardware,
        config: Optional[ReactConfig] = None,
        expansion_min_interval: float = 0.3,
    ) -> None:
        self.hardware = hardware
        self.config = config or hardware.config
        self.expansion_min_interval = expansion_min_interval
        self._next_poll_time = 0.0
        self._last_expansion_time = -float("inf")
        self.poll_count = 0
        self.step_up_count = 0
        self.step_down_count = 0
        self.history: List[PollRecord] = []
        self.record_history = False
        self._minimum_energy = 0.0

    # -- polling --------------------------------------------------------------------

    def poll_due(self, time: float) -> bool:
        """True when the polling timer has elapsed."""
        return time >= self._next_poll_time

    def poll(self, time: float) -> ControllerAction:
        """Run one controller poll at simulation time ``time``.

        The caller (the buffer adapter) only invokes this while the MCU is
        powered, because the controller is software running on the target.
        """
        if not self.poll_due(time):
            return ControllerAction.NONE
        self._next_poll_time = time + self.config.poll_period
        self.poll_count += 1
        signal = self.hardware.signal()
        action = ControllerAction.NONE
        if signal is BufferSignal.NEAR_FULL:
            # Expansion is rate-limited: the buffer must *keep* charging after
            # a step before the controller adds more capacitance, otherwise a
            # brief surplus under a light load would ratchet the fabric to its
            # maximum size and reintroduce the slow-cold-start problem of a
            # large static buffer (§3.3.3's "small steps").
            if time - self._last_expansion_time >= self.expansion_min_interval:
                if self.step_up():
                    action = ControllerAction.STEP_UP
                    self._last_expansion_time = time
        elif signal is BufferSignal.NEAR_EMPTY:
            # Reclamation is not rate-limited: once net power is negative the
            # controller keeps stepping banks down (parallel -> series ->
            # disconnected) until the boosted banks lift the last-level buffer
            # back above the low threshold or nothing is left to reclaim.
            # This is the §3.3.4 charge-reclamation path and it must keep
            # pace with high-current atomic operations.
            steps = 0
            while signal is BufferSignal.NEAR_EMPTY and self.step_down():
                action = ControllerAction.STEP_DOWN
                steps += 1
                self.hardware.replenish()
                signal = self.hardware.signal()
                if steps >= 2 * len(self.hardware.banks):
                    break
        if self.record_history:
            self.history.append(
                PollRecord(
                    time=time,
                    signal=signal,
                    action=action,
                    capacitance_level=self.hardware.capacitance_level,
                )
            )
        return action

    # -- bank stepping -----------------------------------------------------------------

    def step_up(self) -> bool:
        """Expand capacitance by one step; returns False when already maximal."""
        bank = self._next_bank_to_expand()
        if bank is None:
            return False
        bank.step_up()
        self.step_up_count += 1
        return True

    def step_down(self) -> bool:
        """Shrink capacitance by one step (reclamation); returns False at minimum."""
        bank = self._next_bank_to_retreat()
        if bank is None:
            return False
        bank.step_down()
        self.step_down_count += 1
        return True

    def _next_bank_to_expand(self) -> Optional[CapacitorBank]:
        """Banks are expanded in connection order: series first, then parallel."""
        for bank in self.hardware.banks:
            if bank.can_step_up:
                return bank
        return None

    def _next_bank_to_retreat(self) -> Optional[CapacitorBank]:
        """Banks retreat in reverse connection order (§3.4)."""
        for bank in reversed(self.hardware.banks):
            if bank.can_step_down:
                return bank
        return None

    # -- software-directed longevity (§3.4.1) ----------------------------------------------

    def set_minimum_energy(self, energy: float) -> None:
        """Request that the fabric accumulate ``energy`` joules of usable charge."""
        if energy < 0.0:
            raise ValueError(f"energy must be non-negative, got {energy}")
        self._minimum_energy = energy

    def clear_minimum_energy(self) -> None:
        """Drop the pending longevity request."""
        self._minimum_energy = 0.0

    @property
    def minimum_energy(self) -> float:
        """The pending longevity request in joules (0 when none)."""
        return self._minimum_energy

    def longevity_satisfied(self) -> bool:
        """True when the fabric's usable energy meets the pending request."""
        return self.hardware.usable_energy() >= self._minimum_energy

    # -- overhead model --------------------------------------------------------------------

    def software_overhead_current(self, active_current: float) -> float:
        """Average extra MCU current due to polling while the system runs."""
        return self.config.software_overhead_fraction(active_current) * active_current

    def hardware_overhead_power(self) -> float:
        """Quiescent power of instrumentation plus per-connected-bank circuitry."""
        connected = len(self.hardware.connected_banks)
        return (
            self.config.instrumentation_power
            + connected * self.config.per_bank_overhead_power
        )

    # -- lifecycle -----------------------------------------------------------------------------

    def reset(self) -> None:
        """Restore the controller to its power-on state."""
        self._next_poll_time = 0.0
        self._last_expansion_time = -float("inf")
        self.poll_count = 0
        self.step_up_count = 0
        self.step_down_count = 0
        self.history = []
        self._minimum_energy = 0.0
