"""The REACT bank fabric: last-level buffer, banks, diodes, instrumentation.

:class:`ReactHardware` models the energy flows of Figure 2:

* the harvester charges, through input isolation diodes, whichever
  connected element (last-level buffer or bank) sits at the lowest output
  voltage;
* the load draws only from the last-level buffer;
* banks replenish the last-level buffer through their output isolation
  diodes whenever their output voltage exceeds it (highest-voltage bank
  first), so stored energy is fungible regardless of which bank holds it;
* two comparators watch the last-level buffer and report the three-state
  buffer signal the software controller polls.

Because banks are mutually isolated, the only dissipative charge motion is
the diode-gated equalization between a bank output and the last-level
buffer; that loss is recorded as ``transfer_loss`` and is what the
switching-loss ablation compares against Morphy's equalization cost.
"""

from __future__ import annotations

from typing import List, Optional

from repro.capacitors.capacitor import Capacitor
from repro.capacitors.diode import IdealDiode
from repro.capacitors.leakage import ConstantCurrentLeakage, VoltageProportionalLeakage
from repro.capacitors.network import redistribute_charge
from repro.core.bank import BankState, CapacitorBank
from repro.core.config import ReactConfig
from repro.core.reclamation import stranded_energy_with_reclamation
from repro.platform.monitor import BufferSignal, VoltageMonitor
from repro.units import capacitor_energy


class ReactHardware:
    """Physical model of the REACT buffer fabric."""

    def __init__(self, config: ReactConfig, diode: Optional[IdealDiode] = None) -> None:
        self.config = config
        self.diode = diode or IdealDiode()
        self.last_level = Capacitor(
            capacitance=config.last_level_capacitance,
            rated_voltage=config.max_voltage,
            leakage=VoltageProportionalLeakage(
                rated_current=config.ceramic_leakage_per_farad
                * config.last_level_capacitance,
                rated_voltage=6.3,
            ),
            name="last-level",
        )
        self.banks: List[CapacitorBank] = []
        for index, spec in enumerate(config.banks, start=1):
            if spec.supercapacitor:
                leakage = ConstantCurrentLeakage(config.supercap_leakage_current)
            else:
                leakage = VoltageProportionalLeakage(
                    rated_current=config.ceramic_leakage_per_farad * spec.unit_capacitance,
                    rated_voltage=6.3,
                )
            self.banks.append(
                CapacitorBank(
                    spec=spec,
                    rated_cell_voltage=config.max_voltage,
                    leakage=leakage,
                    name=spec.label or f"bank{index}",
                )
            )
        self.monitor = VoltageMonitor(
            high_threshold=config.high_threshold,
            low_threshold=config.low_threshold,
        )
        self.energy_clipped = 0.0
        self.energy_leaked = 0.0
        self.transfer_loss = 0.0

    # -- telemetry -------------------------------------------------------------------

    @property
    def output_voltage(self) -> float:
        """Voltage on the last-level buffer (what the backend sees)."""
        return self.last_level.voltage

    @property
    def connected_banks(self) -> List[CapacitorBank]:
        """Banks currently contributing capacitance."""
        return [bank for bank in self.banks if bank.is_connected]

    @property
    def equivalent_capacitance(self) -> float:
        """Capacitance currently presented to the harvester and load."""
        return self.last_level.capacitance + sum(
            bank.equivalent_capacitance for bank in self.connected_banks
        )

    @property
    def stored_energy(self) -> float:
        """Total energy stored anywhere in the fabric (including stranded charge)."""
        return self.last_level.energy + sum(bank.stored_energy for bank in self.banks)

    @property
    def capacitance_level(self) -> int:
        """Number of controller step-ups currently applied (0 = bare last-level)."""
        level = 0
        for bank in self.banks:
            if bank.state is BankState.SERIES:
                level += 1
            elif bank.state is BankState.PARALLEL:
                level += 2
        return level

    def usable_energy(self) -> float:
        """Energy extractable before brown-out, assuming reclamation runs.

        The last-level buffer is usable down to the brown-out voltage; a
        connected bank is usable down to the post-reclamation stranded
        energy (§3.3.4).  This is the surrogate the longevity API gates on.
        """
        floor = capacitor_energy(self.last_level.capacitance, self.config.brownout_voltage)
        total = max(0.0, self.last_level.energy - floor)
        for bank in self.connected_banks:
            stranded = stranded_energy_with_reclamation(
                bank.count, bank.unit_capacitance, self.config.low_threshold
            )
            total += max(0.0, bank.stored_energy - stranded)
        return total

    def signal(self) -> BufferSignal:
        """Sample the voltage instrumentation."""
        return self.monitor.sample(self.last_level.voltage)

    # -- energy flow -------------------------------------------------------------------

    def harvest(self, energy: float) -> float:
        """Absorb harvested energy into the lowest-voltage connected element.

        Energy that cannot be stored anywhere (every element at the
        overvoltage clamp) is clipped.  Returns the energy stored.
        """
        if energy < 0.0:
            raise ValueError(f"energy must be non-negative, got {energy}")
        remaining = energy
        stored_total = 0.0
        # Elements sorted by present output voltage: the input diodes steer
        # charging current to the lowest-voltage element first.
        for _ in range(1 + len(self.banks)):
            if remaining <= 0.0:
                break
            element = self._lowest_voltage_element()
            if element is None:
                break
            if element is self.last_level:
                before = self.last_level.energy
                self.last_level.charge_with_energy(remaining)
                stored = self.last_level.energy - before
            else:
                stored = element.absorb_energy(remaining, self.config.max_voltage)
            if stored <= 0.0:
                break
            stored_total += stored
            remaining -= stored
        self.energy_clipped += max(0.0, remaining)
        return stored_total

    def _lowest_voltage_element(self):
        """The connected element with the lowest output voltage and headroom."""
        candidates = []
        if self.last_level.voltage < self.config.max_voltage - 1e-9:
            candidates.append((self.last_level.voltage, 0, self.last_level))
        for index, bank in enumerate(self.connected_banks, start=1):
            if bank.output_voltage < min(self.config.max_voltage, bank.max_output_voltage) - 1e-9:
                candidates.append((bank.output_voltage, index, bank))
        if not candidates:
            return None
        candidates.sort(key=lambda item: (item[0], item[1]))
        return candidates[0][2]

    def draw(self, current: float, dt: float) -> float:
        """Supply the load from the last-level buffer; returns energy delivered."""
        return self.last_level.discharge_current(current, dt)

    def replenish(self) -> float:
        """Let the highest-voltage bank top up the last-level buffer.

        Models the output isolation diodes: charge flows from a bank to the
        last-level buffer whenever the bank output voltage is higher,
        equalizing the two.  Returns the energy that reached the last-level
        buffer; the equalization loss is accumulated in ``transfer_loss``.
        """
        moved_total = 0.0
        for _ in range(len(self.banks)):
            source = self._highest_voltage_bank()
            if source is None:
                break
            if source.output_voltage <= self.last_level.voltage + 1e-9:
                break
            final_voltage, dissipated = redistribute_charge(
                source.equivalent_capacitance,
                source.output_voltage,
                self.last_level.capacitance,
                self.last_level.voltage,
            )
            # The overvoltage clamp still applies: a reclamation spike cannot
            # push the last-level buffer past its rated voltage.  Any energy
            # above the clamp is burned by the protection circuit.
            if final_voltage > self.config.max_voltage:
                before = capacitor_energy(
                    source.equivalent_capacitance, final_voltage
                ) + capacitor_energy(self.last_level.capacitance, final_voltage)
                final_voltage = self.config.max_voltage
                after = capacitor_energy(
                    source.equivalent_capacitance, final_voltage
                ) + capacitor_energy(self.last_level.capacitance, final_voltage)
                self.energy_clipped += max(0.0, before - after)
            gained = capacitor_energy(
                self.last_level.capacitance, final_voltage
            ) - self.last_level.energy
            source.set_output_voltage(final_voltage)
            self.last_level.set_voltage(final_voltage)
            self.transfer_loss += dissipated
            moved_total += max(0.0, gained)
        return moved_total

    def _highest_voltage_bank(self) -> Optional[CapacitorBank]:
        connected = self.connected_banks
        if not connected:
            return None
        return max(connected, key=lambda bank: bank.output_voltage)

    def apply_leakage(self, dt: float) -> float:
        """Self-discharge every capacitor in the fabric; returns energy lost."""
        leaked = self.last_level.apply_leakage(dt)
        for bank in self.banks:
            leaked += bank.apply_leakage(dt)
        self.energy_leaked += leaked
        return leaked

    # -- lifecycle ------------------------------------------------------------------------

    def reset(self) -> None:
        """Return to the cold-start state: everything empty and disconnected."""
        self.last_level.reset()
        for bank in self.banks:
            bank.reset()
        self.monitor.reset()
        self.energy_clipped = 0.0
        self.energy_leaked = 0.0
        self.transfer_loss = 0.0
