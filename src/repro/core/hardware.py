"""The REACT bank fabric: last-level buffer, banks, diodes, instrumentation.

:class:`ReactHardware` models the energy flows of Figure 2:

* the harvester charges, through input isolation diodes, whichever
  connected element (last-level buffer or bank) sits at the lowest output
  voltage;
* the load draws only from the last-level buffer;
* banks replenish the last-level buffer through their output isolation
  diodes whenever their output voltage exceeds it (highest-voltage bank
  first), so stored energy is fungible regardless of which bank holds it;
* two comparators watch the last-level buffer and report the three-state
  buffer signal the software controller polls.

Because banks are mutually isolated, the only dissipative charge motion is
the diode-gated equalization between a bank output and the last-level
buffer; that loss is recorded as ``transfer_loss`` and is what the
switching-loss ablation compares against Morphy's equalization cost.
"""

from __future__ import annotations

from typing import List, Optional

from repro.capacitors.capacitor import Capacitor
from repro.capacitors.diode import IdealDiode
from repro.capacitors.leakage import ConstantCurrentLeakage, VoltageProportionalLeakage
from repro.core.bank import BankState, CapacitorBank
from repro.core.config import ReactConfig
from repro.core.reclamation import stranded_energy_with_reclamation
from repro.platform.monitor import BufferSignal, VoltageMonitor
from repro.units import capacitor_energy


class ReactHardware:
    """Physical model of the REACT buffer fabric."""

    def __init__(self, config: ReactConfig, diode: Optional[IdealDiode] = None) -> None:
        self.config = config
        self.diode = diode or IdealDiode()
        self.last_level = Capacitor(
            capacitance=config.last_level_capacitance,
            rated_voltage=config.max_voltage,
            leakage=VoltageProportionalLeakage(
                rated_current=config.ceramic_leakage_per_farad
                * config.last_level_capacitance,
                rated_voltage=6.3,
            ),
            name="last-level",
        )
        self.banks: List[CapacitorBank] = []
        for index, spec in enumerate(config.banks, start=1):
            if spec.supercapacitor:
                leakage = ConstantCurrentLeakage(config.supercap_leakage_current)
            else:
                leakage = VoltageProportionalLeakage(
                    rated_current=config.ceramic_leakage_per_farad
                    * spec.unit_capacitance,
                    rated_voltage=6.3,
                )
            self.banks.append(
                CapacitorBank(
                    spec=spec,
                    rated_cell_voltage=config.max_voltage,
                    leakage=leakage,
                    name=spec.label or f"bank{index}",
                )
            )
        self.monitor = VoltageMonitor(
            high_threshold=config.high_threshold,
            low_threshold=config.low_threshold,
        )
        self.energy_clipped = 0.0
        self.energy_leaked = 0.0
        self.transfer_loss = 0.0
        self._connected_cache: Optional[List[CapacitorBank]] = None
        for bank in self.banks:
            bank.on_topology_change = self._invalidate_topology
        # Per-bank post-reclamation stranded energy is a pure function of the
        # (immutable) bank geometry and the low threshold; precomputing it
        # keeps usable_energy() — polled every step by longevity-aware
        # workloads — off the reclamation math.
        self._stranded_floor = {
            id(bank): stranded_energy_with_reclamation(
                bank.count, bank.unit_capacitance, config.low_threshold
            )
            for bank in self.banks
        }

    def _invalidate_topology(self) -> None:
        self._connected_cache = None

    # -- telemetry -------------------------------------------------------------------

    @property
    def output_voltage(self) -> float:
        """Voltage on the last-level buffer (what the backend sees)."""
        return self.last_level.voltage

    @property
    def connected_banks(self) -> List[CapacitorBank]:
        """Banks currently contributing capacitance.

        Bank connectivity only changes on (rare) controller reconfiguration
        steps, while this list is consulted several times per simulation
        step; the cached copy is invalidated through the banks' topology
        observer.  Callers must not mutate the returned list.
        """
        cached = self._connected_cache
        if cached is None:
            cached = [bank for bank in self.banks if bank.is_connected]
            self._connected_cache = cached
        return cached

    @property
    def equivalent_capacitance(self) -> float:
        """Capacitance currently presented to the harvester and load."""
        return self.last_level.capacitance + sum(
            bank.equivalent_capacitance for bank in self.connected_banks
        )

    @property
    def stored_energy(self) -> float:
        """Total energy stored anywhere in the fabric (including stranded charge)."""
        return self.last_level.energy + sum(bank.stored_energy for bank in self.banks)

    @property
    def capacitance_level(self) -> int:
        """Number of controller step-ups currently applied (0 = bare last-level)."""
        level = 0
        for bank in self.banks:
            if bank.state is BankState.SERIES:
                level += 1
            elif bank.state is BankState.PARALLEL:
                level += 2
        return level

    def usable_energy(self) -> float:
        """Energy extractable before brown-out, assuming reclamation runs.

        The last-level buffer is usable down to the brown-out voltage; a
        connected bank is usable down to the post-reclamation stranded
        energy (§3.3.4).  This is the surrogate the longevity API gates on.
        """
        floor = capacitor_energy(
            self.last_level.capacitance, self.config.brownout_voltage
        )
        total = max(0.0, self.last_level.energy - floor)
        stranded_floor = self._stranded_floor
        for bank in self.connected_banks:
            total += max(0.0, bank.stored_energy - stranded_floor[id(bank)])
        return total

    def signal(self) -> BufferSignal:
        """Sample the voltage instrumentation."""
        return self.monitor.sample(self.last_level.voltage)

    # -- energy flow -------------------------------------------------------------------

    def harvest(self, energy: float) -> float:
        """Absorb harvested energy into the lowest-voltage connected element.

        Energy that cannot be stored anywhere (every element at the
        overvoltage clamp) is clipped.  Returns the energy stored.
        """
        if energy < 0.0:
            raise ValueError(f"energy must be non-negative, got {energy}")
        remaining = energy
        stored_total = 0.0
        # Elements sorted by present output voltage: the input diodes steer
        # charging current to the lowest-voltage element first.
        for _ in range(1 + len(self.banks)):
            if remaining <= 0.0:
                break
            element = self._lowest_voltage_element()
            if element is None:
                break
            if element is self.last_level:
                before = self.last_level.energy
                self.last_level.charge_with_energy(remaining)
                stored = self.last_level.energy - before
            else:
                stored = element.absorb_energy(remaining, self.config.max_voltage)
            if stored <= 0.0:
                break
            stored_total += stored
            remaining -= stored
        self.energy_clipped += max(0.0, remaining)
        return stored_total

    def _lowest_voltage_element(self):
        """The connected element with the lowest output voltage and headroom.

        Single forward scan keeping the first strict minimum — equivalent
        to sorting by (voltage, connection order) and taking the head, but
        allocation-free, since this runs several times per simulation step.
        """
        max_voltage = self.config.max_voltage
        best = None
        best_voltage = 0.0
        if self.last_level.voltage < max_voltage - 1e-9:
            best = self.last_level
            best_voltage = self.last_level.voltage
        for bank in self.connected_banks:
            # Inlined bank.output_voltage / bank.max_output_voltage: the
            # scan runs for every harvesting step.
            if bank.state is BankState.SERIES:
                count = bank.spec.count
                voltage = bank.cell_voltage * count
                ceiling = bank.rated_cell_voltage * count
            else:
                voltage = bank.cell_voltage
                ceiling = bank.rated_cell_voltage
            if ceiling > max_voltage:
                ceiling = max_voltage
            if voltage < ceiling - 1e-9 and (best is None or voltage < best_voltage):
                best = bank
                best_voltage = voltage
        return best

    def draw(self, current: float, dt: float) -> float:
        """Supply the load from the last-level buffer; returns energy delivered."""
        return self.last_level.discharge_current(current, dt)

    def replenish(self) -> float:
        """Let the highest-voltage bank top up the last-level buffer.

        Models the output isolation diodes: charge flows from a bank to the
        last-level buffer whenever the bank output voltage is higher,
        equalizing the two.  Returns the energy that reached the last-level
        buffer; the equalization loss is accumulated in ``transfer_loss``.
        """
        moved_total = 0.0
        connected = self.connected_banks
        if not connected:
            return 0.0
        last_level = self.last_level
        sink_capacitance = last_level.capacitance
        max_voltage = self.config.max_voltage
        # This loop runs (at least) twice per simulation step and usually
        # performs a real transfer, so the two-capacitor equalization of
        # :func:`~repro.capacitors.network.redistribute_charge` is inlined
        # here (same expressions, same evaluation order).
        for _ in range(len(self.banks)):
            source = None
            source_voltage = 0.0
            for bank in connected:
                # Inlined bank.output_voltage (hot scan, twice per step).
                if bank.state is BankState.SERIES:
                    voltage = bank.cell_voltage * bank.spec.count
                else:
                    voltage = bank.cell_voltage
                if source is None or voltage > source_voltage:
                    source = bank
                    source_voltage = voltage
            sink_voltage = last_level.voltage
            if source_voltage <= sink_voltage + 1e-9:
                break
            source_capacitance = source.equivalent_capacitance
            total_capacitance = source_capacitance + sink_capacitance
            final_voltage = (
                source_capacitance * source_voltage + sink_capacitance * sink_voltage
            ) / total_capacitance
            initial_energy = (
                0.5 * source_capacitance * source_voltage * source_voltage
                + 0.5 * sink_capacitance * sink_voltage * sink_voltage
            )
            dissipated = initial_energy - (
                0.5 * total_capacitance * final_voltage * final_voltage
            )
            if dissipated < 0.0:
                dissipated = 0.0
            # The overvoltage clamp still applies: a reclamation spike cannot
            # push the last-level buffer past its rated voltage.  Any energy
            # above the clamp is burned by the protection circuit.
            if final_voltage > max_voltage:
                before = (
                    0.5 * source_capacitance * final_voltage * final_voltage
                    + 0.5 * sink_capacitance * final_voltage * final_voltage
                )
                final_voltage = max_voltage
                after = (
                    0.5 * source_capacitance * final_voltage * final_voltage
                    + 0.5 * sink_capacitance * final_voltage * final_voltage
                )
                self.energy_clipped += max(0.0, before - after)
            gained = (
                0.5 * sink_capacitance * final_voltage * final_voltage
            ) - (0.5 * sink_capacitance * sink_voltage * sink_voltage)
            source.set_output_voltage(final_voltage)
            last_level.set_voltage(final_voltage)
            self.transfer_loss += dissipated
            if gained > 0.0:
                moved_total += gained
        return moved_total

    def apply_leakage(self, dt: float) -> float:
        """Self-discharge every capacitor in the fabric; returns energy lost."""
        leaked = self.last_level.apply_leakage(dt)
        for bank in self.banks:
            leaked += bank.apply_leakage(dt)
        self.energy_leaked += leaked
        return leaked

    # -- lifecycle ------------------------------------------------------------------------

    def reset(self) -> None:
        """Return to the cold-start state: everything empty and disconnected."""
        self.last_level.reset()
        for bank in self.banks:
            bank.reset()
        self.monitor.reset()
        self.energy_clipped = 0.0
        self.energy_leaked = 0.0
        self.transfer_loss = 0.0
