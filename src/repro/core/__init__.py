"""REACT core: reconfigurable, energy-adaptive capacitor banks.

This package implements the paper's contribution:

* :mod:`repro.core.config` — bank-fabric configuration (Table 1 defaults,
  voltage thresholds, polling rate, overhead figures),
* :mod:`repro.core.bank` — a single isolated capacitor bank and its
  disconnected/series/parallel state machine,
* :mod:`repro.core.hardware` — the bank fabric: last-level buffer, isolation
  diodes, voltage instrumentation, and the energy-flow rules between them,
* :mod:`repro.core.controller` — the minimal software component: polling,
  the per-bank state machine stepping, and software-directed longevity,
* :mod:`repro.core.sizing` — the bank-size constraint math (Equations 1–2),
* :mod:`repro.core.reclamation` — charge-reclamation energy accounting
  (§3.3.4).
"""

from repro.core.config import BankSpec, ReactConfig, table1_config
from repro.core.bank import BankState, CapacitorBank
from repro.core.hardware import ReactHardware
from repro.core.controller import ControllerAction, ReactController
from repro.core.sizing import (
    max_unit_capacitance,
    voltage_after_series_switch,
    validate_bank_sizing,
)
from repro.core.reclamation import (
    reclaimable_energy,
    reclamation_gain_factor,
    stranded_energy_with_reclamation,
    stranded_energy_without_reclamation,
)

__all__ = [
    "ReactConfig",
    "BankSpec",
    "table1_config",
    "CapacitorBank",
    "BankState",
    "ReactHardware",
    "ReactController",
    "ControllerAction",
    "voltage_after_series_switch",
    "max_unit_capacitance",
    "validate_bank_sizing",
    "reclaimable_energy",
    "reclamation_gain_factor",
    "stranded_energy_with_reclamation",
    "stranded_energy_without_reclamation",
]
