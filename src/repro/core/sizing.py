"""Bank-size constraint math (Equations 1 and 2 of the paper, §3.3.5).

When a charged parallel bank is reconfigured to series at the low-voltage
trigger, its boosted output equalizes onto the last-level buffer and pulls
the buffer voltage up.  The spike must stay below the buffer-full threshold
or the controller would misread it as a surplus signal (and in extreme
cases exceed component limits), which constrains how large each unit
capacitor may be relative to the last-level buffer.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError


def voltage_after_series_switch(
    cell_count: int,
    unit_capacitance: float,
    last_level_capacitance: float,
    trigger_voltage: float,
) -> float:
    """Last-level buffer voltage after a parallel→series bank switch (Eq. 1).

    The bank (equivalent capacitance ``C_unit / N`` at output voltage
    ``N · V_low``) equalizes with the last-level buffer (``C_last`` at
    ``V_low``); the result is the charge-weighted mean of the two voltages.
    """
    _validate_positive(
        cell_count, unit_capacitance, last_level_capacitance, trigger_voltage
    )
    series_capacitance = unit_capacitance / cell_count
    boosted_voltage = cell_count * trigger_voltage
    total = last_level_capacitance + series_capacitance
    return (
        boosted_voltage * series_capacitance / total
        + trigger_voltage * last_level_capacitance / total
    )


def max_unit_capacitance(
    cell_count: int,
    last_level_capacitance: float,
    high_threshold: float,
    low_threshold: float,
) -> float:
    """Largest permissible unit capacitance for a bank (Eq. 2).

    Returns ``inf`` when the constraint does not bind, i.e. when even an
    arbitrarily large bank cannot push the post-switch voltage above the
    high threshold (``N · V_low <= V_high``).
    """
    _validate_positive(
        cell_count, last_level_capacitance, high_threshold, low_threshold
    )
    if high_threshold <= low_threshold:
        raise ConfigurationError("high threshold must exceed the low threshold")
    boosted = cell_count * low_threshold
    if boosted <= high_threshold:
        return float("inf")
    return (
        cell_count
        * last_level_capacitance
        * (high_threshold - low_threshold)
        / (boosted - high_threshold)
    )


def validate_bank_sizing(
    cell_count: int,
    unit_capacitance: float,
    last_level_capacitance: float,
    high_threshold: float,
    low_threshold: float,
) -> bool:
    """True when a bank satisfies the Eq. 2 sizing constraint."""
    limit = max_unit_capacitance(
        cell_count, last_level_capacitance, high_threshold, low_threshold
    )
    return unit_capacitance < limit


def _validate_positive(*values: float) -> None:
    for value in values:
        if value <= 0:
            raise ConfigurationError(f"sizing inputs must be positive, got {value}")
