"""A single REACT capacitor bank and its configuration state machine.

Each bank holds ``N`` identical unit capacitors that are always either all
disconnected, all in series, or all in parallel (§3.3.2).  Because the
cells within a bank always carry equal voltage, reconfiguring between
series and parallel moves no charge between cells and therefore dissipates
no energy — the property that separates REACT from a fully interconnected
switched-capacitor network.

The bank tracks its *cell* voltage; the output voltage seen by the rest of
the fabric is ``N × V_cell`` in series and ``V_cell`` in parallel.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from enum import Enum

from repro.capacitors.leakage import LeakageModel, NoLeakage
from repro.capacitors.switches import DpdtSwitch, SwitchState
from repro.core.config import BankSpec
from repro.exceptions import BankStateError, ConfigurationError
from repro.units import capacitor_energy


class BankState(Enum):
    """Configuration of a REACT capacitor bank."""

    DISCONNECTED = "disconnected"
    SERIES = "series"
    PARALLEL = "parallel"


@dataclass
class CapacitorBank:
    """One isolated, reconfigurable capacitor bank.

    Parameters
    ----------
    spec:
        Physical description (unit capacitance and cell count).
    rated_cell_voltage:
        Maximum voltage any single cell tolerates.
    leakage:
        Leakage model applied per cell.
    """

    spec: BankSpec
    rated_cell_voltage: float = 6.3
    leakage: LeakageModel = field(default_factory=NoLeakage)
    name: str = "bank"
    state: BankState = field(default=BankState.DISCONNECTED, init=False)
    cell_voltage: float = field(default=0.0, init=False)
    reconfiguration_count: int = field(default=0, init=False)
    energy_leaked: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.rated_cell_voltage <= 0.0:
            raise ConfigurationError("rated cell voltage must be positive")
        self.switch = DpdtSwitch(name=f"{self.name}.dpdt")
        #: Optional observer invoked after every state change; the hardware
        #: fabric uses it to invalidate its cached connected-bank topology.
        self.on_topology_change = None

    def _notify_topology_change(self) -> None:
        if self.on_topology_change is not None:
            self.on_topology_change()

    # -- electrical state ----------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of unit cells in the bank."""
        return self.spec.count

    @property
    def unit_capacitance(self) -> float:
        """Capacitance of a single cell in farads."""
        return self.spec.unit_capacitance

    @property
    def is_connected(self) -> bool:
        """True when the bank contributes capacitance to the fabric."""
        return self.state is not BankState.DISCONNECTED

    @property
    def equivalent_capacitance(self) -> float:
        """Capacitance seen at the bank output in its present state."""
        if self.state is BankState.SERIES:
            return self.spec.series_capacitance
        if self.state is BankState.PARALLEL:
            return self.spec.parallel_capacitance
        return 0.0

    @property
    def output_voltage(self) -> float:
        """Voltage at the bank output in its present state."""
        if self.state is BankState.SERIES:
            return self.cell_voltage * self.count
        if self.state is BankState.PARALLEL:
            return self.cell_voltage
        return 0.0

    @property
    def stored_energy(self) -> float:
        """Total energy stored across all cells (state-independent)."""
        return self.count * capacitor_energy(self.unit_capacitance, self.cell_voltage)

    @property
    def max_output_voltage(self) -> float:
        """Output voltage if every cell were at its rated voltage."""
        if self.state is BankState.SERIES:
            return self.rated_cell_voltage * self.count
        return self.rated_cell_voltage

    def energy_at_output_voltage(self, output_voltage: float) -> float:
        """Stored energy if the output were at ``output_voltage`` in this state."""
        if self.state is BankState.DISCONNECTED:
            return self.stored_energy
        cell = (
            output_voltage / self.count
            if self.state is BankState.SERIES
            else output_voltage
        )
        return self.count * capacitor_energy(self.unit_capacitance, cell)

    # -- state machine -----------------------------------------------------------------

    def connect_series(self) -> None:
        """Connect a disconnected bank in the series configuration (§3.3.3)."""
        if self.state is not BankState.DISCONNECTED:
            raise BankStateError(
                f"{self.name}: connect_series requires a disconnected bank, "
                f"state is {self.state.value}"
            )
        self.state = BankState.SERIES
        self.reconfiguration_count += 1
        self.switch.set_state(SwitchState.POSITION_A)
        self._notify_topology_change()

    def to_parallel(self) -> None:
        """Reconfigure a series bank to parallel (capacity expansion)."""
        if self.state is not BankState.SERIES:
            raise BankStateError(
                f"{self.name}: to_parallel requires a series bank, state is {self.state.value}"
            )
        self.state = BankState.PARALLEL
        self.reconfiguration_count += 1
        self.switch.set_state(SwitchState.POSITION_B)
        self._notify_topology_change()

    def to_series(self) -> None:
        """Reconfigure a parallel bank to series (charge reclamation, §3.3.4)."""
        if self.state is not BankState.PARALLEL:
            raise BankStateError(
                f"{self.name}: to_series requires a parallel bank, state is {self.state.value}"
            )
        self.state = BankState.SERIES
        self.reconfiguration_count += 1
        self.switch.set_state(SwitchState.POSITION_A)
        self._notify_topology_change()

    def disconnect(self) -> None:
        """Disconnect the bank from the fabric (its cells keep their charge)."""
        if self.state is BankState.DISCONNECTED:
            raise BankStateError(f"{self.name}: bank is already disconnected")
        self.state = BankState.DISCONNECTED
        self.reconfiguration_count += 1
        self.switch.set_state(SwitchState.OPEN)
        self._notify_topology_change()

    def step_up(self) -> BankState:
        """Advance one step toward maximum capacitance; returns the new state."""
        if self.state is BankState.DISCONNECTED:
            self.connect_series()
        elif self.state is BankState.SERIES:
            self.to_parallel()
        else:
            raise BankStateError(f"{self.name}: bank is already fully expanded")
        return self.state

    def step_down(self) -> BankState:
        """Retreat one step toward disconnection; returns the new state."""
        if self.state is BankState.PARALLEL:
            self.to_series()
        elif self.state is BankState.SERIES:
            self.disconnect()
        else:
            raise BankStateError(f"{self.name}: bank is already disconnected")
        return self.state

    @property
    def can_step_up(self) -> bool:
        """True when a further capacity-expansion step exists."""
        return self.state is not BankState.PARALLEL

    @property
    def can_step_down(self) -> bool:
        """True when a further retreat step exists."""
        return self.state is not BankState.DISCONNECTED

    # -- charge movement ----------------------------------------------------------------

    def absorb_energy(self, energy: float, max_output_voltage: float) -> float:
        """Store harvested energy, limited by the output-voltage clamp.

        Returns the energy actually stored.  Charging never moves charge
        between cells, so it is lossless up to the clamp.
        """
        if energy < 0.0:
            raise ValueError(f"energy must be non-negative, got {energy}")
        state = self.state
        if state is BankState.DISCONNECTED or energy == 0.0:
            return 0.0
        # Inlined max_output_voltage / energy_at_output_voltage /
        # stored_energy (this runs for every harvesting step).
        count = self.spec.count
        unit = self.spec.unit_capacitance
        if state is BankState.SERIES:
            ceiling = self.rated_cell_voltage * count
            clamp_output = (
                max_output_voltage if max_output_voltage < ceiling else ceiling
            )
            clamp_cell = clamp_output / count
        else:
            ceiling = self.rated_cell_voltage
            clamp_output = (
                max_output_voltage if max_output_voltage < ceiling else ceiling
            )
            clamp_cell = clamp_output
        max_energy = count * (0.5 * unit * clamp_cell * clamp_cell)
        voltage = self.cell_voltage
        stored_now = count * (0.5 * unit * voltage * voltage)
        stored = min(energy, max(0.0, max_energy - stored_now))
        if stored <= 0.0:
            return 0.0
        new_energy = stored_now + stored
        self.cell_voltage = math.sqrt(2.0 * new_energy / (count * unit))
        return stored

    def set_output_voltage(self, output_voltage: float) -> None:
        """Force the output voltage (used when equalizing with the last-level buffer)."""
        if output_voltage < 0.0:
            raise ValueError(f"voltage must be non-negative, got {output_voltage}")
        if self.state is BankState.DISCONNECTED:
            raise BankStateError(
                f"{self.name}: cannot set voltage on a disconnected bank"
            )
        if self.state is BankState.SERIES:
            self.cell_voltage = output_voltage / self.count
        else:
            self.cell_voltage = output_voltage

    def set_cell_voltage(self, cell_voltage: float) -> None:
        """Directly set the per-cell voltage (test setup and experiments)."""
        if not 0.0 <= cell_voltage <= self.rated_cell_voltage:
            raise ConfigurationError(
                f"cell voltage must lie in [0, {self.rated_cell_voltage}], got {cell_voltage}"
            )
        self.cell_voltage = cell_voltage

    def apply_leakage(self, dt: float) -> float:
        """Self-discharge every cell over ``dt`` seconds; returns energy lost."""
        if dt < 0.0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        voltage = self.cell_voltage
        if voltage <= 0.0:
            return 0.0
        # Inlined stored-energy expressions: this runs once per bank per
        # simulation step, and the property chain dominated its cost.
        count = self.spec.count
        unit = self.spec.unit_capacitance
        before = count * (0.5 * unit * voltage * voltage)
        lost_charge = self.leakage.charge_lost(voltage, dt)
        new_cell_charge = unit * voltage - lost_charge
        if new_cell_charge < 0.0:
            new_cell_charge = 0.0
        new_voltage = new_cell_charge / unit
        self.cell_voltage = new_voltage
        leaked = before - count * (0.5 * unit * new_voltage * new_voltage)
        self.energy_leaked += leaked
        return leaked

    def reset(self) -> None:
        """Return to the cold-start state (disconnected and empty)."""
        self.state = BankState.DISCONNECTED
        self.cell_voltage = 0.0
        self.reconfiguration_count = 0
        self.energy_leaked = 0.0
        self._notify_topology_change()
