"""Charge-reclamation energy accounting (§3.3.4).

When net power turns negative, REACT reconfigures charged parallel banks
into series, boosting their output voltage so the system can keep
extracting energy after the cell voltage has fallen below the usable
threshold.  Reconfiguration conserves stored energy (no charge moves
between cells); the benefit is purely that the *stranded* energy left when
the output finally reaches the low threshold shrinks by a factor of ``N²``
compared to simply disconnecting the parallel bank.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.units import capacitor_energy


def stranded_energy_without_reclamation(
    cell_count: int, unit_capacitance: float, low_voltage: float
) -> float:
    """Energy stuck on a parallel bank drained only to ``low_voltage``.

    Without reclamation the bank can be used only while its output (equal
    to the cell voltage) stays above the threshold, so each of the ``N``
    cells strands ``1/2 C V_low²``.
    """
    _validate(cell_count, unit_capacitance, low_voltage)
    return cell_count * capacitor_energy(unit_capacitance, low_voltage)


def stranded_energy_with_reclamation(
    cell_count: int, unit_capacitance: float, low_voltage: float
) -> float:
    """Energy stuck on a bank drained to ``low_voltage`` in series mode.

    Draining the series-configured bank output to ``V_low`` leaves every
    cell at ``V_low / N``, stranding ``1/2 C V_low² / N`` in total — a
    factor ``N²`` less than the parallel case.
    """
    _validate(cell_count, unit_capacitance, low_voltage)
    return cell_count * capacitor_energy(unit_capacitance, low_voltage / cell_count)


def reclaimable_energy(
    cell_count: int, unit_capacitance: float, low_voltage: float
) -> float:
    """Extra energy the parallel→series reclamation step makes usable."""
    return stranded_energy_without_reclamation(
        cell_count, unit_capacitance, low_voltage
    ) - stranded_energy_with_reclamation(cell_count, unit_capacitance, low_voltage)


def reclamation_gain_factor(cell_count: int) -> float:
    """Ratio of stranded energy without vs. with reclamation (``N²``)."""
    if cell_count < 1:
        raise ConfigurationError(f"cell count must be at least 1, got {cell_count}")
    return float(cell_count * cell_count)


def _validate(cell_count: int, unit_capacitance: float, low_voltage: float) -> None:
    if cell_count < 1:
        raise ConfigurationError(f"cell count must be at least 1, got {cell_count}")
    if unit_capacitance <= 0.0:
        raise ConfigurationError(
            f"unit capacitance must be positive, got {unit_capacitance}"
        )
    if low_voltage < 0.0:
        raise ConfigurationError(f"low voltage must be non-negative, got {low_voltage}")
