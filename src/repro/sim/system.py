"""Composition of a complete batteryless system under test."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.buffers.base import EnergyBuffer
from repro.exceptions import ConfigurationError
from repro.harvester.frontend import HarvestingFrontend
from repro.harvester.regulator import Regulator
from repro.harvester.trace import PowerTrace
from repro.platform.gating import PowerGate
from repro.platform.mcu import Microcontroller, MSP430FR5994
from repro.workloads.base import Workload


@dataclass
class BatterylessSystem:
    """A harvester, buffer, power gate, MCU, and workload wired together.

    This is the unit the experiments sweep: the same trace and workload are
    replayed against different buffer architectures, so the only component
    that changes between rows of a results table is ``buffer``.
    """

    frontend: HarvestingFrontend
    buffer: EnergyBuffer
    workload: Workload
    mcu: Microcontroller = field(default_factory=MSP430FR5994)
    gate: PowerGate = field(default_factory=PowerGate)

    def __post_init__(self) -> None:
        if self.gate.enable_voltage > getattr(self.buffer, "max_voltage", float("inf")):
            raise ConfigurationError(
                "the power gate's enable voltage exceeds the buffer's maximum voltage"
            )

    @classmethod
    def build(
        cls,
        trace: PowerTrace,
        buffer: EnergyBuffer,
        workload: Workload,
        mcu: Optional[Microcontroller] = None,
        gate: Optional[PowerGate] = None,
        regulator: Optional[Regulator] = None,
    ) -> "BatterylessSystem":
        """Convenience constructor from a power trace and the two variables.

        ``regulator`` defaults to an ideal conversion stage; pass a
        :class:`~repro.harvester.regulator.BoostRegulator` to include
        converter losses.
        """
        if regulator is None:
            frontend = HarvestingFrontend(trace)
        else:
            frontend = HarvestingFrontend(trace, regulator=regulator)
        return cls(
            frontend=frontend,
            buffer=buffer,
            workload=workload,
            mcu=mcu or MSP430FR5994(),
            gate=gate or PowerGate(),
        )

    def reset(self) -> None:
        """Return every component to its cold-start state."""
        self.frontend.reset()
        self.buffer.reset()
        self.workload.reset()
        self.mcu.reset()
        self.gate.reset()
