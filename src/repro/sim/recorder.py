"""Timeline recording for voltage/operation plots (Figures 1 and 6).

Recording convention
--------------------

Each :class:`TimelinePoint` is a sample of the system state at the **end of
an integration step**: the simulator integrates ``[time, time + dt)`` and
then records the post-step voltage/energy stamped ``time + dt``, with
``harvested_power`` evaluated from the trace at that same timestamp.  (The
seed recorded pre-step timestamps against post-step state, which skewed
every Figure 1/6 timeline by one step and paired each voltage with the
power of the *previous* trace sample.)

Decimated sample times snap to exact multiples of ``record_period`` rather
than re-anchoring on the jittery step grid, so a long adaptive-step run
yields a uniformly sampled timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.units import next_grid_time


@dataclass(frozen=True)
class TimelinePoint:
    """One recorded sample of the system state (end-of-step convention)."""

    time: float
    voltage: float
    system_on: bool
    capacitance: float
    stored_energy: float
    harvested_power: float


class Recorder:
    """Decimated timeline recorder.

    Recording every simulation step of a multi-hour trace would produce
    millions of points; the recorder keeps one sample per ``record_period``
    seconds, which is more than enough resolution for the voltage plots the
    paper shows.
    """

    def __init__(self, record_period: float = 0.5) -> None:
        if record_period <= 0.0:
            raise ValueError(f"record period must be positive, got {record_period}")
        self.record_period = record_period
        self.points: List[TimelinePoint] = []
        self._next_record_time = 0.0

    @property
    def next_record_time(self) -> float:
        """Earliest sample timestamp the recorder still wants to capture.

        The simulator's off-phase fast path uses this bound so that
        fast-forwarded intervals never skip over a pending sample point.
        """
        return self._next_record_time

    def maybe_record(
        self,
        time: float,
        voltage: float,
        system_on: bool,
        capacitance: float,
        stored_energy: float,
        harvested_power: float,
    ) -> None:
        """Record a sample if the decimation interval has elapsed.

        ``time`` is the end-of-step timestamp the state corresponds to.  The
        next sample time snaps to the record-period grid (the next exact
        multiple of ``record_period``) instead of ``time + record_period``,
        so jitter in the simulation step size does not accumulate into drift
        of the recorded timeline.
        """
        if time < self._next_record_time:
            return
        self._next_record_time = next_grid_time(time, self.record_period)
        self.points.append(
            TimelinePoint(
                time=time,
                voltage=voltage,
                system_on=system_on,
                capacitance=capacitance,
                stored_energy=stored_energy,
                harvested_power=harvested_power,
            )
        )

    def __len__(self) -> int:
        return len(self.points)

    def as_arrays(self) -> Dict[str, np.ndarray]:
        """Columnar view of the recorded timeline."""
        return {
            "time": np.array([p.time for p in self.points]),
            "voltage": np.array([p.voltage for p in self.points]),
            "system_on": np.array([p.system_on for p in self.points]),
            "capacitance": np.array([p.capacitance for p in self.points]),
            "stored_energy": np.array([p.stored_energy for p in self.points]),
            "harvested_power": np.array([p.harvested_power for p in self.points]),
        }

    def on_intervals(self) -> List[tuple]:
        """Contiguous (start, end) intervals during which the system was on."""
        intervals: List[tuple] = []
        start = None
        for point in self.points:
            if point.system_on and start is None:
                start = point.time
            elif not point.system_on and start is not None:
                intervals.append((start, point.time))
                start = None
        if start is not None and self.points:
            intervals.append((start, self.points[-1].time))
        return intervals

    def reset(self) -> None:
        """Clear the recorded timeline."""
        self.points = []
        self._next_record_time = 0.0
