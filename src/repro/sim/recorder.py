"""Timeline recording for voltage/operation plots (Figures 1 and 6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np


@dataclass(frozen=True)
class TimelinePoint:
    """One recorded sample of the system state."""

    time: float
    voltage: float
    system_on: bool
    capacitance: float
    stored_energy: float
    harvested_power: float


class Recorder:
    """Decimated timeline recorder.

    Recording every simulation step of a multi-hour trace would produce
    millions of points; the recorder keeps one sample per ``record_period``
    seconds, which is more than enough resolution for the voltage plots the
    paper shows.
    """

    def __init__(self, record_period: float = 0.5) -> None:
        if record_period <= 0.0:
            raise ValueError(f"record period must be positive, got {record_period}")
        self.record_period = record_period
        self.points: List[TimelinePoint] = []
        self._next_record_time = 0.0

    def maybe_record(
        self,
        time: float,
        voltage: float,
        system_on: bool,
        capacitance: float,
        stored_energy: float,
        harvested_power: float,
    ) -> None:
        """Record a sample if the decimation interval has elapsed."""
        if time < self._next_record_time:
            return
        self._next_record_time = time + self.record_period
        self.points.append(
            TimelinePoint(
                time=time,
                voltage=voltage,
                system_on=system_on,
                capacitance=capacitance,
                stored_energy=stored_energy,
                harvested_power=harvested_power,
            )
        )

    def __len__(self) -> int:
        return len(self.points)

    def as_arrays(self) -> Dict[str, np.ndarray]:
        """Columnar view of the recorded timeline."""
        return {
            "time": np.array([p.time for p in self.points]),
            "voltage": np.array([p.voltage for p in self.points]),
            "system_on": np.array([p.system_on for p in self.points]),
            "capacitance": np.array([p.capacitance for p in self.points]),
            "stored_energy": np.array([p.stored_energy for p in self.points]),
            "harvested_power": np.array([p.harvested_power for p in self.points]),
        }

    def on_intervals(self) -> List[tuple]:
        """Contiguous (start, end) intervals during which the system was on."""
        intervals: List[tuple] = []
        start = None
        for point in self.points:
            if point.system_on and start is None:
                start = point.time
            elif not point.system_on and start is not None:
                intervals.append((start, point.time))
                start = None
        if start is not None and self.points:
            intervals.append((start, self.points[-1].time))
        return intervals

    def reset(self) -> None:
        """Clear the recorded timeline."""
        self.points = []
        self._next_record_time = 0.0
