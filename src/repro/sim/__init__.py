"""Discrete-time simulation engine for batteryless systems.

The engine composes a harvesting frontend, an energy buffer, a power gate,
an MCU, and a workload into a :class:`BatterylessSystem`, then steps the
energy balance forward in time: harvested energy flows into the buffer, the
gate decides whether the platform runs, the workload places a load on the
buffer, and every joule is accounted for in the result ledgers.
"""

from repro.sim.system import BatterylessSystem
from repro.sim.engine import Simulator
from repro.sim.batch import BatchSimulator
from repro.sim.recorder import Recorder, TimelinePoint
from repro.sim.results import SimulationResult
from repro.sim.metrics import (
    aggregate_results,
    figure_of_merit,
    normalize_to_reference,
    on_time_fraction,
)

__all__ = [
    "BatterylessSystem",
    "Simulator",
    "BatchSimulator",
    "Recorder",
    "TimelinePoint",
    "SimulationResult",
    "figure_of_merit",
    "normalize_to_reference",
    "aggregate_results",
    "on_time_fraction",
]
