"""Vectorized lockstep simulation of many independent systems.

:class:`BatchSimulator` advances N independent ``(config, trace, workload)``
systems that share one power trace through the same energy balance as the
scalar :class:`~repro.sim.engine.Simulator`, but with the per-step buffer,
harvester, and gate arithmetic vectorized across all lanes in shared numpy
state arrays.  The scalar engine's per-step cost is dominated by Python
dispatch; one batched step amortizes that dispatch over every lane, which is
what makes wide grid sweeps (many buffer sizes against one trace) scale.

Lockstep semantics
------------------

All lanes advance together, one adaptive step per lane per batch iteration,
but lanes *diverge*: an on lane steps by ``dt_on`` while an off lane steps
by ``dt_off`` (dropping to ``dt_on`` for a predicted enable, exactly like
the scalar engine's enable prediction), so per-lane simulated clocks drift
apart and every trace/gate/buffer quantity is evaluated per lane at that
lane's own timestamp.  Divergence is handled by masking:

* **timestep masks** pick each lane's ``dt`` from its gate state and the
  batched gate-enable prediction (a vectorized
  :meth:`~repro.buffers.base.EnergyBuffer.post_harvest_voltage_bound`);
* **gate masks** apply enable/brown-out transitions only to the lanes that
  crossed a threshold this step;
* **retired lanes** — those that finished their trace and drained, or hit
  the simulation hard stop — are finalized into results and *compacted out*
  of the state arrays, so a long-lived lane never pays for dead neighbours.

Equivalence contract
--------------------

For every batched buffer architecture the per-lane trajectory (charge,
gate transitions, timestamps, workload behaviour) is **bit-identical** to
running that lane alone through the scalar engine with
``fast_forward=False``, because every vectorized expression mirrors the
scalar update rule operation for operation.  The energy-ledger totals agree
with the scalar engine's default fast path to floating-point summation
order (the fast path batches additions differently), which is far inside
the ``1e-9`` relative tolerance the equivalence tests pin.

Two scalar behaviours are reproduced in aggregated form, exactly as the
scalar off-phase fast path already does: while a lane is off, its workload
is stepped once over the whole off interval rather than once per ``dt_off``
(workload off-behaviour is interval-based, so any partition of the interval
is equivalent), and its MCU accounting is skipped (the off mode draws
nothing and contributes to no reported metric).

On lanes use the same workload-quiescence protocol as the scalar engine's
on-phase fast path, expressed as per-lane hint masks: after a normal on
step, a lane caches the :class:`~repro.workloads.base.QuiescenceHint` its
workload declares and, while the hint holds (the lane's step end stays
before the hint expiry and its post-harvest voltage below the wake
voltage — the exact observation point the stepped workload would use),
subsequent iterations skip the per-lane Python ``workload.step`` dispatch
and reuse the promised constant demand.  The buffer/gate/MCU arithmetic
still advances per step in the shared arrays, so trajectories are
unchanged; the skipped window is flushed through
:meth:`~repro.workloads.base.Workload.skip_quiescent` before the lane next
steps normally, browns out, retires, or hands off.  Lanes whose hints
don't apply (no promise, or an energy-guarded longevity wait) simply step.
``fast_forward=False`` disables the skip along with the scalar tail's fast
paths.

The simulator does not support attaching a :class:`~repro.sim.recorder.Recorder`;
timeline recording is a single-system concern and stays on the scalar engine.
"""

from __future__ import annotations

import time as wall_clock
from typing import List, Optional, Sequence

import numpy as np

from repro.buffers.morphy_batch import MorphyBatchKernel
from repro.buffers.react_batch import ReactBatchKernel
from repro.buffers.static import StaticBatchKernel
from repro.exceptions import SimulationError
from repro.platform.mcu import PowerMode
from repro.sim.engine import Simulator
from repro.sim.results import SimulationResult
from repro.sim.segments import LaneSegmentPlanner, cluster_expiry_budgets
from repro.sim.system import BatterylessSystem
from repro.workloads.base import StepContext

#: Default batch width at or below which the lockstep loop hands surviving
#: lanes to the scalar engine (see ``BatchSimulator.scalar_tail_lanes``).
DEFAULT_SCALAR_TAIL_LANES = 4

#: The in-tree lockstep kernels, tried in order.  Each ``build`` returns a
#: kernel when *every* lane's buffer fits its vectorized recurrence, else
#: None; lanes of different kernel families never share a batch (the
#: experiment layer partitions on
#: :meth:`~repro.buffers.base.EnergyBuffer.batch_key` before building one).
KERNEL_BUILDERS = (
    StaticBatchKernel.build,
    MorphyBatchKernel.build,
    ReactBatchKernel.build,
)


def build_batch_kernel(buffers):
    """The first kernel that accepts every buffer in ``buffers``, or None."""
    for builder in KERNEL_BUILDERS:
        kernel = builder(buffers)
        if kernel is not None:
            return kernel
    return None


class BatchSimulator:
    """Lockstep simulator for N systems sharing one power trace.

    Parameters mirror :class:`~repro.sim.engine.Simulator`; every lane uses
    the same timestep policy and drain methodology.  All systems must share
    the same trace and an identical regulator model, and every buffer must
    fit one lockstep kernel (equal, non-None
    :meth:`~repro.buffers.base.EnergyBuffer.batch_key`); callers route
    other lanes to the scalar engine.
    """

    def __init__(
        self,
        systems: Sequence[BatterylessSystem],
        dt_on: float = 0.01,
        dt_off: float = 0.05,
        drain_after_trace: bool = True,
        max_drain_time: float = 600.0,
        max_steps: int = 50_000_000,
        scalar_tail_lanes: int = DEFAULT_SCALAR_TAIL_LANES,
        fast_forward: bool = True,
        cluster_hint_expiries: bool = True,
    ) -> None:
        if not systems:
            raise SimulationError("a batch simulation needs at least one system")
        if dt_on <= 0.0 or dt_off <= 0.0:
            raise SimulationError("time steps must be positive")
        if dt_off < dt_on:
            raise SimulationError("dt_off should be at least as large as dt_on")
        if max_drain_time < 0.0:
            raise SimulationError("max drain time must be non-negative")
        if scalar_tail_lanes < 0:
            raise SimulationError("scalar tail width must be non-negative")
        self.systems = list(systems)
        self.dt_on = dt_on
        self.dt_off = dt_off
        self.drain_after_trace = drain_after_trace
        self.max_drain_time = max_drain_time
        self.max_steps = max_steps
        #: Once lane retirement narrows the batch to this many survivors, the
        #: remaining lanes are handed to the scalar engine mid-flight (every
        #: piece of lane state lives in, or is written back to, the component
        #: objects): an array step over a handful of lanes costs more in
        #: numpy dispatch than the scalar per-step machinery it replaces.
        #: Zero disables the hand-off.
        self.scalar_tail_lanes = scalar_tail_lanes
        #: Whether hand-off Simulators may use the scalar fast paths and
        #: the lockstep loop may honour workload quiescence hints (skipping
        #: per-lane workload dispatch while a hint holds).  The lockstep
        #: loop's electrical arithmetic is always step-by-step (that is
        #: what vectorizes) — pass False for pure step-by-step ablations.
        self.fast_forward = fast_forward
        #: Whether on-phase segment plans may align the budgets of lanes
        #: whose hint expiries nearly coincide (see
        #: :func:`~repro.sim.segments.cluster_expiry_budgets`) — a pure
        #: budget reduction, so trajectories are identical either way.
        #: Clustering only engages when the kernel also declares
        #: ``wants_expiry_clustering``: it trades skip length for
        #: phase-lock, which pays off for REACT's all-lanes-must-agree
        #: replay but measurably slows kernels whose lanes replay fine
        #: unaligned (the Morphy and capacitance sweeps profile slower
        #: with it forced on).  ``False`` disables it outright — the
        #: differential suite pins the bit-equality claim on that knob.
        self.cluster_hint_expiries = cluster_hint_expiries

        reference = self.systems[0].frontend
        for system in self.systems:
            frontend = system.frontend
            if frontend.trace is not reference.trace and not (
                frontend.trace.sample_period == reference.trace.sample_period
                and np.array_equal(frontend.trace.powers, reference.trace.powers)
            ):
                raise SimulationError("batched systems must share one power trace")
            if type(frontend.regulator) is not type(reference.regulator) or (
                frontend.regulator != reference.regulator
            ):
                raise SimulationError("batched systems must share one regulator model")
        self._kernel = build_batch_kernel([s.buffer for s in self.systems])
        if self._kernel is None:
            unbatchable = [
                s.buffer.name for s in self.systems if not s.buffer.can_batch()
            ]
            if unbatchable:
                raise SimulationError(
                    "buffers without a batched kernel: "
                    + ", ".join(unbatchable)
                    + " (run them through the scalar Simulator instead)"
                )
            raise SimulationError(
                "batched buffers with incompatible kernels in one batch: "
                + ", ".join(sorted({str(s.buffer.batch_key()) for s in self.systems}))
                + " (partition lanes by EnergyBuffer.batch_key first)"
            )

    @classmethod
    def from_settings(
        cls, systems: Sequence[BatterylessSystem], settings, **overrides
    ) -> "BatchSimulator":
        """A simulator for one lane partition at ``settings`` fidelity.

        ``settings`` is anything exposing the experiment-settings timestep
        surface (``effective_dt_on``, ``effective_dt_off``,
        ``max_drain_time``, ``fast_forward``) — duck-typed so this layer
        never imports the experiments package.  This is how the batch-style
        execution backends turn a partition of grid specs into a lockstep
        batch; keyword ``overrides`` win over the settings-derived values.
        """
        kwargs = dict(
            dt_on=settings.effective_dt_on,
            dt_off=settings.effective_dt_off,
            max_drain_time=settings.max_drain_time,
            fast_forward=settings.fast_forward,
        )
        kwargs.update(overrides)
        return cls(systems, **kwargs)

    def run(self) -> List[SimulationResult]:
        """Simulate every lane to completion; results in input order."""
        started_at = wall_clock.perf_counter()
        systems = self.systems
        n = len(systems)
        kernel = self._kernel
        trace = systems[0].frontend.trace
        regulator = systems[0].frontend.regulator
        trace_duration = systems[0].frontend.duration
        hard_stop = trace_duration + (
            self.max_drain_time if self.drain_after_trace else 0.0
        )
        dt_on = self.dt_on
        dt_off = self.dt_off
        predict_enable = dt_off > dt_on
        drain_after_trace = self.drain_after_trace

        # Per-lane Python objects (compacted alongside the state arrays).
        lane_systems = list(systems)
        workloads = [s.workload for s in systems]
        mcus = [s.mcu for s in systems]
        gates = [s.gate for s in systems]
        frontends = [s.frontend for s in systems]
        buffers = kernel.buffers
        original_index = list(range(n))

        # Per-lane state arrays.
        time = np.zeros(n)
        enabled = np.zeros(n, dtype=bool)
        latency = np.full(n, np.nan)
        enable_count = np.zeros(n, dtype=np.int64)
        brownout_count = np.zeros(n, dtype=np.int64)
        # Start of the pending aggregated off-interval the workload has not
        # yet been stepped over; every lane cold-starts off at t = 0.
        off_start = np.zeros(n)
        # Per-lane on-phase quiescence state (plain lists: every consumer is
        # scalar per-lane code).  A lane with a cached hint skips its
        # workload.step while the hint holds; the skipped window
        # [skip_start, lane time) spans skip_steps steps and is flushed
        # through Workload.skip_quiescent before the workload next runs.
        use_hints = self.fast_forward
        minus_infinity = float("-inf")
        infinity = float("inf")
        hint_until = [minus_infinity] * n
        hint_wake = [infinity] * n
        hint_load = [0.0] * n
        hint_mode = [PowerMode.OFF] * n
        skip_start = [0.0] * n
        skip_steps = [0] * n
        enable_voltage = np.array([g.enable_voltage for g in gates])
        brownout_voltage = np.array([g.brownout_voltage for g in gates])
        quiescent = np.array([g.quiescent_current for g in gates])
        # Buffers whose overhead current depends on live state (REACT's
        # tracks the output voltage and connected-bank count) cannot have
        # it cached at batch start: their kernel declares
        # ``dynamic_overhead`` and the loop instead adds
        # ``kernel.overhead_current(enabled)`` to the assembled load every
        # step — re-evaluated at the exact point the scalar engine calls
        # ``buffer.overhead_current`` — while the static contributions here
        # are zeroed (adding 0.0 first keeps the scalar addition order:
        # ``(q + 0.0) + o == q + o``).
        dynamic_overhead = bool(getattr(kernel, "dynamic_overhead", False))
        if dynamic_overhead:
            off_load = quiescent + np.zeros(n)
        else:
            off_load = quiescent + np.array(
                [b.overhead_current(False) for b in buffers]
            )
        raw_energy = np.zeros(n)
        delivered_energy = np.zeros(n)

        # Per-lane MCU bookkeeping, unrolled out of the Microcontroller
        # objects: the scalar engine's per-step ``set_mode`` / ``current`` /
        # ``step`` calls reduce, for the quantities any result reports, to a
        # mode-dependent current lookup plus one per-mode time accumulator.
        # Accumulating python floats here and writing them back at
        # retirement reproduces the scalar totals bit-for-bit (each
        # accumulator receives exactly the additions the scalar dict entry
        # would, in the same order).  ``charge_drawn`` and OFF-mode time are
        # not accumulated: neither feeds any reported metric.
        active_current = [m.active_current for m in mcus]
        sleep_current = [m.sleep_current for m in mcus]
        deep_sleep_current = [m.deep_sleep_current for m in mcus]
        mcu_off_current = [m.off_current for m in mcus]
        time_active = [m.time_in_mode.get(PowerMode.ACTIVE, 0.0) for m in mcus]
        time_sleep = [m.time_in_mode.get(PowerMode.SLEEP, 0.0) for m in mcus]
        time_deep_sleep = [
            m.time_in_mode.get(PowerMode.DEEP_SLEEP, 0.0) for m in mcus
        ]
        if dynamic_overhead:
            on_overhead = [0.0] * n
        else:
            on_overhead = [b.overhead_current(True) for b in buffers]

        results: List[Optional[SimulationResult]] = [None] * n

        def flush_off(index: int) -> None:
            """Step the workload over the pending aggregated off interval."""
            start = float(off_start[index])
            now = float(time[index])
            if now > start:
                kernel.sync_lane(index)
                workloads[index].step(
                    StepContext(start, now - start, False, buffers[index])
                )

        def flush_on(index: int) -> None:
            """Account the pending skipped quiescent window, ending the hint."""
            pending = skip_steps[index]
            if pending:
                start = skip_start[index]
                now = float(time[index])
                kernel.sync_lane(index)
                workloads[index].skip_quiescent(
                    StepContext(start, now - start, True, buffers[index]),
                    pending,
                    dt_on,
                )
                skip_steps[index] = 0
            hint_until[index] = minus_infinity

        def write_back(index: int):
            """Push lane ``index``'s array state into its component objects.

            After this the lane's system is indistinguishable from one the
            scalar engine simulated to the same timestamp.  Returns the
            lane's buffer.
            """
            buffer = kernel.finalize_lane(index)
            gate = gates[index]
            gate.enabled = bool(enabled[index])
            gate.enable_count = int(enable_count[index])
            gate.brownout_count = int(brownout_count[index])
            frontends[index].credit(
                float(raw_energy[index]), float(delivered_energy[index])
            )
            mcu = mcus[index]
            mcu.time_in_mode[PowerMode.ACTIVE] = time_active[index]
            mcu.time_in_mode[PowerMode.SLEEP] = time_sleep[index]
            mcu.time_in_mode[PowerMode.DEEP_SLEEP] = time_deep_sleep[index]
            return buffer

        def retire(index: int) -> None:
            """Finalize one lane into its SimulationResult."""
            if enabled[index]:
                # End-of-simulation power-down, exactly as the scalar engine.
                flush_on(index)
                workloads[index].on_power_loss(float(time[index]))
                mcus[index].power_off()
            else:
                flush_off(index)
            buffer = write_back(index)
            mcu = mcus[index]
            workload = workloads[index]
            metrics = workload.metrics()
            lane_latency = float(latency[index])
            results[original_index[index]] = SimulationResult(
                trace_name=trace.name,
                buffer_name=buffer.name,
                workload_name=workload.name,
                simulated_time=float(time[index]),
                trace_duration=trace_duration,
                latency=None if np.isnan(lane_latency) else lane_latency,
                on_time=mcu.on_time,
                active_time=mcu.active_time,
                enable_count=int(enable_count[index]),
                brownout_count=int(brownout_count[index]),
                work_units=metrics.work_units,
                workload_metrics=metrics.as_dict(),
                buffer_ledger=buffer.ledger.as_dict(),
                energy_offered=buffer.ledger.offered,
                energy_delivered_to_load=buffer.ledger.delivered,
            )

        def hand_off(index: int) -> None:
            """Finish lane ``index`` on the scalar engine from its mid-state.

            The pending aggregated off interval is flushed first, so the
            workload's clock is current; everything else transfers through
            :func:`write_back`.  The scalar engine then continues the exact
            same step sequence this loop would have executed (plus its own
            off-phase fast path, which is equivalence-tested separately).
            """
            if enabled[index]:
                flush_on(index)
            else:
                flush_off(index)
            write_back(index)
            lane_latency = float(latency[index])
            simulator = Simulator(
                lane_systems[index],
                dt_on=self.dt_on,
                dt_off=self.dt_off,
                drain_after_trace=drain_after_trace,
                max_drain_time=self.max_drain_time,
                max_steps=self.max_steps,
                fast_forward=self.fast_forward,
                start_time=float(time[index]),
                initial_latency=None if np.isnan(lane_latency) else lane_latency,
            )
            results[original_index[index]] = simulator.run()

        # Loop-invariant hoists and sticky phase flags.  ``n_enabled`` tracks
        # the number of powered lanes as a plain int (transitions are rare,
        # array reductions per step are not); ``all_past_trace`` goes (and
        # stays) True once every surviving lane is in its post-trace drain,
        # where the harvested power is identically zero and the whole
        # harvest block can be skipped.
        n_enabled = 0
        all_past_trace = False
        scalar_tail_lanes = self.scalar_tail_lanes
        quiescent_list = quiescent.tolist()
        kernel_set_system_on = getattr(kernel, "set_system_on", None)
        cluster_hints = self.cluster_hint_expiries and bool(
            getattr(kernel, "wants_expiry_clustering", False)
        )
        dt_on_full = np.full(n, dt_on)
        dt_off_full = np.full(n, dt_off)
        # Zero-order-hold trace lookup table (sentinel zero sample past the
        # end); semantics are owned by PowerTrace and pinned against
        # power_at/powers_at by the trace tests.
        powers_padded, sentinel_index = trace.zero_order_hold_table()
        sample_period = trace.sample_period
        # Lane-group segment fast-forwarding: whole constant-power segments
        # (shared planner contract with the scalar engine — see
        # repro.sim.segments) replayed through the kernel's vectorized
        # fast_forward/fast_forward_on before falling back to a normal
        # lockstep step for the disagreeing minority of lanes.
        breakpoints = regulator.efficiency_breakpoints()
        use_fast_forward = (
            self.fast_forward
            and breakpoints is not None
            and getattr(kernel, "supports_fast_forward", False)
            and all(b.can_fast_forward() for b in buffers)
        )
        lane_planner = (
            LaneSegmentPlanner(
                sample_period,
                sentinel_index,
                trace_duration,
                hard_stop,
                breakpoints,
                dt_on,
                dt_off,
            )
            if use_fast_forward
            else None
        )
        iterations = 0
        if n <= scalar_tail_lanes:
            # Too narrow for an array step to ever pay for itself: run every
            # lane on the scalar engine from the start.
            for index in range(n):
                hand_off(index)
        # ``n`` never changes inside the loop; it guards entry only — the
        # loop exits through the all-retired / tail-hand-off breaks above.
        while n > scalar_tail_lanes:
            if iterations >= self.max_steps:
                raise SimulationError(
                    f"simulation exceeded {self.max_steps} steps without terminating"
                )

            # -- lane retirement (the scalar engine's two loop-exit tests) --
            done = time >= hard_stop
            if drain_after_trace:
                if not all_past_trace:
                    past_trace = time >= trace_duration
                    any_past = bool(past_trace.any())
                    all_past_trace = any_past and bool(past_trace.all())
                else:
                    any_past = True
                    past_trace = True
                if any_past:
                    done = done | (
                        past_trace & ~enabled & kernel.drained_mask(enable_voltage)
                    )
            else:
                done = done | (time >= trace_duration)
            if done.any():
                for index in np.nonzero(done)[0]:
                    retire(int(index))
                keep = ~done
                if not keep.any():
                    break
                kernel.compact(keep)
                lane_systems = [s for s, k in zip(lane_systems, keep) if k]
                workloads = [w for w, k in zip(workloads, keep) if k]
                mcus = [m for m, k in zip(mcus, keep) if k]
                gates = [g for g, k in zip(gates, keep) if k]
                frontends = [f for f, k in zip(frontends, keep) if k]
                buffers = kernel.buffers
                original_index = [i for i, k in zip(original_index, keep) if k]
                active_current = [v for v, k in zip(active_current, keep) if k]
                sleep_current = [v for v, k in zip(sleep_current, keep) if k]
                deep_sleep_current = [
                    v for v, k in zip(deep_sleep_current, keep) if k
                ]
                mcu_off_current = [v for v, k in zip(mcu_off_current, keep) if k]
                time_active = [v for v, k in zip(time_active, keep) if k]
                time_sleep = [v for v, k in zip(time_sleep, keep) if k]
                time_deep_sleep = [v for v, k in zip(time_deep_sleep, keep) if k]
                on_overhead = [v for v, k in zip(on_overhead, keep) if k]
                hint_until = [v for v, k in zip(hint_until, keep) if k]
                hint_wake = [v for v, k in zip(hint_wake, keep) if k]
                hint_load = [v for v, k in zip(hint_load, keep) if k]
                hint_mode = [v for v, k in zip(hint_mode, keep) if k]
                skip_start = [v for v, k in zip(skip_start, keep) if k]
                skip_steps = [v for v, k in zip(skip_steps, keep) if k]
                time = time[keep]
                enabled = enabled[keep]
                latency = latency[keep]
                enable_count = enable_count[keep]
                brownout_count = brownout_count[keep]
                off_start = off_start[keep]
                enable_voltage = enable_voltage[keep]
                brownout_voltage = brownout_voltage[keep]
                quiescent = quiescent[keep]
                quiescent_list = quiescent.tolist()
                off_load = off_load[keep]
                raw_energy = raw_energy[keep]
                delivered_energy = delivered_energy[keep]
                n_enabled = int(enabled.sum())
                dt_on_full = dt_on_full[keep]
                dt_off_full = dt_off_full[keep]
                # Every per-lane container above must be compacted; a
                # forgotten one would silently misalign lanes, so fail
                # loudly instead.
                survivors = len(lane_systems)
                assert all(
                    len(container) == survivors
                    for container in (
                        workloads, mcus, gates, frontends, buffers,
                        original_index, active_current, sleep_current,
                        deep_sleep_current, mcu_off_current, time_active,
                        time_sleep, time_deep_sleep, on_overhead, time,
                        enabled, latency, enable_count, brownout_count,
                        off_start, enable_voltage, brownout_voltage,
                        quiescent, quiescent_list, off_load, raw_energy,
                        delivered_energy, dt_on_full, dt_off_full,
                        hint_until, hint_wake, hint_load, hint_mode,
                        skip_start, skip_steps,
                    )
                ), "per-lane state fell out of sync during compaction"
                if len(lane_systems) <= scalar_tail_lanes:
                    for index in range(len(lane_systems)):
                        hand_off(index)
                    break

            lanes = len(buffers)

            # -- segment fast-forward (lane groups skip whole segments) --
            # Lanes whose next stretch is provably eventless — off lanes
            # inside one trace segment below every stop, on lanes inside a
            # live quiescence-hint window — replay it in one vectorized
            # whole-segment update through the kernel (bit-identical to
            # stepping, see LockstepKernel); only the disagreeing minority
            # falls through to the normal lockstep step below, with the
            # fast-forwarded lanes masked to exact no-ops.
            have_skipped = False
            skipped = None
            if use_fast_forward:
                needs_full_batch = kernel.fast_forward_needs_full_batch
                budget = self.max_steps - iterations
                voltage = kernel.voltage
                raw = powers_padded[
                    np.minimum(
                        (time / sample_period).astype(np.int64), sentinel_index
                    )
                ]
                delivered = regulator.delivered_power_batch(raw, voltage)
                raw_list = raw.tolist()
                delivered_list = delivered.tolist()
                if n_enabled < lanes and (not needs_full_batch or n_enabled == 0):
                    plan = lane_planner.plan_off(
                        time, voltage, ~enabled, enable_voltage, budget
                    )
                    group = plan.steps > 0
                    if group.any() and (
                        not needs_full_batch or bool(group.all())
                    ):
                        consumed, new_time = kernel.fast_forward(
                            delivered * dt_off, off_load, dt_off, time, plan
                        )
                        if consumed.any():
                            # Per-step additive energy accounting (the same
                            # additions, in the same order, the masked main
                            # loop would have performed per lane).
                            consumed_list = consumed.tolist()
                            for index in np.nonzero(consumed)[0].tolist():
                                steps_taken = consumed_list[index]
                                raw_power = raw_list[index]
                                if raw_power > 0.0:
                                    add = raw_power * dt_off
                                    total = float(raw_energy[index])
                                    for _ in range(steps_taken):
                                        total += add
                                    raw_energy[index] = total
                                power = delivered_list[index]
                                if power > 0.0:
                                    add = power * dt_off
                                    total = float(delivered_energy[index])
                                    for _ in range(steps_taken):
                                        total += add
                                    delivered_energy[index] = total
                            time = new_time
                            skipped = consumed > 0
                if n_enabled:
                    until = np.asarray(hint_until)
                    on_mask = enabled & (until != minus_infinity)
                    if on_mask.any() and (
                        not needs_full_batch or bool(on_mask.all())
                    ):
                        plan = lane_planner.plan_on(
                            time,
                            voltage,
                            on_mask,
                            until,
                            np.asarray(hint_wake),
                            budget,
                        )
                        if cluster_hints:
                            plan = cluster_expiry_budgets(plan, until, dt_on)
                        group = plan.steps > 0
                        if group.any() and (
                            not needs_full_batch or bool(group.all())
                        ):
                            pre_times = time
                            consumed, new_time = kernel.fast_forward_on(
                                delivered * dt_on,
                                np.asarray(hint_load),
                                dt_on,
                                time,
                                plan,
                                brownout_voltage,
                            )
                            if consumed.any():
                                consumed_list = consumed.tolist()
                                start_list = pre_times.tolist()
                                for index in np.nonzero(consumed)[0].tolist():
                                    steps_taken = consumed_list[index]
                                    raw_power = raw_list[index]
                                    if raw_power > 0.0:
                                        add = raw_power * dt_on
                                        total = float(raw_energy[index])
                                        for _ in range(steps_taken):
                                            total += add
                                        raw_energy[index] = total
                                    power = delivered_list[index]
                                    if power > 0.0:
                                        add = power * dt_on
                                        total = float(delivered_energy[index])
                                        for _ in range(steps_taken):
                                            total += add
                                        delivered_energy[index] = total
                                    # Replay the hint mask's per-step mode
                                    # accounting and extend the pending
                                    # skipped window (flushed through
                                    # skip_quiescent when the hint ends).
                                    mode = hint_mode[index]
                                    if mode is PowerMode.SLEEP:
                                        total = time_sleep[index]
                                        for _ in range(steps_taken):
                                            total += dt_on
                                        time_sleep[index] = total
                                    elif mode is PowerMode.ACTIVE:
                                        total = time_active[index]
                                        for _ in range(steps_taken):
                                            total += dt_on
                                        time_active[index] = total
                                    elif mode is PowerMode.DEEP_SLEEP:
                                        total = time_deep_sleep[index]
                                        for _ in range(steps_taken):
                                            total += dt_on
                                        time_deep_sleep[index] = total
                                    if skip_steps[index] == 0:
                                        skip_start[index] = start_list[index]
                                    skip_steps[index] += steps_taken
                                time = new_time
                                on_skipped = consumed > 0
                                skipped = (
                                    on_skipped
                                    if skipped is None
                                    else skipped | on_skipped
                                )
                if skipped is not None:
                    if bool(skipped.all()):
                        # Every lane advanced by whole segments: no normal
                        # step needed this iteration at all.
                        iterations += 1
                        continue
                    have_skipped = True

            # -- 0. per-lane timestep (with batched gate-enable prediction) --
            voltage = kernel.voltage
            if n_enabled == lanes:
                dt = dt_on_full
            elif n_enabled == 0:
                dt = dt_off_full
            else:
                dt = np.where(enabled, dt_on, dt_off)
            if all_past_trace:
                harvesting = False
                if predict_enable and n_enabled < lanes:
                    # No harvest can arrive, but the bound still matters: a
                    # Morphy controller poll can chain groups in series and
                    # raise the output voltage across the enable threshold
                    # without any energy input.  The scalar engine keeps
                    # predicting past the trace end (its bound of zero
                    # energy degenerates to the present voltage), so the
                    # batch must too or the dt_off->dt_on switch lands one
                    # step late and the additive clocks drift.
                    dt = np.where(~enabled & (voltage >= enable_voltage), dt_on, dt)
            else:
                raw = powers_padded[
                    np.minimum(
                        (time / sample_period).astype(np.int64), sentinel_index
                    )
                ]
                delivered = regulator.delivered_power_batch(raw, voltage)
                harvesting = bool(delivered.any())
                if predict_enable and n_enabled < lanes:
                    # Run even when nothing is harvested: the bound then
                    # degenerates to the present voltage, which still drops
                    # to dt_on for a (pre-charged) lane already at the
                    # threshold — exactly the scalar engine's behaviour.
                    bound = kernel.post_harvest_voltage_bound(delivered * dt_off)
                    dt = np.where(~enabled & (bound >= enable_voltage), dt_on, dt)
            if have_skipped:
                # Fast-forwarded lanes already consumed this iteration's
                # wall-clock budget: zero dt turns every per-lane update
                # below (ledger adds, harvest, draw, leakage) into an exact
                # bitwise no-op for them.
                dt = np.where(skipped, 0.0, dt)

            # -- 1. harvest --
            # Raw energy accrues whenever the trace is live (the scalar
            # frontend counts raw power even when the regulator delivers
            # nothing, e.g. below a boost converter's quiescent power).
            # Zero *delivered* energy is an exact no-op in the scalar
            # engine (ledger adds of 0.0, an early-out harvest), so
            # skipping the buffer update when no lane harvests preserves
            # bit equality.
            if not all_past_trace:
                raw_energy += raw * dt
            if harvesting:
                energy = delivered * dt
                delivered_energy += energy
                kernel.harvest(energy)

            # -- 2. power gating --
            end_time = time + dt
            voltage = kernel.voltage
            if n_enabled == 0:
                enabling = voltage >= enable_voltage
                changed = enabling
            elif n_enabled == lanes:
                enabling = None
                changed = voltage <= brownout_voltage
            else:
                enabling = ~enabled & (voltage >= enable_voltage)
                changed = enabling | (enabled & (voltage <= brownout_voltage))
            if have_skipped:
                # A fast-forwarded lane's plan stops *before* any step whose
                # post-harvest voltage could cross a gate threshold, so no
                # transition can hide inside the skipped segment; the lane's
                # next normal step re-runs this check at the proper
                # observation point.
                changed = changed & ~skipped
                if enabling is not None:
                    enabling = enabling & ~skipped
            if changed.any():
                browning = changed if enabling is None else changed & ~enabling
                if enabling is not None and enabling.any():
                    enable_count[enabling] += 1
                    latency = np.where(
                        enabling & np.isnan(latency), end_time, latency
                    )
                    for index in np.nonzero(enabling)[0]:
                        index = int(index)
                        flush_off(index)
                        mcus[index].set_mode(PowerMode.SLEEP)
                    enabled = enabled | enabling
                if browning.any():
                    brownout_count[browning] += 1
                    for index in np.nonzero(browning)[0]:
                        index = int(index)
                        flush_on(index)
                        mcus[index].power_off()
                        workloads[index].on_power_loss(float(time[index]))
                        off_start[index] = time[index]
                    enabled = enabled & ~browning
                n_enabled = int(enabled.sum())

            # -- 3. workload and load current --
            # Off lanes place only the gate's quiescent load; their workload
            # steps are aggregated and flushed at the next enable/retirement.
            # On lanes with a live quiescence hint skip the Python workload
            # dispatch and reuse the promised demand (the hint check uses
            # the post-harvest voltage — exactly what a stepped workload
            # would observe); the rest step normally and may cache a fresh
            # hint for the iterations that follow.
            if n_enabled:
                load = off_load.copy()
                time_list = time.tolist()
                dt_list = dt.tolist()
                if have_skipped:
                    on_indices = np.nonzero(enabled & ~skipped)[0].tolist()
                else:
                    on_indices = np.nonzero(enabled)[0].tolist()
                step_indices = []
                if use_hints:
                    end_list = end_time.tolist()
                    voltage_list = voltage.tolist()
                    for index in on_indices:
                        # The expiry bound is exclusive: a step ending
                        # exactly on it may fire the workload's timer
                        # (QuiescenceHint's contract), so that step runs
                        # normally.
                        if (
                            end_list[index] < hint_until[index]
                            and voltage_list[index] < hint_wake[index]
                        ):
                            mode = hint_mode[index]
                            dt_lane = dt_list[index]
                            if mode is PowerMode.SLEEP:
                                time_sleep[index] += dt_lane
                            elif mode is PowerMode.ACTIVE:
                                time_active[index] += dt_lane
                            elif mode is PowerMode.DEEP_SLEEP:
                                time_deep_sleep[index] += dt_lane
                            if skip_steps[index] == 0:
                                skip_start[index] = time_list[index]
                            skip_steps[index] += 1
                            load[index] = hint_load[index]
                        else:
                            flush_on(index)
                            step_indices.append(index)
                else:
                    step_indices = on_indices
                kernel.sync_lanes(step_indices)
                for index in step_indices:
                    demand = workloads[index].step(
                        StepContext(
                            time_list[index], dt_list[index], True, buffers[index]
                        )
                    )
                    mode = demand.mcu_mode
                    dt_lane = dt_list[index]
                    if mode is PowerMode.SLEEP:
                        current = sleep_current[index]
                        time_sleep[index] += dt_lane
                    elif mode is PowerMode.ACTIVE:
                        current = active_current[index]
                        time_active[index] += dt_lane
                    elif mode is PowerMode.DEEP_SLEEP:
                        current = deep_sleep_current[index]
                        time_deep_sleep[index] += dt_lane
                    else:
                        current = mcu_off_current[index]
                    load[index] = (
                        current
                        + demand.peripheral_current
                        + quiescent_list[index]
                        + on_overhead[index]
                    )
                    if use_hints:
                        hint = workloads[index].quiescent_until(
                            StepContext(
                                end_list[index], dt_on, True, buffers[index]
                            )
                        )
                        if hint is None:
                            continue
                        wake = hint.wake_on_voltage
                        if wake is None and buffers[index].longevity_request > 0.0:
                            # An energy-guarded longevity wait has no exact
                            # voltage mask; such lanes simply step.
                            continue
                        promised = hint.demand if hint.demand is not None else demand
                        promised_mode = promised.mcu_mode
                        if promised_mode is PowerMode.SLEEP:
                            promised_current = sleep_current[index]
                        elif promised_mode is PowerMode.ACTIVE:
                            promised_current = active_current[index]
                        elif promised_mode is PowerMode.DEEP_SLEEP:
                            promised_current = deep_sleep_current[index]
                        else:
                            promised_current = mcu_off_current[index]
                        hint_until[index] = hint.no_demand_change_before_time
                        hint_wake[index] = (
                            infinity if wake is None else wake
                        )
                        hint_mode[index] = promised_mode
                        hint_load[index] = (
                            promised_current
                            + promised.peripheral_current
                            + quiescent_list[index]
                            + on_overhead[index]
                        )
            else:
                load = off_load
            if dynamic_overhead:
                # State-dependent overhead, evaluated fresh against the
                # post-harvest buffer state — the observation point where
                # the scalar engine calls ``buffer.overhead_current`` while
                # assembling the load.  Adding it last preserves the
                # scalar addition order for both phases (the static
                # contribution above was built with ``+ 0.0`` in its
                # place).
                load = load + kernel.overhead_current(enabled)
            if have_skipped:
                # Zero the load too: a zero current (not just zero dt) is
                # what makes the draw an exact no-op for every kernel.
                load = np.where(skipped, 0.0, load)
            kernel.draw(load, dt)

            # -- 4. buffer housekeeping (leakage + controller polling) --
            if kernel_set_system_on is not None:
                # Kernels running a software controller (REACT's poll) need
                # the power-gate phase: the scalar engine passes post-gating
                # ``system_on`` into buffer.housekeeping.
                kernel_set_system_on(enabled)
            if have_skipped:
                # Suppress time-triggered controller polls for lanes whose
                # clocks already ran ahead during the segment replay.
                kernel.housekeeping(np.where(skipped, minus_infinity, time), dt)
            else:
                kernel.housekeeping(time, dt)

            time = end_time
            iterations += 1

        # Attribute the shared batch time evenly; lanes finished by the
        # scalar tail hand-off additionally keep their own measured time.
        elapsed = wall_clock.perf_counter() - started_at
        batch_share = (elapsed - sum(
            r.wall_clock_seconds for r in results if r is not None
        )) / n
        finished: List[SimulationResult] = []
        for result in results:
            assert result is not None  # every lane retires exactly once
            result.wall_clock_seconds += batch_share
            finished.append(result)
        return finished
