"""Segment-boundary planning for the fast-forward paths.

Both fast-forwarding engines — the scalar :class:`~repro.sim.engine.Simulator`
and the lockstep :class:`~repro.sim.batch.BatchSimulator` — advance whole
constant-power stretches of a simulation in one go.  What makes a stretch
skippable is the same in both: the trace sample is constant (zero-order
hold), the regulator sits inside one efficiency region, no recorder sample
point or quiescence-hint expiry falls inside it, and no gate transition
(enable, brown-out, wake) can occur before its end.  This module owns that
boundary arithmetic, in two presentations of one contract:

* :class:`SegmentPlanner` produces a scalar :class:`SegmentPlan` per
  fast-forward attempt for the scalar engine.  Every expression is the
  arithmetic the engine historically evaluated inline, so extracting it
  changes no result bit.
* :class:`LaneSegmentPlanner` produces a :class:`LaneSegmentPlan` of
  per-lane arrays for the batch engine, one entry per lane, with ``±inf``
  sentinels standing in for the scalar plan's ``None`` bounds (comparisons
  against ``inf`` / ``-inf`` are vacuously False, so kernels need no
  None-handling).

SegmentPlan invariants (what a consumer may rely on, and what any
third-party kernel honouring a plan must guarantee):

1. ``steps`` is a *budget*, not a promise: a consumer may commit fewer
   steps (stopping early is always safe) but never more.
2. Committed steps must stop **before** any step whose post-harvest output
   voltage would reach ``stop_above`` (the gate's enable voltage off-phase,
   a hint's wake voltage on-phase, or the nearest regulator efficiency
   breakpoint above) — the check happens pre-commit, against the exact
   post-harvest voltage or a bound that is ≥ it.
3. After a committed step whose end voltage falls below ``stop_below``
   (the nearest efficiency breakpoint at or below the starting voltage)
   the consumer must stop: the delivered power constant the segment was
   planned around no longer holds.  The committed step itself is fine — it
   started inside the region.
4. On-phase, no step may be committed from a starting voltage at or below
   the brown-out floor (the gate's ``<=`` convention); off-phase, once the
   buffer can no longer restart the platform (``drain_floor``), stepping
   must stop so drain termination is detected on schedule.
5. Time advances additively — ``time += dt`` once per committed step —
   never as ``start + n * dt``, so downstream time-keyed behaviour (trace
   indexing, controller poll schedules) sees bit-identical timestamps.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence, Tuple

import numpy as np

_INFINITY = float("inf")


def efficiency_stops(voltage, breakpoints, ceiling):
    """(stop_above, stop_below) fast-forward bounds for a constant-power run.

    Harvested power changes when the buffer voltage crosses a regulator
    efficiency breakpoint in either direction, so a fast-forwarded
    interval must stop at the nearest breakpoint above and below the
    present ``voltage``.  ``ceiling`` seeds the upper stop with a bound of
    the caller's own (the gate's enable voltage off-phase, a quiescence
    hint's wake voltage on-phase) or None.
    """
    stop_above = ceiling
    stop_below = None
    for breakpoint_voltage in breakpoints:
        if voltage < breakpoint_voltage:
            if stop_above is None or breakpoint_voltage < stop_above:
                stop_above = breakpoint_voltage
        elif stop_below is None or breakpoint_voltage > stop_below:
            stop_below = breakpoint_voltage
    return stop_above, stop_below


class SegmentPlan(NamedTuple):
    """One skippable constant-power segment for the scalar engine.

    ``steps`` below 1 means the fast path cannot make progress (an event
    or boundary is imminent) and the engine must take a normal step.
    """

    steps: int
    stop_above: Optional[float]
    stop_below: Optional[float]
    #: Off-phase only: once the output falls below this and the buffer
    #: cannot restart the platform, stepping must stop (drain termination).
    drain_floor: Optional[float] = None
    #: On-phase only: conservative usable-energy guard for a pending
    #: longevity request with no expressible wake voltage.
    wake_energy: Optional[float] = None


class SegmentPlanner:
    """Boundary arithmetic for the scalar engine's fast-forward attempts.

    Stateless apart from references to the frontend (trace segment edges),
    the recorder (pending sample points), and the run's hard stop; one
    instance serves a whole :meth:`~repro.sim.engine.Simulator.run`.
    """

    def __init__(self, frontend, recorder, trace_duration, hard_stop, breakpoints):
        self._frontend = frontend
        self._recorder = recorder
        self._trace_duration = trace_duration
        self._hard_stop = hard_stop
        self._breakpoints = breakpoints

    def plan_off(self, time, dt, voltage, enable_voltage, step_budget):
        """Plan an off-phase segment starting at ``time``.

        The segment is bounded by the current trace sample (zero-order
        hold), the drain hard stop, and any pending recorder sample point;
        the stops are the gate's enable voltage (the gate must engage on a
        normally-executed step) and the regulator efficiency breakpoints
        around ``voltage``.
        """
        limit = min(self._frontend.segment_end(time), self._hard_stop)
        max_steps = int((limit - time) / dt)
        if self._recorder is not None:
            max_steps = min(
                max_steps, int((self._recorder.next_record_time - time) / dt) - 1
            )
        max_steps = min(max_steps, step_budget)
        stop_above, stop_below = efficiency_stops(
            voltage, self._breakpoints, enable_voltage
        )
        drain_floor = enable_voltage if time >= self._trace_duration else None
        return SegmentPlan(max_steps, stop_above, stop_below, drain_floor=drain_floor)

    def plan_on(self, time, dt, voltage, hint, longevity_request, step_budget):
        """Plan a quiescent on-phase segment starting at ``time``.

        Bounded like :meth:`plan_off` plus the hint's expiry with one full
        step of conservative margin: the additively accumulated end time
        can overshoot a computed bound by rounding ulps, and an event at
        the expiry must be observed by a normal step — so the margin
        applies even when the expiry sits at or just past the trace-segment
        boundary.  The upper stop is the hint's wake voltage (or, for a
        pending longevity request with no expressible wake voltage, a
        usable-energy guard carried in ``wake_energy``).
        """
        limit = min(self._frontend.segment_end(time), self._hard_stop)
        max_steps = int((limit - time) / dt)
        expiry = hint.no_demand_change_before_time
        if expiry != _INFINITY:
            max_steps = min(max_steps, int((expiry - time) / dt) - 1)
        if self._recorder is not None:
            max_steps = min(
                max_steps, int((self._recorder.next_record_time - time) / dt) - 1
            )
        max_steps = min(max_steps, step_budget)
        stop_above, stop_below = efficiency_stops(
            voltage, self._breakpoints, hint.wake_on_voltage
        )
        wake_energy = None
        if hint.wake_on_voltage is None and longevity_request > 0.0:
            wake_energy = longevity_request
        return SegmentPlan(max_steps, stop_above, stop_below, wake_energy=wake_energy)


class LaneSegmentPlan(NamedTuple):
    """Per-lane segment plans for one batch fast-forward phase.

    The arrays are full batch width; a lane that should not (or cannot)
    fast-forward carries ``steps == 0``.  ``None`` bounds become ``±inf``
    sentinels: a kernel comparing ``voltage >= stop_above`` or
    ``voltage < stop_below`` gets vacuous False exactly where the scalar
    plan would carry None.
    """

    steps: np.ndarray  # int64 step budgets, 0 = do not fast-forward
    stop_above: np.ndarray  # +inf = unbounded above
    stop_below: np.ndarray  # -inf = unbounded below
    drain_floor: np.ndarray  # -inf = no drain termination check (off-phase)


def cluster_expiry_budgets(plan, hint_until, dt):
    """Align step budgets of lanes whose hint expiries nearly coincide.

    Lanes whose quiescence hints expire within one ``dt`` of each other
    (periodic workloads sharing a phase, staggered only by gate-enable
    jitter) tend to re-hint together too.  Left alone, their plans differ
    by a step or two, the lane that stops first forces a ragged
    normal-step iteration for the others, and the group never again
    fast-forwards as one (full-batch kernels — those declaring
    ``fast_forward_needs_full_batch`` — only replay when *every* on lane
    agrees).  Capping each near-coincident cluster at its smallest member
    budget keeps those lanes phase-locked: they consume identical step
    counts, expire together, and the next window is again jointly
    skippable.

    Only ever *reduces* budgets, which SegmentPlan invariant 1 declares
    always safe — trajectories are bit-identical with or without
    clustering (the differential suite pins this); singleton clusters and
    non-fast-forwarding lanes are untouched.

    The trade is shorter skips now for joint skips later, which only pays
    when ragged lanes actually block replay — so the batch engine applies
    this per-kernel, gated on ``wants_expiry_clustering`` (REACT opts in;
    kernels whose replay tolerates unaligned lanes profile slower with
    clustering forced on).
    """
    steps = plan.steps
    active = (steps > 0) & np.isfinite(hint_until)
    if np.count_nonzero(active) < 2:
        return plan
    lanes = np.nonzero(active)[0]
    order = lanes[np.argsort(hint_until[lanes], kind="stable")]
    expiries = hint_until[order]
    # A new cluster starts wherever the expiry gap exceeds one step.
    starts = np.nonzero(np.diff(expiries) > dt)[0] + 1
    bounds = np.concatenate(([0], starts, [len(order)]))
    new_steps = steps.copy()
    changed = False
    for begin, end in zip(bounds[:-1], bounds[1:]):
        if end - begin < 2:
            continue
        members = order[begin:end]
        floor = new_steps[members].min()
        if (new_steps[members] != floor).any():
            new_steps[members] = floor
            changed = True
    if not changed:
        return plan
    return plan._replace(steps=new_steps)


class LaneSegmentPlanner:
    """Vectorized :class:`SegmentPlanner` for batch lane groups.

    Lanes drift apart in simulated time, so every bound is evaluated
    per lane at that lane's own timestamp; lanes that happen to share a
    trace segment and efficiency region then advance together through one
    kernel ``fast_forward`` call.  The arithmetic mirrors the scalar
    planner expression for expression (``int()`` truncation becomes
    ``floor`` — identical for the non-negative quantities involved — and
    the ``None`` stops become ``±inf``).
    """

    def __init__(self, sample_period, trace_samples, trace_duration, hard_stop,
                 breakpoints, dt_on, dt_off):
        self._sample_period = sample_period
        self._trace_samples = trace_samples
        self._trace_duration = trace_duration
        self._hard_stop = hard_stop
        # Sorted breakpoint grid for searchsorted; a trailing +inf sentinel
        # stands in for "no breakpoint above".
        bps = np.sort(np.asarray(breakpoints, dtype=float))
        self._bps = bps
        self._bps_padded = np.append(bps, _INFINITY)
        self._dt_on = dt_on
        self._dt_off = dt_off

    def _segment_limit(self, times):
        """Per-lane ``min(segment_end(time), hard_stop)`` (always finite)."""
        index = (times / self._sample_period).astype(np.int64)
        segment_end = np.where(
            index >= self._trace_samples,
            _INFINITY,
            (index + 1) * self._sample_period,
        )
        return np.minimum(segment_end, self._hard_stop)

    def _stops(self, voltages, ceiling):
        """Vectorized :func:`efficiency_stops` with ``±inf`` sentinels."""
        if self._bps.size == 0:
            width = len(np.atleast_1d(voltages))
            return (
                np.minimum(ceiling, np.full(width, _INFINITY)),
                np.full(width, -_INFINITY),
            )
        position = np.searchsorted(self._bps, voltages, side="right")
        stop_below = np.where(
            position > 0, self._bps[np.maximum(position - 1, 0)], -_INFINITY
        )
        stop_above = np.minimum(ceiling, self._bps_padded[position])
        return stop_above, stop_below

    def _clamp(self, steps, mask, step_budget):
        """Finite non-negative int64 budgets, zeroed outside ``mask``."""
        steps = np.minimum(steps, float(step_budget))
        steps = np.where(mask, np.maximum(steps, 0.0), 0.0)
        return steps.astype(np.int64)

    def plan_off(self, times, voltages, mask, enable_voltage, step_budget):
        """Plan off-phase segments for the lanes selected by ``mask``.

        ``enable_voltage`` (per lane) is both the upper stop's ceiling and
        the restart floor of the post-trace drain termination test.
        """
        limit = self._segment_limit(times)
        steps = np.floor((limit - times) / self._dt_off)
        stop_above, stop_below = self._stops(voltages, enable_voltage)
        drain_floor = np.where(
            mask & (times >= self._trace_duration), enable_voltage, -_INFINITY
        )
        return LaneSegmentPlan(
            self._clamp(steps, mask, step_budget), stop_above, stop_below, drain_floor
        )

    def plan_on(self, times, voltages, mask, hint_until, hint_wake, step_budget):
        """Plan quiescent on-phase segments for the lanes in ``mask``.

        ``hint_until`` / ``hint_wake`` are the batch engine's cached hint
        arrays (``-inf`` = no hint, which ``mask`` must already exclude;
        ``+inf`` wake = none).  The expiry margin is the scalar planner's:
        one full step short of the exclusive bound.
        """
        limit = self._segment_limit(times)
        steps = np.floor((limit - times) / self._dt_on)
        finite = np.isfinite(hint_until)
        if finite.any():
            margin = (
                np.floor((np.where(finite, hint_until, 0.0) - times) / self._dt_on)
                - 1.0
            )
            steps = np.where(finite, np.minimum(steps, margin), steps)
        stop_above, stop_below = self._stops(voltages, hint_wake)
        return LaneSegmentPlan(
            self._clamp(steps, mask, step_budget),
            stop_above,
            stop_below,
            np.full(len(times), -_INFINITY),
        )
