"""Result containers produced by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class SimulationResult:
    """Everything a single simulation run produced.

    The fields mirror what the paper reports: latency (Table 4), work
    completed (Tables 2 and 5), on-time and duty cycle (§2.1), and the
    energy ledger used for the efficiency analysis (Figure 7 and §5.5).
    """

    trace_name: str
    buffer_name: str
    workload_name: str
    simulated_time: float
    trace_duration: float
    latency: Optional[float]
    on_time: float
    active_time: float
    enable_count: int
    brownout_count: int
    work_units: float
    workload_metrics: Dict[str, float] = field(default_factory=dict)
    buffer_ledger: Dict[str, float] = field(default_factory=dict)
    energy_offered: float = 0.0
    energy_delivered_to_load: float = 0.0
    wall_clock_seconds: float = 0.0

    @property
    def started(self) -> bool:
        """True when the system reached its enable voltage at least once."""
        return self.latency is not None

    @property
    def duty_cycle(self) -> float:
        """Fraction of the simulated time the platform was powered."""
        if self.simulated_time <= 0.0:
            return 0.0
        return self.on_time / self.simulated_time

    @property
    def on_time_during_trace_fraction(self) -> float:
        """Fraction of the *trace* during which the platform was powered.

        Slightly optimistic (on-time after the trace ends is included), but
        bounded to 1.0; used for the §2.1.2 operational-fraction figures.
        """
        if self.trace_duration <= 0.0:
            return 0.0
        return min(1.0, self.on_time / self.trace_duration)

    @property
    def end_to_end_efficiency(self) -> float:
        """Fraction of offered harvested energy that reached the load."""
        if self.energy_offered <= 0.0:
            return 0.0
        return self.energy_delivered_to_load / self.energy_offered

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary used by the table renderers and benchmarks."""
        row: Dict[str, float] = {
            "trace": self.trace_name,
            "buffer": self.buffer_name,
            "workload": self.workload_name,
            "latency_s": self.latency if self.latency is not None else float("nan"),
            "on_time_s": self.on_time,
            "active_time_s": self.active_time,
            "duty_cycle": self.duty_cycle,
            "work_units": self.work_units,
            "enable_count": float(self.enable_count),
            "brownout_count": float(self.brownout_count),
            "energy_offered_J": self.energy_offered,
            "energy_delivered_J": self.energy_delivered_to_load,
            "end_to_end_efficiency": self.end_to_end_efficiency,
        }
        for key, value in self.workload_metrics.items():
            row[f"workload_{key}"] = value
        for key, value in self.buffer_ledger.items():
            row[f"buffer_{key}"] = value
        return row
