"""Metrics helpers: figures of merit, normalization, and aggregation.

The paper condenses each (benchmark, trace, buffer) run into a single
figure of merit — the work the application completed — then normalizes
across buffers (Figure 7) and averages across traces.  These helpers
implement that reduction so experiments and benchmarks share one
definition.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.sim.results import SimulationResult


def figure_of_merit(result: SimulationResult) -> float:
    """The per-run figure of merit: application work completed."""
    return result.work_units


def on_time_fraction(result: SimulationResult) -> float:
    """Fraction of the trace during which the platform was powered."""
    return result.on_time_during_trace_fraction


def normalize_to_reference(
    values: Mapping[str, float], reference: str
) -> Dict[str, float]:
    """Normalize a {name: value} mapping to the named reference entry.

    Matches Figure 7's presentation (performance normalized to REACT).  A
    zero or missing reference yields zeros to keep downstream averaging
    well-defined.
    """
    if reference not in values:
        raise KeyError(f"reference {reference!r} not present in {sorted(values)}")
    reference_value = values[reference]
    if reference_value <= 0.0:
        return {name: 0.0 for name in values}
    return {name: value / reference_value for name, value in values.items()}


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, treating non-positive entries as zero contribution."""
    cleaned = [value for value in values if value > 0.0]
    if not cleaned:
        return 0.0
    product = 1.0
    for value in cleaned:
        product *= value
    return product ** (1.0 / len(cleaned))


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a sequence (0.0 for an empty sequence).

    Accumulated sequentially (not via ``sum()``) so the result is
    bit-identical however the caller's values were produced — these means
    feed tables that the cross-backend equivalence suites diff exactly.
    """
    if not values:
        return 0.0
    total = 0.0
    for value in values:
        total += value
    return total / len(values)


def aggregate_results(
    results: Iterable[SimulationResult],
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Index results as ``{workload: {trace: {buffer: work_units}}}``.

    This is the pivot every table in the evaluation is built from.
    """
    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for result in results:
        workload_table = table.setdefault(result.workload_name, {})
        trace_table = workload_table.setdefault(result.trace_name, {})
        trace_table[result.buffer_name] = figure_of_merit(result)
    return table


def mean_normalized_performance(
    results: Iterable[SimulationResult], reference: str
) -> Dict[str, Dict[str, float]]:
    """Figure 7's quantity: per-workload mean normalized performance per buffer.

    For every workload, each trace's per-buffer figures of merit are
    normalized to ``reference`` and then averaged across traces.
    """
    pivot = aggregate_results(results)
    summary: Dict[str, Dict[str, float]] = {}
    for workload, per_trace in pivot.items():
        accumulator: Dict[str, List[float]] = {}
        for per_buffer in per_trace.values():
            # Traces where the reference completed no work cannot be
            # normalized meaningfully (every ratio would be 0/0); they are
            # dropped from the per-workload mean, mirroring how the paper's
            # figure handles traces with empty columns.
            if per_buffer.get(reference, 0.0) <= 0.0:
                continue
            normalized = normalize_to_reference(per_buffer, reference)
            for buffer_name, value in normalized.items():
                accumulator.setdefault(buffer_name, []).append(value)
        summary[workload] = {
            buffer_name: mean(values) for buffer_name, values in accumulator.items()
        }
    return summary


def latency_table(results: Iterable[SimulationResult]) -> Dict[str, Dict[str, float]]:
    """Index latency as ``{trace: {buffer: latency_seconds}}`` (Table 4)."""
    table: Dict[str, Dict[str, float]] = {}
    for result in results:
        trace_table = table.setdefault(result.trace_name, {})
        value = result.latency if result.latency is not None else float("inf")
        # Latency is workload-invariant, so any workload's value is fine;
        # keep the smallest observed to be safe against drain-phase noise.
        existing = trace_table.get(result.buffer_name)
        trace_table[result.buffer_name] = (
            value if existing is None else min(existing, value)
        )
    return table


def improvement_over(
    values: Mapping[str, float], subject: str, baseline: str
) -> float:
    """Relative improvement of ``subject`` over ``baseline`` (e.g. +0.39 = +39 %)."""
    if baseline not in values or subject not in values:
        raise KeyError("both subject and baseline must be present")
    baseline_value = values[baseline]
    if baseline_value <= 0.0:
        return float("inf") if values[subject] > 0.0 else 0.0
    return values[subject] / baseline_value - 1.0
