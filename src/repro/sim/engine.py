"""The discrete-time simulation loop.

Each step performs the same energy balance the paper's hardware testbed
realizes physically:

1. the harvesting frontend offers energy to the buffer (replaying the
   power trace through the regulator model),
2. the power gate compares the buffer output voltage against its enable /
   brown-out thresholds and connects or disconnects the platform,
3. the workload decides what the platform does this step and the resulting
   load current is drawn from the buffer,
4. the buffer runs its housekeeping (leakage, bank replenishment, and —
   for adaptive buffers — controller polling and reconfiguration).

After the power trace ends the system keeps running until the buffer is
drained (the paper's methodology), bounded by ``max_drain_time``.

The step size adapts to the platform state: while the system is off the
dynamics are slow (a capacitor charging from a 1 Hz trace), so the
simulator takes larger steps; while the system is on it uses a fine step so
millisecond-scale atomic operations and brown-outs resolve correctly.
"""

from __future__ import annotations

import time as wall_clock
from typing import Optional

from repro.exceptions import SimulationError
from repro.platform.mcu import PowerMode
from repro.sim.recorder import Recorder
from repro.sim.results import SimulationResult
from repro.sim.system import BatterylessSystem
from repro.workloads.base import StepContext


class Simulator:
    """Fixed/adaptive-timestep simulator for a :class:`BatterylessSystem`."""

    def __init__(
        self,
        system: BatterylessSystem,
        dt_on: float = 0.01,
        dt_off: float = 0.05,
        drain_after_trace: bool = True,
        max_drain_time: float = 600.0,
        recorder: Optional[Recorder] = None,
        max_steps: int = 50_000_000,
    ) -> None:
        if dt_on <= 0.0 or dt_off <= 0.0:
            raise SimulationError("time steps must be positive")
        if dt_off < dt_on:
            raise SimulationError("dt_off should be at least as large as dt_on")
        if max_drain_time < 0.0:
            raise SimulationError("max drain time must be non-negative")
        self.system = system
        self.dt_on = dt_on
        self.dt_off = dt_off
        self.drain_after_trace = drain_after_trace
        self.max_drain_time = max_drain_time
        self.recorder = recorder
        self.max_steps = max_steps

    def run(self) -> SimulationResult:
        """Run the full trace (plus drain period) and return the result."""
        started_at = wall_clock.perf_counter()
        system = self.system
        frontend, buffer = system.frontend, system.buffer
        mcu, gate, workload = system.mcu, system.gate, system.workload

        trace_duration = frontend.duration
        hard_stop = trace_duration + (self.max_drain_time if self.drain_after_trace else 0.0)
        time = 0.0
        latency: Optional[float] = None
        steps = 0

        while True:
            if steps >= self.max_steps:
                raise SimulationError(
                    f"simulation exceeded {self.max_steps} steps without terminating"
                )
            if time >= trace_duration:
                if not self.drain_after_trace or self._drained(time, hard_stop):
                    break
            dt = self.dt_on if gate.enabled else self.dt_off

            # 1. Harvest.
            offered = frontend.step(time, dt, buffer.output_voltage)
            buffer.harvest(offered, dt)

            # 2. Power gating.
            was_on = gate.enabled
            system_on = gate.update(buffer.output_voltage)
            if system_on and not was_on:
                mcu.set_mode(PowerMode.SLEEP)
                if latency is None:
                    latency = time
            elif not system_on and was_on:
                mcu.power_off()
                workload.on_power_loss(time)

            # 3. Workload and load current.
            demand = workload.step(
                StepContext(time=time, dt=dt, system_on=system_on, buffer=buffer)
            )
            if system_on:
                mcu.set_mode(demand.mcu_mode)
                load_current = (
                    mcu.current()
                    + demand.peripheral_current
                    + gate.quiescent_current
                    + buffer.overhead_current(True)
                )
            else:
                load_current = gate.quiescent_current + buffer.overhead_current(False)
            mcu.step(dt)
            buffer.draw(load_current, dt)

            # 4. Buffer housekeeping (leakage, replenishment, controllers).
            buffer.housekeeping(time, dt, system_on)

            if self.recorder is not None:
                self.recorder.maybe_record(
                    time=time,
                    voltage=buffer.output_voltage,
                    system_on=system_on,
                    capacitance=buffer.capacitance,
                    stored_energy=buffer.stored_energy,
                    harvested_power=frontend.raw_power(time),
                )

            time += dt
            steps += 1
            if time >= hard_stop:
                break

        if gate.enabled:
            # End-of-simulation power-down so workloads can account for any
            # operation that was still in flight.
            workload.on_power_loss(time)
            mcu.power_off()

        metrics = workload.metrics()
        return SimulationResult(
            trace_name=frontend.trace.name,
            buffer_name=buffer.name,
            workload_name=workload.name,
            simulated_time=time,
            trace_duration=trace_duration,
            latency=latency,
            on_time=mcu.on_time,
            active_time=mcu.active_time,
            enable_count=gate.enable_count,
            brownout_count=gate.brownout_count,
            work_units=metrics.work_units,
            workload_metrics=metrics.as_dict(),
            buffer_ledger=buffer.ledger.as_dict(),
            energy_offered=buffer.ledger.offered,
            energy_delivered_to_load=buffer.ledger.delivered,
            wall_clock_seconds=wall_clock.perf_counter() - started_at,
        )

    def _drained(self, time: float, hard_stop: float) -> bool:
        """True when the post-trace drain phase should stop."""
        if time >= hard_stop:
            return True
        gate = self.system.gate
        buffer = self.system.buffer
        if gate.enabled:
            return False
        # The system is off; it can only restart if stored energy elsewhere
        # in the buffer can still lift the output above the enable voltage.
        return buffer.output_voltage < gate.enable_voltage and not self._can_reenable()

    def _can_reenable(self) -> bool:
        """Whether an off system might still come back without new input.

        Adaptive buffers may hold charge in banks above the enable voltage
        that replenishment (or reconfiguration) will move to the output;
        each buffer architecture answers this through
        :meth:`~repro.buffers.base.EnergyBuffer.can_reach_voltage`.
        """
        return self.system.buffer.can_reach_voltage(self.system.gate.enable_voltage)
