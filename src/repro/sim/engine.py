"""The discrete-time simulation loop.

Each step performs the same energy balance the paper's hardware testbed
realizes physically:

1. the harvesting frontend offers energy to the buffer (replaying the
   power trace through the regulator model),
2. the power gate compares the buffer output voltage against its enable /
   brown-out thresholds and connects or disconnects the platform,
3. the workload decides what the platform does this step and the resulting
   load current is drawn from the buffer,
4. the buffer runs its housekeeping (leakage, bank replenishment, and —
   for adaptive buffers — controller polling and reconfiguration).

After the power trace ends the system keeps running until the buffer is
drained (the paper's methodology), bounded by ``max_drain_time``.

Timestep policy
---------------

The step size adapts to the platform state: while the system is off the
dynamics are slow (a capacitor charging from a 1 Hz trace), so the
simulator takes larger ``dt_off`` steps; while the system is on it uses the
fine ``dt_on`` step so millisecond-scale atomic operations and brown-outs
resolve correctly.  The step on which the system turns *on* is special: it
is detected while still off, so a naive policy would integrate it (and
therefore resolve the enable time and the recorded latency) at the coarse
``dt_off``.  The engine instead predicts, before each off step, whether
harvesting for ``dt_off`` could lift the output voltage to the enable
threshold (via :meth:`~repro.buffers.base.EnergyBuffer.post_harvest_voltage_bound`)
and drops to ``dt_on`` for such steps, so every enable transition is
resolved at on-phase granularity.

Off-phase fast path
-------------------

While the gate is disconnected the load is the gate's constant quiescent
current plus the buffer's own overhead, and the harvested power is
piecewise-constant (the trace is zero-order-hold and the regulator's
efficiency is piecewise-constant in the buffer voltage).  Instead of
dispatching the full per-step machinery at ``dt_off``, the engine
fast-forwards whole constant-power intervals through
:meth:`~repro.buffers.base.EnergyBuffer.fast_forward`, stopping at trace
sample boundaries, predicted enable-threshold crossings, regulator
efficiency breakpoints, pending recorder sample points, and the drain
termination test.  Buffer implementations replay exactly the per-step
update rule of the step-by-step path (statics in a fully inlined loop, the
adaptive designs through a conservative generic fallback), so results are
equal to the step-by-step engine up to floating-point summation order of
the energy ledgers; pass ``fast_forward=False`` to force pure step-by-step
execution.

On-phase fast path (workload quiescence)
----------------------------------------

Most *on* steps are quiescent too: the workload is parked in (deep) sleep
waiting for a timer, an event, or a longevity reserve, and its power
demand — hence the whole platform load — is constant.  Workloads declare
such stretches through the quiescence protocol
(:meth:`~repro.workloads.base.Workload.quiescent_until` returning a
:class:`~repro.workloads.base.QuiescenceHint`), and the engine
fast-forwards them through
:meth:`~repro.buffers.base.EnergyBuffer.fast_forward_on`: whole
constant-demand segments bounded by the hint's expiry (the next deadline,
packet, or sensor reading), its wake voltage (or a conservative
usable-energy guard for a pending longevity request), trace sample
boundaries, regulator efficiency breakpoints, the gate's brown-out floor,
and pending recorder sample points.  Per-mode MCU time is accumulated with
the same additive per-step arithmetic as stepped execution (so ``on_time``
and ``active_time`` stay bit-identical), and the workload accounts for the
skipped window once through
:meth:`~repro.workloads.base.Workload.skip_quiescent`.  As with the
off-phase path, ``fast_forward=False`` forces pure step-by-step execution.

Recording and latency use an end-of-step convention: a sample (and the
first-enable latency) is stamped ``time + dt``, the end of the integration
interval that produced the recorded state.
"""

from __future__ import annotations

import time as wall_clock
from typing import Optional

from repro.exceptions import SimulationError
from repro.platform.mcu import PowerMode
from repro.sim.recorder import Recorder
from repro.sim.results import SimulationResult
from repro.sim.segments import SegmentPlanner
from repro.sim.system import BatterylessSystem
from repro.workloads.base import StepContext


class Simulator:
    """Fixed/adaptive-timestep simulator for a :class:`BatterylessSystem`."""

    def __init__(
        self,
        system: BatterylessSystem,
        dt_on: float = 0.01,
        dt_off: float = 0.05,
        drain_after_trace: bool = True,
        max_drain_time: float = 600.0,
        recorder: Optional[Recorder] = None,
        max_steps: int = 50_000_000,
        fast_forward: bool = True,
        start_time: float = 0.0,
        initial_latency: Optional[float] = None,
    ) -> None:
        if dt_on <= 0.0 or dt_off <= 0.0:
            raise SimulationError("time steps must be positive")
        if dt_off < dt_on:
            raise SimulationError("dt_off should be at least as large as dt_on")
        if max_drain_time < 0.0:
            raise SimulationError("max drain time must be non-negative")
        if start_time < 0.0:
            raise SimulationError("start time must be non-negative")
        self.system = system
        self.dt_on = dt_on
        self.dt_off = dt_off
        self.drain_after_trace = drain_after_trace
        self.max_drain_time = max_drain_time
        self.recorder = recorder
        self.max_steps = max_steps
        self.fast_forward = fast_forward
        # Mid-flight resumption support: the batch engine retires its last
        # few lanes to the scalar engine once an array step no longer
        # amortizes (all other simulation state lives in the components).
        self.start_time = start_time
        self.initial_latency = initial_latency

    def run(self) -> SimulationResult:
        """Run the full trace (plus drain period) and return the result."""
        started_at = wall_clock.perf_counter()
        system = self.system
        frontend, buffer = system.frontend, system.buffer
        mcu, gate, workload = system.mcu, system.gate, system.workload

        trace_duration = frontend.duration
        hard_stop = trace_duration + (
            self.max_drain_time if self.drain_after_trace else 0.0
        )
        time = self.start_time
        latency: Optional[float] = self.initial_latency
        steps = 0
        # The demand returned by the most recent *on* step; while the gate
        # stays enabled this is the demand a quiescence hint promises to
        # hold constant.  None until the first on step (e.g. a mid-flight
        # resume that starts enabled) keeps the on-phase fast path off.
        last_demand = None

        dt_on = self.dt_on
        dt_off = self.dt_off
        recorder = self.recorder
        enable_voltage = gate.enable_voltage
        quiescent_current = gate.quiescent_current
        breakpoints = frontend.regulator.efficiency_breakpoints()
        use_fast_forward = (
            self.fast_forward and breakpoints is not None and buffer.can_fast_forward()
        )
        # All segment-boundary arithmetic (trace edges, recorder points,
        # efficiency breakpoints, hint expiry margins, drain/wake guards)
        # lives in the planner; this engine only executes the plans.
        planner = (
            SegmentPlanner(frontend, recorder, trace_duration, hard_stop, breakpoints)
            if use_fast_forward
            else None
        )
        predict_enable = dt_off > dt_on
        # Bound-method locals: the loop below runs tens of thousands of
        # times per simulated trace, so attribute lookups are hoisted out.
        frontend_step = frontend.step
        delivered_power = frontend.delivered_power
        voltage_bound = buffer.post_harvest_voltage_bound
        gate_update = gate.update
        workload_step = workload.step
        mcu_step = mcu.step
        mcu_set_mode = mcu.set_mode
        mcu_current = mcu.current
        buffer_harvest = buffer.harvest
        buffer_draw = buffer.draw
        buffer_housekeeping = buffer.housekeeping
        buffer_overhead = buffer.overhead_current

        while True:
            if steps >= self.max_steps:
                raise SimulationError(
                    f"simulation exceeded {self.max_steps} steps without terminating"
                )
            if time >= trace_duration:
                if not self.drain_after_trace or self._drained(time, hard_stop):
                    break

            if gate.enabled:
                if use_fast_forward and last_demand is not None:
                    consumed, time = self._advance_on_phase(
                        time, planner, last_demand, self.max_steps - steps
                    )
                    if consumed:
                        steps += consumed
                        continue
                dt = dt_on
            else:
                if use_fast_forward:
                    consumed, time = self._advance_off_phase(
                        time, planner, self.max_steps - steps
                    )
                    if consumed:
                        steps += consumed
                        continue
                dt = dt_off
                if predict_enable:
                    # Resolve the enable transition at on-phase granularity:
                    # if a coarse harvest step could reach the enable
                    # threshold, take this step at dt_on instead.
                    delivered = delivered_power(time, buffer.output_voltage)
                    if voltage_bound(delivered * dt) >= enable_voltage:
                        dt = dt_on

            # 1. Harvest.
            offered = frontend_step(time, dt, buffer.output_voltage)
            buffer_harvest(offered, dt)

            # 2. Power gating.
            was_on = gate.enabled
            system_on = gate_update(buffer.output_voltage)
            end_time = time + dt
            if system_on and not was_on:
                mcu_set_mode(PowerMode.SLEEP)
                if latency is None:
                    latency = end_time
            elif not system_on and was_on:
                mcu.power_off()
                workload.on_power_loss(time)

            # 3. Workload and load current.
            demand = workload_step(StepContext(time, dt, system_on, buffer))
            if system_on:
                last_demand = demand
                mcu_set_mode(demand.mcu_mode)
                load_current = (
                    mcu_current()
                    + demand.peripheral_current
                    + quiescent_current
                    + buffer_overhead(True)
                )
            else:
                load_current = quiescent_current + buffer_overhead(False)
            mcu_step(dt)
            buffer_draw(load_current, dt)

            # 4. Buffer housekeeping (leakage, replenishment, controllers).
            buffer_housekeeping(time, dt, system_on)

            if recorder is not None:
                recorder.maybe_record(
                    time=end_time,
                    voltage=buffer.output_voltage,
                    system_on=system_on,
                    capacitance=buffer.capacitance,
                    stored_energy=buffer.stored_energy,
                    harvested_power=frontend.raw_power(end_time),
                )

            time = end_time
            steps += 1
            if time >= hard_stop:
                break

        if gate.enabled:
            # End-of-simulation power-down so workloads can account for any
            # operation that was still in flight.
            workload.on_power_loss(time)
            mcu.power_off()

        metrics = workload.metrics()
        return SimulationResult(
            trace_name=frontend.trace.name,
            buffer_name=buffer.name,
            workload_name=workload.name,
            simulated_time=time,
            trace_duration=trace_duration,
            latency=latency,
            on_time=mcu.on_time,
            active_time=mcu.active_time,
            enable_count=gate.enable_count,
            brownout_count=gate.brownout_count,
            work_units=metrics.work_units,
            workload_metrics=metrics.as_dict(),
            buffer_ledger=buffer.ledger.as_dict(),
            energy_offered=buffer.ledger.offered,
            energy_delivered_to_load=buffer.ledger.delivered,
            wall_clock_seconds=wall_clock.perf_counter() - started_at,
        )

    def _advance_off_phase(self, time, planner, step_budget):
        """Fast-forward off-phase steps inside one constant-power interval.

        Returns ``(steps_consumed, new_time)``; zero steps means the fast
        path could not make progress (an event is imminent) and the engine
        must take a normal step.  Every plan bound is conservative — a
        step the fast path declines to consume is simply executed by the
        exact step-by-step machinery instead.
        """
        system = self.system
        frontend, buffer, gate = system.frontend, system.buffer, system.gate
        dt = self.dt_off

        voltage = buffer.output_voltage
        plan = planner.plan_off(time, dt, voltage, gate.enable_voltage, step_budget)
        if plan.steps < 1:
            return 0, time

        raw = frontend.raw_power(time)
        delivered = frontend.delivered_power(time, voltage)
        consumed, end_time = buffer.fast_forward(
            delivered,
            gate.quiescent_current,
            dt,
            time,
            plan.steps,
            stop_above=plan.stop_above,
            stop_below=plan.stop_below,
            drain_floor=plan.drain_floor,
        )
        if consumed == 0:
            return 0, time

        elapsed = consumed * dt
        frontend.credit(raw * elapsed, delivered * elapsed)
        system.mcu.step(elapsed)  # mode is OFF: accumulates off-time only
        # One aggregated off step so the workload accounts for events
        # (missed packets, missed deadlines) in the skipped interval.
        system.workload.step(StepContext(time, end_time - time, False, buffer))
        return consumed, end_time

    def _advance_on_phase(self, time, planner, demand, step_budget):
        """Fast-forward quiescent on-phase steps inside one constant-power interval.

        Mirrors :meth:`_advance_off_phase` for the powered platform: the
        workload's :class:`~repro.workloads.base.QuiescenceHint` promises a
        constant ``demand``, so the per-step work reduces to the buffer's
        harvest/draw/housekeeping recurrence under a constant load, which
        :meth:`~repro.buffers.base.EnergyBuffer.fast_forward_on` replays
        without the engine's per-step dispatch.  Returns ``(steps_consumed,
        new_time)``; zero steps means an event/wake/boundary is imminent
        and the engine must take a normal step.
        """
        system = self.system
        frontend, buffer, gate = system.frontend, system.buffer, system.gate
        workload = system.workload
        dt = self.dt_on

        hint = workload.quiescent_until(StepContext(time, dt, True, buffer))
        if hint is None:
            return 0, time
        if hint.demand is not None:
            demand = hint.demand

        voltage = buffer.output_voltage
        plan = planner.plan_on(
            time, dt, voltage, hint, buffer.longevity_request, step_budget
        )
        if plan.steps < 1:
            return 0, time

        raw = frontend.raw_power(time)
        delivered = frontend.delivered_power(time, voltage)
        mcu = system.mcu
        mode = demand.mcu_mode
        mode_current = mcu.current(mode)
        load_current = (
            mode_current + demand.peripheral_current + gate.quiescent_current
        )
        consumed, end_time = buffer.fast_forward_on(
            delivered,
            load_current,
            dt,
            time,
            plan.steps,
            stop_above=plan.stop_above,
            stop_below=plan.stop_below,
            brownout_floor=gate.brownout_voltage,
            wake_energy=plan.wake_energy,
        )
        if consumed == 0:
            return 0, time

        elapsed = consumed * dt
        frontend.credit(raw * elapsed, delivered * elapsed)
        # The stepped path would have set this mode on the segment's first
        # step (it can differ from the present mode right after a phase
        # completes); per-mode time then replays the stepped engine's
        # additive accumulation (same additions, same order) so
        # on_time/active_time — which the batch engine reproduces exactly —
        # stay bit-identical.  The charge ledger, which no reported metric
        # consumes, is aggregated.
        mcu.set_mode(mode)
        accumulated = mcu.time_in_mode.get(mode, 0.0)
        for _ in range(consumed):
            accumulated += dt
        mcu.time_in_mode[mode] = accumulated
        mcu.charge_drawn += mode_current * elapsed
        workload.skip_quiescent(
            StepContext(time, end_time - time, True, buffer), consumed, dt
        )
        return consumed, end_time

    def _drained(self, time: float, hard_stop: float) -> bool:
        """True when the post-trace drain phase should stop."""
        if time >= hard_stop:
            return True
        gate = self.system.gate
        buffer = self.system.buffer
        if gate.enabled:
            return False
        # The system is off; it can only restart if stored energy elsewhere
        # in the buffer can still lift the output above the enable voltage.
        return buffer.output_voltage < gate.enable_voltage and not self._can_reenable()

    def _can_reenable(self) -> bool:
        """Whether an off system might still come back without new input.

        Adaptive buffers may hold charge in banks above the enable voltage
        that replenishment (or reconfiguration) will move to the output;
        each buffer architecture answers this through
        :meth:`~repro.buffers.base.EnergyBuffer.can_reach_voltage`.
        """
        return self.system.buffer.can_reach_voltage(self.system.gate.enable_voltage)
