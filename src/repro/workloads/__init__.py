"""Benchmark workloads (the paper's computational backends).

Four workloads span the reactivity/longevity design space the paper uses to
evaluate buffering strategies (§4.2):

* :class:`DataEncryption` (DE) — continuous software AES-128; no reactivity
  or persistence demands, a pure throughput baseline.
* :class:`SenseAndCompute` (SC) — wake every five seconds to sample and
  filter a microphone; reactivity-bound, low per-event energy.
* :class:`RadioTransmit` (RT) — send buffered data in atomic, energy-hungry
  radio transmissions; longevity-bound, delay-tolerant.
* :class:`PacketForwarding` (PF) — receive unpredictable packets and forward
  them; needs both reactivity (receive on arrival) and longevity (transmit).
"""

from repro.workloads.base import PowerDemand, StepContext, Workload, WorkloadMetrics
from repro.workloads.data_encryption import DataEncryption
from repro.workloads.sense_compute import SenseAndCompute
from repro.workloads.radio_transmit import RadioTransmit
from repro.workloads.packet_forwarding import PacketForwarding

__all__ = [
    "Workload",
    "StepContext",
    "PowerDemand",
    "WorkloadMetrics",
    "DataEncryption",
    "SenseAndCompute",
    "RadioTransmit",
    "PacketForwarding",
]

#: The paper's benchmark abbreviations, mapping to workload factories.
BENCHMARKS = {
    "DE": DataEncryption,
    "SC": SenseAndCompute,
    "RT": RadioTransmit,
    "PF": PacketForwarding,
}
