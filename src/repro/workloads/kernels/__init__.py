"""Computational kernels executed by the benchmark workloads.

The paper's benchmarks run real firmware kernels (software AES-128 for the
data-encryption benchmark, digital filtering of microphone samples for the
sense-and-compute benchmark).  The simulator accounts for their *energy*
cost through the MCU's active current, but the kernels are also implemented
here so that "work completed" is grounded in actual computation and the
example applications produce real outputs.
"""

from repro.workloads.kernels.aes import AES128, aes128_encrypt_block, aes128_self_test
from repro.workloads.kernels.fir import FirFilter, design_lowpass, moving_average
from repro.workloads.kernels.crc import crc16_ccitt

__all__ = [
    "AES128",
    "aes128_encrypt_block",
    "aes128_self_test",
    "FirFilter",
    "design_lowpass",
    "moving_average",
    "crc16_ccitt",
]
