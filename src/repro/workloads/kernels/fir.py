"""Digital filtering kernel for the Sense-and-Compute benchmark.

The SC benchmark wakes every five seconds, samples a low-power microphone,
and digitally filters the samples.  A small finite-impulse-response (FIR)
low-pass filter is the canonical embedded filtering kernel, so that is what
the workload executes when kernel execution is enabled.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.exceptions import WorkloadError


def moving_average(length: int) -> List[float]:
    """Coefficients of a simple boxcar (moving-average) filter."""
    if length <= 0:
        raise WorkloadError(f"filter length must be positive, got {length}")
    return [1.0 / length] * length


def design_lowpass(num_taps: int, cutoff: float) -> List[float]:
    """Windowed-sinc low-pass filter design (Hamming window).

    ``cutoff`` is the normalized cutoff frequency in (0, 0.5), i.e. a
    fraction of the sampling rate.
    """
    if num_taps <= 0:
        raise WorkloadError(f"number of taps must be positive, got {num_taps}")
    if not 0.0 < cutoff < 0.5:
        raise WorkloadError(f"cutoff must lie in (0, 0.5), got {cutoff}")
    taps: List[float] = []
    middle = (num_taps - 1) / 2.0
    for index in range(num_taps):
        offset = index - middle
        if offset == 0.0:
            sinc = 2.0 * cutoff
        else:
            sinc = math.sin(2.0 * math.pi * cutoff * offset) / (math.pi * offset)
        window = 0.54 - 0.46 * math.cos(2.0 * math.pi * index / (num_taps - 1))
        taps.append(sinc * window)
    gain = sum(taps)
    return [tap / gain for tap in taps]


class FirFilter:
    """A streaming FIR filter with internal delay line."""

    def __init__(self, taps: Sequence[float]) -> None:
        if not taps:
            raise WorkloadError("an FIR filter needs at least one tap")
        self._taps = list(taps)
        self._delay_line = [0.0] * len(self._taps)

    @property
    def taps(self) -> List[float]:
        """Filter coefficients (copy)."""
        return list(self._taps)

    def reset(self) -> None:
        """Clear the delay line."""
        self._delay_line = [0.0] * len(self._taps)

    def process_sample(self, sample: float) -> float:
        """Push one sample through the filter and return the filtered output."""
        self._delay_line.insert(0, float(sample))
        self._delay_line.pop()
        return sum(tap * value for tap, value in zip(self._taps, self._delay_line))

    def process(self, samples: Sequence[float]) -> List[float]:
        """Filter a block of samples, preserving state across calls."""
        return [self.process_sample(sample) for sample in samples]

    def rms(self, samples: Sequence[float]) -> float:
        """Filter a block and return the RMS of the filtered output.

        This mirrors what a sound-level sensing node actually reports: a
        single scalar loudness estimate per wake-up.
        """
        filtered = self.process(samples)
        if not filtered:
            return 0.0
        return math.sqrt(sum(value * value for value in filtered) / len(filtered))
