"""Pure-Python AES-128 block encryption (the Data Encryption kernel).

This is a straightforward, table-free implementation of FIPS-197 AES-128
encryption.  It favours clarity over speed — the simulator charges the
energy cost of each block through the MCU power model, so the Python
implementation only needs to be *correct*, which is verified against the
FIPS-197 appendix C known-answer test in the unit suite.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import WorkloadError

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

_BLOCK_SIZE = 16
_KEY_SIZE = 16
_ROUNDS = 10


def _xtime(value: int) -> int:
    """Multiply by x (i.e. {02}) in GF(2^8)."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _sub_bytes(state: List[int]) -> None:
    for index, value in enumerate(state):
        state[index] = _SBOX[value]


def _shift_rows(state: List[int]) -> None:
    # State is column-major: state[4*c + r].
    for row in range(1, 4):
        column_values = [state[4 * column + row] for column in range(4)]
        rotated = column_values[row:] + column_values[:row]
        for column in range(4):
            state[4 * column + row] = rotated[column]


def _mix_columns(state: List[int]) -> None:
    for column in range(4):
        offset = 4 * column
        a = state[offset : offset + 4]
        total = a[0] ^ a[1] ^ a[2] ^ a[3]
        original_first = a[0]
        state[offset + 0] = a[0] ^ total ^ _xtime(a[0] ^ a[1])
        state[offset + 1] = a[1] ^ total ^ _xtime(a[1] ^ a[2])
        state[offset + 2] = a[2] ^ total ^ _xtime(a[2] ^ a[3])
        state[offset + 3] = a[3] ^ total ^ _xtime(a[3] ^ original_first)


def _add_round_key(state: List[int], round_key: Sequence[int]) -> None:
    for index in range(_BLOCK_SIZE):
        state[index] ^= round_key[index]


def _expand_key(key: bytes) -> List[List[int]]:
    """Expand a 16-byte key into 11 round keys of 16 bytes each."""
    words: List[List[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 4 * (_ROUNDS + 1)):
        word = list(words[i - 1])
        if i % 4 == 0:
            word = word[1:] + word[:1]
            word = [_SBOX[b] for b in word]
            word[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], word)])
    round_keys: List[List[int]] = []
    for round_index in range(_ROUNDS + 1):
        key_bytes: List[int] = []
        for word in words[4 * round_index : 4 * round_index + 4]:
            key_bytes.extend(word)
        round_keys.append(key_bytes)
    return round_keys


class AES128:
    """AES-128 encryption context with a pre-expanded key schedule."""

    def __init__(self, key: bytes) -> None:
        if len(key) != _KEY_SIZE:
            raise WorkloadError(f"AES-128 key must be 16 bytes, got {len(key)}")
        self._round_keys = _expand_key(key)

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(plaintext) != _BLOCK_SIZE:
            raise WorkloadError(
                f"AES block must be 16 bytes, got {len(plaintext)}"
            )
        state = list(plaintext)
        _add_round_key(state, self._round_keys[0])
        for round_index in range(1, _ROUNDS):
            _sub_bytes(state)
            _shift_rows(state)
            _mix_columns(state)
            _add_round_key(state, self._round_keys[round_index])
        _sub_bytes(state)
        _shift_rows(state)
        _add_round_key(state, self._round_keys[_ROUNDS])
        return bytes(state)

    def encrypt_ecb(self, data: bytes) -> bytes:
        """Encrypt a multiple-of-16-byte buffer in ECB mode (benchmark use only)."""
        if len(data) % _BLOCK_SIZE != 0:
            raise WorkloadError("data length must be a multiple of 16 bytes")
        blocks = [
            self.encrypt_block(data[i : i + _BLOCK_SIZE])
            for i in range(0, len(data), _BLOCK_SIZE)
        ]
        return b"".join(blocks)

    def encrypt_ctr(self, data: bytes, nonce: bytes) -> bytes:
        """Encrypt arbitrary-length data in CTR mode (used by examples)."""
        if len(nonce) != 8:
            raise WorkloadError(f"CTR nonce must be 8 bytes, got {len(nonce)}")
        out = bytearray()
        counter = 0
        for offset in range(0, len(data), _BLOCK_SIZE):
            block = nonce + counter.to_bytes(8, "big")
            keystream = self.encrypt_block(block)
            chunk = data[offset : offset + _BLOCK_SIZE]
            out.extend(a ^ b for a, b in zip(chunk, keystream))
            counter += 1
        return bytes(out)


def aes128_encrypt_block(key: bytes, plaintext: bytes) -> bytes:
    """One-shot block encryption convenience wrapper."""
    return AES128(key).encrypt_block(plaintext)


def aes128_self_test() -> bool:
    """FIPS-197 appendix C.1 known-answer test.

    Returns True when the implementation reproduces the reference
    ciphertext; the DE workload runs this as its per-boot sanity check.
    """
    key = bytes(range(16))
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
    expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
    return aes128_encrypt_block(key, plaintext) == expected
