"""CRC-16/CCITT checksum kernel.

The packet-forwarding workload frames every retransmitted packet with a
CRC so the example applications can verify end-to-end payload integrity
through the simulated store-and-forward path.
"""

from __future__ import annotations


def crc16_ccitt(data: bytes, initial: int = 0xFFFF) -> int:
    """Compute the CRC-16/CCITT-FALSE checksum of ``data``."""
    crc = initial
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc
