"""Radio Transmission (RT) benchmark: atomic, energy-hungry uplink bursts.

RT drains a backlog of buffered sensor data by sending it to a base
station.  Transmissions are atomic — a brown-out mid-packet wastes the
energy already spent — and energy-intensive, making RT the paper's
longevity-bound benchmark.  Transmissions are delay-tolerant, so
longevity-aware buffers (REACT, Morphy) first reserve enough energy to
guarantee completion (§3.4.1) while static buffers simply attempt the send
and risk a doomed-to-fail transmission.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.platform.peripherals import Radio
from repro.workloads.base import (
    PowerDemand,
    QuiescenceHint,
    StepContext,
    Workload,
    WorkloadMetrics,
)
from repro.workloads.kernels.crc import crc16_ccitt


@dataclass
class RadioTransmit(Workload):
    """Send buffered data over the radio as energy allows.

    Parameters
    ----------
    radio:
        Radio power model; its ``transmit_energy`` is what longevity-aware
        software reserves against.
    data_period:
        Seconds between sensor readings being appended to the transmit
        backlog.  Data accumulates whether or not the platform is powered
        (the readings come from a remanence-backed buffer), so a system that
        spends time dark catches up when energy returns.
    packaging_time:
        Active-mode seconds spent framing a packet before keying the radio.
    energy_margin:
        Multiplier on the transmit energy when requesting a longevity
        guarantee, to cover MCU overhead during the burst.
    use_longevity_guarantee:
        When True (the default) and the buffer supports it, wait in deep
        sleep until the buffer holds enough reserved energy before starting
        a transmission.  Static buffers ignore this and transmit eagerly.
    """

    radio: Radio = field(default_factory=Radio)
    data_period: float = 2.5
    packaging_time: float = 0.05
    energy_margin: float = 1.8
    use_longevity_guarantee: bool = True
    execute_kernel: bool = False
    name: str = field(default="RT", init=False)

    def __post_init__(self) -> None:
        if self.data_period <= 0.0:
            raise ConfigurationError("data period must be positive")
        if self.packaging_time < 0.0:
            raise ConfigurationError("packaging time must be non-negative")
        if self.energy_margin < 1.0:
            raise ConfigurationError("energy margin must be at least 1.0")
        self._phase: Optional[str] = None
        self._phase_remaining = 0.0
        self._sequence_number = 0
        self._waiting_for_energy = False
        self._backlog = 0
        self._last_time = 0.0
        self._metrics = WorkloadMetrics()

    # -- Workload interface --------------------------------------------------------

    def step(self, ctx: StepContext) -> PowerDemand:
        self._accumulate_data(ctx.time + ctx.dt)
        if not ctx.system_on:
            return PowerDemand.off()

        if self._phase is None:
            if self._backlog <= 0:
                # Nothing to send yet: wait for the next sensor reading.
                return PowerDemand.deep_sleeping()
            return self._try_start_transmission(ctx)

        self._phase_remaining -= ctx.dt
        if self._phase == "package":
            if self._phase_remaining <= 0.0:
                self._phase = "transmit"
                self._phase_remaining = self.radio.transmit_time
            return PowerDemand.active()

        # transmit phase
        if self._phase_remaining <= 0.0:
            self._complete_transmission()
            self._phase = None
            return PowerDemand.active()
        return PowerDemand.active(peripheral_current=self.radio.transmit_current)

    def quiescent_until(self, ctx: StepContext) -> Optional[QuiescenceHint]:
        """Quiescent while waiting for data or for a longevity reserve.

        Two deep-sleep stretches dominate RT's on-time: an empty backlog
        (demand fixed until the next sensor reading lands on the
        ``data_period`` grid) and a pending longevity request (demand
        fixed until the buffer's reserve condition is met — a wake voltage
        when the buffer can express one, otherwise the engine guards on
        the pending request's usable energy).  Any in-flight
        package/transmit phase makes no promise: its per-step countdown
        must run on the stepped path.
        """
        if self._phase is not None:
            return None
        if self._backlog <= 0:
            return QuiescenceHint(
                no_demand_change_before_time=self._last_time + self.data_period,
                demand=PowerDemand.deep_sleeping(),
            )
        if self._waiting_for_energy:
            return QuiescenceHint(
                no_demand_change_before_time=math.inf,
                wake_on_voltage=ctx.buffer.longevity_wake_voltage(),
                demand=PowerDemand.deep_sleeping(),
            )
        return None

    def skip_quiescent(self, ctx: StepContext, steps: int, step_dt: float) -> None:
        # The quiescent step path only advances the data-accumulation
        # clock; re-evaluating the longevity condition (which ``step``
        # would also do, read-only) is deliberately skipped so a reserve
        # that fills on the window's final housekeeping cannot start a
        # transmission one step earlier than stepped execution would.
        self._accumulate_data(ctx.time + ctx.dt)

    def on_power_loss(self, time: float) -> None:
        if self._phase is not None:
            self._metrics.failed_operations += 1
        self._phase = None
        self._phase_remaining = 0.0
        self._waiting_for_energy = False

    def metrics(self) -> WorkloadMetrics:
        self._metrics.extra["transmissions"] = self._metrics.work_units
        return self._metrics

    def reset(self) -> None:
        self._phase = None
        self._phase_remaining = 0.0
        self._sequence_number = 0
        self._waiting_for_energy = False
        self._backlog = 0
        self._last_time = 0.0
        self._metrics = WorkloadMetrics()
        self.radio.reset()

    # -- internals -------------------------------------------------------------------

    @property
    def backlog(self) -> int:
        """Readings waiting to be transmitted."""
        return self._backlog

    def _accumulate_data(self, now: float) -> None:
        """Append newly produced sensor readings to the transmit backlog."""
        while self._last_time + self.data_period <= now:
            self._last_time += self.data_period
            self._backlog += 1

    @property
    def reserve_energy(self) -> float:
        """Energy requested from the buffer before starting a transmission."""
        return self.radio.transmit_energy * self.energy_margin

    def _try_start_transmission(self, ctx: StepContext) -> PowerDemand:
        buffer = ctx.buffer
        if self.use_longevity_guarantee and buffer.supports_longevity:
            if not self._waiting_for_energy:
                buffer.request_longevity(self.reserve_energy)
                self._waiting_for_energy = True
            if not buffer.longevity_satisfied():
                # Wait in deep sleep for the buffer to accumulate the reserve.
                return PowerDemand.deep_sleeping()
            buffer.clear_longevity()
            self._waiting_for_energy = False
        self._phase = "package"
        self._phase_remaining = self.packaging_time
        return PowerDemand.active()

    def _complete_transmission(self) -> None:
        if self.execute_kernel:
            payload = self._sequence_number.to_bytes(4, "big") * 4
            crc16_ccitt(payload)
        self._sequence_number += 1
        self._backlog = max(0, self._backlog - 1)
        self._metrics.work_units += 1.0
