"""Sense and Compute (SC) benchmark: periodic microphone sampling.

SC exits deep sleep once every five seconds to sample a low-power
microphone and digitally filter the readings.  Individual measurements are
cheap, but the system must be *on* when the deadline arrives — making SC the
paper's reactivity-bound benchmark.  Deadlines that arrive while the system
is powered off are missed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.platform.events import PeriodicEventSource
from repro.platform.peripherals import Microphone
from repro.workloads.base import (
    PowerDemand,
    QuiescenceHint,
    StepContext,
    Workload,
    WorkloadMetrics,
)
from repro.workloads.kernels.fir import FirFilter, design_lowpass


@dataclass
class SenseAndCompute(Workload):
    """Periodic sense-and-filter workload.

    Parameters
    ----------
    period:
        Sensing deadline period in seconds (5 s in the paper).
    sample_time:
        Seconds spent sampling the microphone per measurement.
    compute_time:
        Seconds spent filtering per measurement.
    execute_kernel:
        When True, run the FIR kernel on synthetic microphone samples for
        every completed measurement.
    """

    period: float = 5.0
    sample_time: float = 0.02
    compute_time: float = 0.03
    execute_kernel: bool = False
    name: str = field(default="SC", init=False)

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ConfigurationError(f"period must be positive, got {self.period}")
        if self.sample_time < 0.0 or self.compute_time < 0.0:
            raise ConfigurationError("sample and compute times must be non-negative")
        self._deadlines = PeriodicEventSource(period=self.period)
        self._microphone = Microphone()
        self._filter = FirFilter(design_lowpass(num_taps=15, cutoff=0.1))
        self._rng = np.random.default_rng(7)
        self._last_time = 0.0
        self._pending_deadline = False
        self._phase: Optional[str] = None
        self._phase_remaining = 0.0
        self._metrics = WorkloadMetrics()
        self._readings: list[float] = []

    # -- Workload interface --------------------------------------------------------

    def step(self, ctx: StepContext) -> PowerDemand:
        deadlines = self._deadlines.events_between(self._last_time, ctx.time + ctx.dt)
        self._last_time = ctx.time + ctx.dt

        if not ctx.system_on:
            # Every deadline that fires while the platform is dark is missed.
            self._metrics.missed_events += len(deadlines)
            self._pending_deadline = False
            return PowerDemand.off()

        if deadlines:
            # Multiple deadlines in one step can only happen with very coarse
            # steps; the extra ones are unservable and count as missed.
            self._metrics.missed_events += max(0, len(deadlines) - 1)
            self._pending_deadline = True

        if self._phase is None and self._pending_deadline:
            self._pending_deadline = False
            self._phase = "sample"
            self._phase_remaining = self.sample_time

        if self._phase is None:
            return PowerDemand.sleeping()

        self._phase_remaining -= ctx.dt
        if self._phase == "sample":
            demand = PowerDemand.active(
                peripheral_current=self._microphone.active_current
            )
            if self._phase_remaining <= 0.0:
                self._phase = "compute"
                self._phase_remaining = self.compute_time
            return demand

        # compute phase
        if self._phase_remaining <= 0.0:
            self._complete_measurement()
            self._phase = None
            self._phase_remaining = 0.0
        return PowerDemand.active()

    def quiescent_until(self, ctx: StepContext) -> Optional[QuiescenceHint]:
        """Quiescent (idle in sleep) between measurements.

        While no measurement phase is running and no deadline is pending
        the demand stays :meth:`PowerDemand.sleeping` until the next
        sensing deadline fires; the default :meth:`skip_quiescent` (one
        aggregated step) is exact because the quiescent ``step`` path only
        performs interval-based deadline accounting.
        """
        if self._phase is not None or self._pending_deadline:
            return None
        return QuiescenceHint(
            no_demand_change_before_time=self._deadlines.next_fire_time,
            wake_on_event=True,
            demand=PowerDemand.sleeping(),
        )

    def on_power_loss(self, time: float) -> None:
        if self._phase is not None:
            self._metrics.failed_operations += 1
        self._phase = None
        self._phase_remaining = 0.0
        self._pending_deadline = False

    def metrics(self) -> WorkloadMetrics:
        self._metrics.extra["measurements"] = self._metrics.work_units
        return self._metrics

    def reset(self) -> None:
        self._deadlines.reset()
        self._filter.reset()
        self._last_time = 0.0
        self._pending_deadline = False
        self._phase = None
        self._phase_remaining = 0.0
        self._metrics = WorkloadMetrics()
        self._readings = []

    # -- internals ------------------------------------------------------------------

    def _complete_measurement(self) -> None:
        if self.execute_kernel:
            samples = self._rng.standard_normal(32)
            self._readings.append(self._filter.rms(samples))
        self._metrics.work_units += 1.0

    @property
    def readings(self) -> list[float]:
        """Filtered sound-level readings (populated when the kernel executes)."""
        return list(self._readings)
