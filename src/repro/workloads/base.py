"""Workload interface shared by all four benchmarks.

A workload is a small state machine driven once per simulation step.  It
receives a :class:`StepContext` describing the platform state and answers
with a :class:`PowerDemand` — which MCU mode it wants and how much
peripheral current it is drawing.  The simulator applies that demand to the
energy buffer; the workload learns about brown-outs through
:meth:`Workload.on_power_loss` so it can account for failed atomic
operations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, NamedTuple

from repro.platform.mcu import PowerMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.buffers.base import EnergyBuffer


class StepContext(NamedTuple):
    """Everything a workload may observe during one simulation step.

    A ``NamedTuple`` rather than a dataclass: one is built per simulation
    step (tens of millions per evaluation sweep), and tuple construction is
    several times cheaper than a frozen dataclass ``__init__``.
    """

    time: float
    dt: float
    system_on: bool
    buffer: "EnergyBuffer"


class PowerDemand(NamedTuple):
    """The load a workload places on the platform for one step."""

    mcu_mode: PowerMode = PowerMode.SLEEP
    peripheral_current: float = 0.0

    @classmethod
    def off(cls) -> "PowerDemand":
        """Demand of a powered-down system."""
        return _DEMAND_OFF

    @classmethod
    def sleeping(cls) -> "PowerDemand":
        """Demand of an idle system in its normal (timer-driven) sleep mode."""
        return _DEMAND_SLEEPING

    @classmethod
    def deep_sleeping(cls, peripheral_current: float = 0.0) -> "PowerDemand":
        """Demand while parked in deep sleep waiting for energy to accumulate."""
        if peripheral_current == 0.0:
            return _DEMAND_DEEP_SLEEPING
        return cls(mcu_mode=PowerMode.DEEP_SLEEP, peripheral_current=peripheral_current)

    @classmethod
    def active(cls, peripheral_current: float = 0.0) -> "PowerDemand":
        """Demand of a system executing code (plus optional peripheral draw)."""
        if peripheral_current == 0.0:
            return _DEMAND_ACTIVE
        return cls(mcu_mode=PowerMode.ACTIVE, peripheral_current=peripheral_current)


#: Interned demands for the parameterless cases, which cover the vast
#: majority of steps; reusing them keeps the hot loop allocation-free.
_DEMAND_OFF = PowerDemand(mcu_mode=PowerMode.OFF, peripheral_current=0.0)
_DEMAND_SLEEPING = PowerDemand(mcu_mode=PowerMode.SLEEP, peripheral_current=0.0)
_DEMAND_DEEP_SLEEPING = PowerDemand(mcu_mode=PowerMode.DEEP_SLEEP, peripheral_current=0.0)
_DEMAND_ACTIVE = PowerDemand(mcu_mode=PowerMode.ACTIVE, peripheral_current=0.0)


@dataclass
class WorkloadMetrics:
    """Common work-completed counters every workload reports."""

    work_units: float = 0.0
    failed_operations: int = 0
    missed_events: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        row = {
            "work_units": self.work_units,
            "failed_operations": float(self.failed_operations),
            "missed_events": float(self.missed_events),
        }
        row.update(self.extra)
        return row


class Workload(ABC):
    """Abstract benchmark workload."""

    #: Short name used in tables ("DE", "SC", "RT", "PF").
    name: str = "workload"

    @abstractmethod
    def step(self, ctx: StepContext) -> PowerDemand:
        """Advance the workload by one step and return its power demand.

        Called every simulation step, including while the system is off
        (``ctx.system_on`` False) so the workload can account for missed
        deadlines or lost packets; in that case the returned demand is
        ignored by the simulator.
        """

    @abstractmethod
    def on_power_loss(self, time: float) -> None:
        """Notification that the platform browned out at ``time`` seconds."""

    @abstractmethod
    def metrics(self) -> WorkloadMetrics:
        """Work-completed counters accumulated so far."""

    @abstractmethod
    def reset(self) -> None:
        """Restore the workload to its initial state for a fresh run."""

    @property
    def work_units(self) -> float:
        """The workload's figure of merit (used for Figure 7)."""
        return self.metrics().work_units
