"""Workload interface shared by all four benchmarks.

A workload is a small state machine driven once per simulation step.  It
receives a :class:`StepContext` describing the platform state and answers
with a :class:`PowerDemand` — which MCU mode it wants and how much
peripheral current it is drawing.  The simulator applies that demand to the
energy buffer; the workload learns about brown-outs through
:meth:`Workload.on_power_loss` so it can account for failed atomic
operations.

Quiescence protocol
-------------------

Most on-phase steps are *quiescent*: the workload is parked in (deep)
sleep waiting for a timer, an external event, or a longevity guarantee,
and will answer every step with the same :class:`PowerDemand` it just
returned.  The simulator exploits that through a cooperative protocol:

* :meth:`Workload.quiescent_until` declares, from the workload's own
  timer/event state, a :class:`QuiescenceHint` — a promise that its demand
  cannot change before a given simulated time (and, optionally, before the
  buffer output reaches a wake voltage).  Returning ``None`` makes no
  promise and the simulator steps normally.
* :meth:`Workload.skip_quiescent` is called once per skipped segment so
  the workload can advance its internal clocks and event cursors exactly
  as the per-step calls would have — the engine guarantees the segment
  lies strictly inside the hint (no event fires in it, the wake voltage is
  not reached, the platform stays on).

Both sides of the contract are exercised by the differential equivalence
tests: a fast-forwarded run must reproduce the step-by-step engine's
counters exactly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, NamedTuple, Optional

from repro.platform.mcu import PowerMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.buffers.base import EnergyBuffer


class StepContext(NamedTuple):
    """Everything a workload may observe during one simulation step.

    A ``NamedTuple`` rather than a dataclass: one is built per simulation
    step (tens of millions per evaluation sweep), and tuple construction is
    several times cheaper than a frozen dataclass ``__init__``.
    """

    time: float
    dt: float
    system_on: bool
    buffer: "EnergyBuffer"


class PowerDemand(NamedTuple):
    """The load a workload places on the platform for one step."""

    mcu_mode: PowerMode = PowerMode.SLEEP
    peripheral_current: float = 0.0

    @classmethod
    def off(cls) -> "PowerDemand":
        """Demand of a powered-down system."""
        return _DEMAND_OFF

    @classmethod
    def sleeping(cls) -> "PowerDemand":
        """Demand of an idle system in its normal (timer-driven) sleep mode."""
        return _DEMAND_SLEEPING

    @classmethod
    def deep_sleeping(cls, peripheral_current: float = 0.0) -> "PowerDemand":
        """Demand while parked in deep sleep waiting for energy to accumulate."""
        if peripheral_current == 0.0:
            return _DEMAND_DEEP_SLEEPING
        return cls(mcu_mode=PowerMode.DEEP_SLEEP, peripheral_current=peripheral_current)

    @classmethod
    def active(cls, peripheral_current: float = 0.0) -> "PowerDemand":
        """Demand of a system executing code (plus optional peripheral draw)."""
        if peripheral_current == 0.0:
            return _DEMAND_ACTIVE
        return cls(mcu_mode=PowerMode.ACTIVE, peripheral_current=peripheral_current)


class QuiescenceHint(NamedTuple):
    """A workload's promise that its power demand is momentarily static.

    The contract: as long as the platform stays powered, every
    :meth:`Workload.step` call over a window that ends *strictly before*
    ``no_demand_change_before_time`` — and during which the buffer output
    voltage stays below ``wake_on_voltage`` (when set) — returns exactly
    ``demand``, and mutates no state beyond what
    :meth:`Workload.skip_quiescent` reproduces.  The bound is exclusive
    because internal timers may fire on inclusive comparisons (a window
    ending exactly on RT's ``data_period`` grid lands a reading), so the
    step that reaches the expiry must always execute normally.  The
    simulator stops fast-forwarding conservatively *before* either
    condition can trigger; being woken early is always safe, and promising
    too much is the one way to corrupt a simulation.
    """

    #: Absolute simulated time before which the demand cannot change for
    #: timer/event reasons (``math.inf`` when only the wake voltage or a
    #: longevity request bounds the promise).
    no_demand_change_before_time: float
    #: Demand may change once the buffer output voltage reaches this value
    #: (e.g. a Dewdrop longevity threshold); None when no voltage wakes the
    #: workload.  Buffers whose longevity condition has no output-voltage
    #: equivalent leave this None and the engine falls back to a
    #: conservative usable-energy guard keyed off the pending request.
    wake_on_voltage: Optional[float] = None
    #: True when ``no_demand_change_before_time`` is backed by an external
    #: event source's next-fire time (a deadline or packet arrival) rather
    #: than an internal timer; informational, the engine treats both alike.
    wake_on_event: bool = False
    #: The constant demand the promise holds.  This is the demand the
    #: *next* step would return, which at a phase boundary (the step that
    #: just completed a measurement, say) differs from the demand the
    #: workload most recently returned; ``None`` means "unchanged from the
    #: most recent step", valid only for workloads whose on-phase demand
    #: never varies.
    demand: Optional[PowerDemand] = None


#: Interned demands for the parameterless cases, which cover the vast
#: majority of steps; reusing them keeps the hot loop allocation-free.
_DEMAND_OFF = PowerDemand(mcu_mode=PowerMode.OFF, peripheral_current=0.0)
_DEMAND_SLEEPING = PowerDemand(mcu_mode=PowerMode.SLEEP, peripheral_current=0.0)
_DEMAND_DEEP_SLEEPING = PowerDemand(
    mcu_mode=PowerMode.DEEP_SLEEP, peripheral_current=0.0
)
_DEMAND_ACTIVE = PowerDemand(mcu_mode=PowerMode.ACTIVE, peripheral_current=0.0)


@dataclass
class WorkloadMetrics:
    """Common work-completed counters every workload reports."""

    work_units: float = 0.0
    failed_operations: int = 0
    missed_events: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        row = {
            "work_units": self.work_units,
            "failed_operations": float(self.failed_operations),
            "missed_events": float(self.missed_events),
        }
        row.update(self.extra)
        return row


class Workload(ABC):
    """Abstract benchmark workload."""

    #: Short name used in tables ("DE", "SC", "RT", "PF").
    name: str = "workload"

    @abstractmethod
    def step(self, ctx: StepContext) -> PowerDemand:
        """Advance the workload by one step and return its power demand.

        Called every simulation step, including while the system is off
        (``ctx.system_on`` False) so the workload can account for missed
        deadlines or lost packets; in that case the returned demand is
        ignored by the simulator.
        """

    def quiescent_until(self, ctx: StepContext) -> Optional[QuiescenceHint]:
        """The workload's quiescence promise at ``ctx.time``, or None.

        Called by the simulator while the platform is on, with ``ctx.time``
        equal to the workload's current clock (the end of its most recent
        step) and ``ctx.buffer`` available for wake-voltage lookups.  Must
        not mutate any state.  The default makes no promise, which is
        always correct — the engine simply steps such workloads normally.
        """
        return None

    def skip_quiescent(self, ctx: StepContext, steps: int, step_dt: float) -> None:
        """Account for a fast-forwarded quiescent window.

        ``ctx`` spans the whole skipped window (``ctx.time`` its start,
        ``ctx.dt`` its total duration) which the engine advanced as
        ``steps`` individual steps of ``step_dt`` seconds; the window lies
        strictly inside the hint returned by :meth:`quiescent_until`, the
        platform stayed on throughout, and no wake condition triggered.
        Implementations must leave the workload in exactly the state the
        per-step calls would have produced.  The default delegates to one
        aggregated :meth:`step` call, which is correct whenever ``step``'s
        quiescent path is insensitive to how the window is partitioned
        (pure interval-based clock/event accounting); override it when
        ``step`` does per-step arithmetic or re-evaluates wake conditions.
        """
        self.step(ctx)

    @abstractmethod
    def on_power_loss(self, time: float) -> None:
        """Notification that the platform browned out at ``time`` seconds."""

    @abstractmethod
    def metrics(self) -> WorkloadMetrics:
        """Work-completed counters accumulated so far."""

    @abstractmethod
    def reset(self) -> None:
        """Restore the workload to its initial state for a fresh run."""

    @property
    def work_units(self) -> float:
        """The workload's figure of merit (used for Figure 7)."""
        return self.metrics().work_units
