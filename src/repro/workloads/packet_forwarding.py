"""Packet Forwarding (PF) benchmark: receive and retransmit unpredictable data.

PF listens for packets arriving at unpredictable times and forwards them to
a base station.  Receiving is uncontrollable and reactivity-bound: the
packet can only be captured exactly when it arrives, and only if the system
is on with enough energy for the receive window.  Forwarding is
longevity-bound but delay-tolerant.  The benchmark therefore exercises both
halves of the reactivity/longevity tradeoff at once, and exercises energy
*fungibility*: software re-allocates buffered energy from the pending
transmit reservation to an incoming receive opportunity (§5.4.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.exceptions import ConfigurationError
from repro.platform.events import Event, PoissonEventSource
from repro.platform.peripherals import Radio
from repro.workloads.base import (
    PowerDemand,
    QuiescenceHint,
    StepContext,
    Workload,
    WorkloadMetrics,
)
from repro.workloads.kernels.crc import crc16_ccitt


@dataclass
class PacketForwarding(Workload):
    """Store-and-forward relay between unpredictable senders and a base station.

    Parameters
    ----------
    mean_interarrival:
        Mean seconds between incoming packets (Poisson arrivals).
    listen_current:
        Current of the always-on wake-up receiver while the system idles.
    queue_limit:
        Maximum packets buffered awaiting retransmission.
    use_longevity_guarantee:
        When supported by the buffer, reserve transmit energy before
        forwarding and keep a smaller receive reserve while listening.
    """

    radio: Radio = field(default_factory=Radio)
    mean_interarrival: float = 6.0
    horizon: float = 7200.0
    listen_current: float = 50e-6
    queue_limit: int = 8
    energy_margin: float = 1.8
    use_longevity_guarantee: bool = True
    execute_kernel: bool = False
    seed: int = 11
    name: str = field(default="PF", init=False)

    def __post_init__(self) -> None:
        if self.mean_interarrival <= 0.0:
            raise ConfigurationError("mean interarrival must be positive")
        if self.listen_current < 0.0:
            raise ConfigurationError("listen current must be non-negative")
        if self.queue_limit <= 0:
            raise ConfigurationError("queue limit must be positive")
        self._arrivals = PoissonEventSource(
            mean_interarrival=self.mean_interarrival,
            horizon=self.horizon,
            seed=self.seed,
        )
        self._queue: Deque[Event] = deque()
        self._phase: Optional[str] = None
        self._phase_remaining = 0.0
        self._waiting_for_energy = False
        self._last_time = 0.0
        self._metrics = WorkloadMetrics()

    # -- Workload interface ----------------------------------------------------------

    def step(self, ctx: StepContext) -> PowerDemand:
        arrivals = self._arrivals.events_between(self._last_time, ctx.time + ctx.dt)
        self._last_time = ctx.time + ctx.dt

        if not ctx.system_on:
            self._metrics.missed_events += len(arrivals)
            return PowerDemand.off()

        demand = self._handle_arrivals(ctx, arrivals)
        if demand is not None:
            return demand

        if self._phase is not None:
            return self._advance_operation(ctx)

        return self._maybe_start_forwarding(ctx)

    def quiescent_until(self, ctx: StepContext) -> Optional[QuiescenceHint]:
        """Quiescent while listening or waiting for the transmit reserve.

        Both idle states (empty queue, and a queued packet waiting on the
        longevity reserve) hold a constant deep-sleep-plus-listen demand
        that only an incoming packet — or, for the waiting state, the
        reserve filling — can change, so the promise runs to the arrival
        schedule's next fire time.  An in-flight receive/transmit phase
        makes no promise (its countdown steps normally), and neither does
        the one step that places a new longevity request, since that step
        mutates buffer state.
        """
        if self._phase is not None:
            return None
        next_arrival = self._arrivals.next_fire_time
        listening = PowerDemand.deep_sleeping(peripheral_current=self.listen_current)
        if not self._queue:
            return QuiescenceHint(
                no_demand_change_before_time=next_arrival,
                wake_on_event=True,
                demand=listening,
            )
        if self._waiting_for_energy:
            return QuiescenceHint(
                no_demand_change_before_time=next_arrival,
                wake_on_voltage=ctx.buffer.longevity_wake_voltage(),
                wake_on_event=True,
                demand=listening,
            )
        return None

    def skip_quiescent(self, ctx: StepContext, steps: int, step_dt: float) -> None:
        # Advance the arrival cursor over the (arrival-free, by the hint's
        # guarantee) window; the longevity re-check that ``step`` would
        # also perform is read-only and deliberately not replayed, so a
        # reserve filling on the window's final housekeeping cannot start
        # a forward one step earlier than stepped execution would.
        end = ctx.time + ctx.dt
        self._arrivals.events_between(self._last_time, end)
        self._last_time = end

    def on_power_loss(self, time: float) -> None:
        if self._phase == "receive":
            self._metrics.failed_operations += 1
        elif self._phase == "transmit":
            self._metrics.failed_operations += 1
            # The packet stays queued and will be retried when power returns.
        self._phase = None
        self._phase_remaining = 0.0
        self._waiting_for_energy = False

    def metrics(self) -> WorkloadMetrics:
        self._metrics.extra["packets_forwarded"] = self._metrics.work_units
        return self._metrics

    def reset(self) -> None:
        self._arrivals.reset()
        self._queue.clear()
        self._phase = None
        self._phase_remaining = 0.0
        self._waiting_for_energy = False
        self._last_time = 0.0
        self._metrics = WorkloadMetrics()
        self.radio.reset()

    # -- derived metrics ---------------------------------------------------------------

    @property
    def packets_received(self) -> int:
        """Packets successfully captured off the air so far."""
        return int(self._metrics.extra.get("packets_received", 0.0))

    @property
    def packets_forwarded(self) -> int:
        """Packets successfully retransmitted so far."""
        return int(self._metrics.work_units)

    @property
    def transmit_reserve_energy(self) -> float:
        """Energy reserved before forwarding a packet."""
        return self.radio.transmit_energy * self.energy_margin

    @property
    def receive_reserve_energy(self) -> float:
        """Energy needed to safely capture one incoming packet."""
        return self.radio.receive_energy * self.energy_margin

    # -- internals ------------------------------------------------------------------------

    def _count_received(self) -> None:
        received = self._metrics.extra.get("packets_received", 0.0) + 1.0
        self._metrics.extra["packets_received"] = received

    def _handle_arrivals(
        self, ctx: StepContext, arrivals: list[Event]
    ) -> Optional[PowerDemand]:
        """React to packets that arrived during this step.

        Energy fungibility: an incoming packet pre-empts a pending transmit
        reservation when the buffer currently holds enough energy for the
        receive window (§5.4.1).  Returns a demand when a receive starts,
        otherwise None so normal processing continues.
        """
        if not arrivals:
            return None
        if self._phase is not None:
            # Busy with another atomic operation; the packet is lost.
            self._metrics.missed_events += len(arrivals)
            return None
        packet = arrivals[0]
        self._metrics.missed_events += max(0, len(arrivals) - 1)
        if len(self._queue) >= self.queue_limit:
            self._metrics.missed_events += 1
            return None
        if ctx.buffer.stored_energy < self.receive_reserve_energy:
            self._metrics.missed_events += 1
            return None
        if self._waiting_for_energy:
            # Drop the transmit reservation in favour of the receive.
            ctx.buffer.clear_longevity()
            self._waiting_for_energy = False
        self._queue.append(packet)
        self._phase = "receive"
        self._phase_remaining = self.radio.receive_time
        return PowerDemand.active(peripheral_current=self.radio.receive_current)

    def _advance_operation(self, ctx: StepContext) -> PowerDemand:
        self._phase_remaining -= ctx.dt
        if self._phase == "receive":
            if self._phase_remaining <= 0.0:
                self._count_received()
                self._phase = None
                return PowerDemand.active()
            return PowerDemand.active(peripheral_current=self.radio.receive_current)
        # transmit phase
        if self._phase_remaining <= 0.0:
            self._complete_forward()
            self._phase = None
            return PowerDemand.active()
        return PowerDemand.active(peripheral_current=self.radio.transmit_current)

    def _maybe_start_forwarding(self, ctx: StepContext) -> PowerDemand:
        if not self._queue:
            # Idle listening: deep sleep plus the always-on wake-up receiver.
            return PowerDemand.deep_sleeping(peripheral_current=self.listen_current)
        buffer = ctx.buffer
        if self.use_longevity_guarantee and buffer.supports_longevity:
            if not self._waiting_for_energy:
                buffer.request_longevity(self.transmit_reserve_energy)
                self._waiting_for_energy = True
            if not buffer.longevity_satisfied():
                return PowerDemand.deep_sleeping(peripheral_current=self.listen_current)
            buffer.clear_longevity()
            self._waiting_for_energy = False
        self._phase = "transmit"
        self._phase_remaining = self.radio.transmit_time
        return PowerDemand.active(peripheral_current=self.radio.transmit_current)

    def _complete_forward(self) -> None:
        packet = self._queue.popleft()
        if self.execute_kernel:
            payload = bytes(packet.payload_size or 16)
            crc16_ccitt(payload)
        self._metrics.work_units += 1.0
