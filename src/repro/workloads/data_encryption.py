"""Data Encryption (DE) benchmark: continuous software AES-128.

DE keeps the MCU in active mode whenever the platform is powered and counts
completed AES-128 block-batch encryptions.  It has no reactivity or
persistence requirements and a predictable power draw, which is why the
paper uses it to characterize software and power overhead (§5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.workloads.base import (
    PowerDemand,
    QuiescenceHint,
    StepContext,
    Workload,
    WorkloadMetrics,
)
from repro.workloads.kernels.aes import AES128, aes128_self_test


@dataclass
class DataEncryption(Workload):
    """Continuously encrypt buffered sensor data in software.

    Parameters
    ----------
    unit_time:
        Active-mode seconds one work unit (a batch of AES blocks) takes.
        Partial progress is lost on power failure, modelling the lack of a
        checkpoint inside the batch.
    execute_kernel:
        When True, actually run the AES kernel once per completed unit (the
        energy cost is modelled either way; execution grounds the work
        counter in real computation and is enabled in the examples).
    """

    unit_time: float = 0.15
    execute_kernel: bool = False
    key: bytes = bytes(range(16))
    name: str = field(default="DE", init=False)

    def __post_init__(self) -> None:
        if self.unit_time <= 0.0:
            raise ConfigurationError(
                f"unit time must be positive, got {self.unit_time}"
            )
        self._cipher = AES128(self.key)
        self._progress = 0.0
        self._counter = 0
        self._metrics = WorkloadMetrics()
        self._self_test_passed = aes128_self_test()

    # -- Workload interface -------------------------------------------------------

    def step(self, ctx: StepContext) -> PowerDemand:
        if not ctx.system_on:
            return PowerDemand.off()
        self._progress += ctx.dt
        while self._progress >= self.unit_time:
            self._progress -= self.unit_time
            self._complete_unit()
        return PowerDemand.active()

    def quiescent_until(self, ctx: StepContext) -> Optional[QuiescenceHint]:
        """DE's demand is constant ``ACTIVE`` whenever the platform is on.

        There is no timer, event, or wake voltage that changes it, so the
        promise is unbounded; :meth:`skip_quiescent` replays the per-step
        progress arithmetic so the work-unit counter stays bit-identical
        to stepped execution.
        """
        return _HINT_ALWAYS_ACTIVE

    def skip_quiescent(self, ctx: StepContext, steps: int, step_dt: float) -> None:
        # Exact replay of ``steps`` on-steps' progress accumulation: the
        # float trajectory (and therefore every unit-completion boundary)
        # must match stepped execution bit for bit.
        progress = self._progress
        unit_time = self.unit_time
        for _ in range(steps):
            progress += step_dt
            while progress >= unit_time:
                progress -= unit_time
                self._complete_unit()
        self._progress = progress

    def on_power_loss(self, time: float) -> None:
        if self._progress > 0.0:
            # The partially encrypted batch is discarded; its energy is wasted.
            self._metrics.failed_operations += 1
        self._progress = 0.0

    def metrics(self) -> WorkloadMetrics:
        self._metrics.extra["encryptions"] = self._metrics.work_units
        self._metrics.extra["self_test_passed"] = float(self._self_test_passed)
        return self._metrics

    def reset(self) -> None:
        self._progress = 0.0
        self._counter = 0
        self._metrics = WorkloadMetrics()

    # -- internals -----------------------------------------------------------------

    def _complete_unit(self) -> None:
        if self.execute_kernel:
            plaintext = self._counter.to_bytes(16, "big")
            self._cipher.encrypt_block(plaintext)
        self._counter += 1
        self._metrics.work_units += 1.0


#: DE's one (unbounded) quiescence promise, interned like the demands.
_HINT_ALWAYS_ACTIVE = QuiescenceHint(
    no_demand_change_before_time=math.inf, demand=PowerDemand.active()
)
