"""Harvester power-stage (regulator) models.

Between the transducer and the buffer capacitor sits a boost charger
(bq25570-style for solar, the converter integrated in the P2110B for RF)
whose conversion efficiency depends on how much power it is moving and on
the buffer voltage it is charging into.  The paper emulates this
load-dependent behaviour in its replay frontend; we model it as an
efficiency surface applied to the trace power before it reaches the buffer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


class Regulator(ABC):
    """Converts raw harvested power into power delivered to the buffer."""

    @abstractmethod
    def efficiency(self, input_power: float, buffer_voltage: float) -> float:
        """Conversion efficiency in [0, 1] for the given operating point."""

    def delivered_power(self, input_power: float, buffer_voltage: float) -> float:
        """Power actually delivered to the buffer, in watts."""
        if input_power <= 0.0:
            return 0.0
        return input_power * self.efficiency(input_power, buffer_voltage)

    def delivered_power_batch(
        self, input_power: np.ndarray, buffer_voltage: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`delivered_power` over per-lane operating points.

        The batched simulator calls this once per lockstep step for every
        simultaneously simulated system.  The base implementation evaluates
        the scalar model lane by lane — exact for any subclass, just without
        the vector speedup — and the built-in regulators override it with
        numpy expressions that reproduce the scalar arithmetic bit-for-bit.
        """
        return np.array(
            [
                self.delivered_power(float(power), float(voltage))
                for power, voltage in zip(input_power, buffer_voltage)
            ]
        )

    def efficiency_breakpoints(self) -> Optional[Tuple[float, ...]]:
        """Buffer voltages at which the efficiency surface changes.

        The simulator's off-phase fast path assumes delivered power is
        constant while the trace sample and the buffer-voltage region stay
        fixed.  Regulators whose efficiency is piecewise-constant in the
        buffer voltage return the boundary voltages of those regions (an
        empty tuple when efficiency never depends on buffer voltage);
        regulators with a continuously voltage-dependent efficiency return
        ``None``, which disables fast-forwarding entirely.
        """
        return None


@dataclass(frozen=True)
class IdealRegulator(Regulator):
    """A lossless power stage; useful for analytic tests and upper bounds."""

    def efficiency(self, input_power: float, buffer_voltage: float) -> float:
        return 1.0

    def delivered_power_batch(
        self, input_power: np.ndarray, buffer_voltage: np.ndarray
    ) -> np.ndarray:
        # Lossless: delivered power is the input power (``x * 1.0`` is exact),
        # zeroed where no power is offered, exactly as the scalar guard does.
        return np.where(input_power > 0.0, input_power, 0.0)

    def efficiency_breakpoints(self) -> Tuple[float, ...]:
        return ()


@dataclass(frozen=True)
class BoostRegulator(Regulator):
    """A bq25570-style boost charger efficiency model.

    Efficiency rises with transferred power (fixed quiescent losses dominate
    at microwatt levels) and falls slightly when boosting into a low buffer
    voltage.  The constants approximate the datasheet's efficiency-vs-power
    family of curves; the cold-start path (buffer below ``cold_start_voltage``)
    is much less efficient, which is exactly the "cold-start energy" cost the
    paper attributes to large buffers.
    """

    peak_efficiency: float = 0.90
    quiescent_power: float = 0.5e-6
    half_efficiency_power: float = 20e-6
    cold_start_voltage: float = 1.8
    cold_start_efficiency: float = 0.30

    def __post_init__(self) -> None:
        if not 0.0 < self.peak_efficiency <= 1.0:
            raise ConfigurationError(
                f"peak efficiency must lie in (0, 1], got {self.peak_efficiency}"
            )
        if self.quiescent_power < 0.0:
            raise ConfigurationError("quiescent power must be non-negative")
        if self.half_efficiency_power <= 0.0:
            raise ConfigurationError("half-efficiency power must be positive")
        if not 0.0 < self.cold_start_efficiency <= 1.0:
            raise ConfigurationError("cold-start efficiency must lie in (0, 1]")

    def efficiency(self, input_power: float, buffer_voltage: float) -> float:
        if input_power <= self.quiescent_power:
            return 0.0
        usable = input_power - self.quiescent_power
        # Saturating rise toward peak efficiency as power grows.
        scale = usable / (usable + self.half_efficiency_power)
        efficiency = self.peak_efficiency * scale
        if buffer_voltage < self.cold_start_voltage:
            efficiency = min(efficiency, self.cold_start_efficiency)
        return efficiency

    def delivered_power_batch(
        self, input_power: np.ndarray, buffer_voltage: np.ndarray
    ) -> np.ndarray:
        # Same expressions as the scalar ``efficiency`` in the same order so
        # batched lanes reproduce scalar trajectories bit-for-bit.  Lanes at
        # or below the quiescent power are masked out before the division so
        # ``usable + half_efficiency_power`` can never be zero there.
        usable = input_power - self.quiescent_power
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = usable / (usable + self.half_efficiency_power)
        efficiency = self.peak_efficiency * scale
        efficiency = np.where(
            buffer_voltage < self.cold_start_voltage,
            np.minimum(efficiency, self.cold_start_efficiency),
            efficiency,
        )
        efficiency = np.where(input_power <= self.quiescent_power, 0.0, efficiency)
        return np.where(input_power <= 0.0, 0.0, input_power * efficiency)

    def efficiency_breakpoints(self) -> Tuple[float, ...]:
        # Efficiency depends on the buffer voltage only through the
        # cold-start comparison, so it is piecewise-constant with a single
        # boundary at the cold-start voltage.
        return (self.cold_start_voltage,)
