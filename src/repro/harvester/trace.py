"""Power-trace container and statistics.

A :class:`PowerTrace` is a uniformly sampled timeline of harvested power
(watts).  Traces are the experimental input of every evaluation in the
paper; their first-order statistics (Table 3: duration, average power,
coefficient of variation) and their spike structure (§2.1.2) are what the
synthetic generators are calibrated against.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import TraceError


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of a power trace (the quantities in Table 3)."""

    duration: float
    mean_power: float
    std_power: float
    coefficient_of_variation: float
    peak_power: float
    total_energy: float
    spike_energy_fraction: float
    time_below_fraction: float

    def as_row(self) -> dict:
        """Dictionary row suitable for table rendering."""
        return {
            "duration_s": round(self.duration, 1),
            "mean_power_mW": round(self.mean_power * 1e3, 3),
            "cv_percent": round(self.coefficient_of_variation * 100.0, 1),
            "peak_power_mW": round(self.peak_power * 1e3, 3),
            "total_energy_J": round(self.total_energy, 3),
        }


class PowerTrace:
    """A uniformly sampled harvested-power timeline.

    Parameters
    ----------
    powers:
        Sequence of harvested power samples in watts, all non-negative.
    sample_period:
        Spacing between samples in seconds.
    name:
        Human-readable identifier ("RF Cart", "Solar Campus", ...).
    """

    def __init__(
        self,
        powers: Union[Sequence[float], np.ndarray],
        sample_period: float = 1.0,
        name: str = "trace",
    ) -> None:
        array = np.asarray(powers, dtype=float)
        if array.ndim != 1 or array.size == 0:
            raise TraceError("a power trace needs a non-empty 1-D sample array")
        if sample_period <= 0.0:
            raise TraceError(f"sample period must be positive, got {sample_period}")
        if np.any(~np.isfinite(array)):
            raise TraceError("power trace contains non-finite samples")
        if np.any(array < 0.0):
            raise TraceError("power trace contains negative samples")
        self._powers = array
        # Python-float mirror for the per-step power_at() lookup: indexing a
        # numpy array returns a numpy scalar whose construction costs more
        # than the whole zero-order-hold lookup should.
        self._powers_list = array.tolist()
        self.sample_period = float(sample_period)
        self.name = name

    # -- basic accessors ----------------------------------------------------

    @property
    def powers(self) -> np.ndarray:
        """The raw power samples in watts (read-only view)."""
        view = self._powers.view()
        view.flags.writeable = False
        return view

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps in seconds."""
        return np.arange(self._powers.size) * self.sample_period

    @property
    def duration(self) -> float:
        """Total trace length in seconds."""
        return self._powers.size * self.sample_period

    @property
    def mean_power(self) -> float:
        """Average harvested power in watts."""
        return float(self._powers.mean())

    @property
    def peak_power(self) -> float:
        """Maximum harvested power in watts."""
        return float(self._powers.max())

    @property
    def total_energy(self) -> float:
        """Total harvested energy over the trace in joules."""
        return float(self._powers.sum() * self.sample_period)

    @property
    def coefficient_of_variation(self) -> float:
        """Standard deviation divided by mean (Table 3's CV column)."""
        mean = self.mean_power
        if mean == 0.0:
            return 0.0
        return float(self._powers.std() / mean)

    def __len__(self) -> int:
        return self._powers.size

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        for index, power in enumerate(self._powers):
            yield index * self.sample_period, float(power)

    # -- queries -------------------------------------------------------------

    def power_at(self, time: float) -> float:
        """Harvested power at absolute time ``time`` (zero-order hold).

        Times beyond the end of the trace return 0.0, matching the paper's
        methodology of letting the system drain its buffer after the trace
        completes.
        """
        if time < 0.0:
            raise TraceError(f"time must be non-negative, got {time}")
        index = int(time / self.sample_period)
        powers = self._powers_list
        if index >= len(powers):
            return 0.0
        return powers[index]

    def powers_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`power_at`: zero-order-hold lookup per lane.

        The batched simulator's lanes drift apart in simulated time (their
        adaptive steps differ), so each lockstep step samples the trace at
        many distinct timestamps at once.  Indexing matches the scalar
        lookup exactly — ``int(time / sample_period)`` truncation, zero
        power beyond the end of the trace.
        """
        if times.size and times.min() < 0.0:
            raise TraceError("times must be non-negative")
        indices = (times / self.sample_period).astype(np.int64)
        size = self._powers.size
        return np.where(
            indices < size, self._powers[np.minimum(indices, size - 1)], 0.0
        )

    def zero_order_hold_table(self) -> Tuple[np.ndarray, int]:
        """``(padded_powers, sentinel_index)`` for inline vectorized lookup.

        The batch engine's hot loop samples the trace once per lockstep
        step; ``padded_powers[np.minimum((times / sample_period).astype(int64),
        sentinel_index)]`` reproduces :meth:`power_at` exactly — truncating
        index, zero power past the end (the sentinel sample) — without
        per-call bounds handling.  :meth:`powers_at` is the reference
        implementation the equivalence tests pin this table against.
        """
        return np.append(self._powers, 0.0), self._powers.size

    def segment_end(self, time: float) -> float:
        """End of the zero-order-hold segment containing ``time``.

        Within the trace this is the next sample boundary (the power is
        constant until then); past the end of the trace the power is zero
        forever, so the segment extends to infinity.  Used by the
        simulator's off-phase fast path to bound constant-power intervals.
        """
        if time < 0.0:
            raise TraceError(f"time must be non-negative, got {time}")
        index = int(time / self.sample_period)
        if index >= self._powers.size:
            return float("inf")
        return (index + 1) * self.sample_period

    def energy_between(self, start: float, end: float) -> float:
        """Harvested energy between two absolute times (joules).

        Computed exactly from the overlap of ``[start, end)`` with each
        sample interval (zero-order hold), so it never double-counts a
        sample regardless of the interval boundaries.
        """
        if end < start:
            raise TraceError("end must be >= start")
        if start < 0.0:
            raise TraceError(f"start must be non-negative, got {start}")
        end = min(end, self.duration)
        if end <= start:
            return 0.0
        first_index = int(start / self.sample_period)
        last_index = min(int(end / self.sample_period), self._powers.size - 1)
        total = 0.0
        for index in range(first_index, last_index + 1):
            interval_start = index * self.sample_period
            interval_end = interval_start + self.sample_period
            overlap = min(end, interval_end) - max(start, interval_start)
            if overlap > 0.0:
                total += float(self._powers[index]) * overlap
        return total

    def statistics(
        self,
        spike_threshold: float = 10e-3,
        low_power_threshold: float = 3e-3,
    ) -> TraceStatistics:
        """Compute the Table 3 / §2.1.2 summary statistics.

        ``spike_energy_fraction`` is the fraction of the total energy
        collected while power exceeds ``spike_threshold``;
        ``time_below_fraction`` is the fraction of time spent below
        ``low_power_threshold``.  The paper reports 82 % and 77 % for the
        solar pedestrian trace used in Figure 1.
        """
        total_energy = self.total_energy
        spike_energy = float(
            self._powers[self._powers > spike_threshold].sum() * self.sample_period
        )
        below_time = float(
            (self._powers < low_power_threshold).sum() * self.sample_period
        )
        return TraceStatistics(
            duration=self.duration,
            mean_power=self.mean_power,
            std_power=float(self._powers.std()),
            coefficient_of_variation=self.coefficient_of_variation,
            peak_power=self.peak_power,
            total_energy=total_energy,
            spike_energy_fraction=(
                (spike_energy / total_energy) if total_energy else 0.0
            ),
            time_below_fraction=(below_time / self.duration) if self.duration else 0.0,
        )

    # -- transformations -----------------------------------------------------

    def scaled(self, factor: float, name: str | None = None) -> "PowerTrace":
        """Return a copy with every sample multiplied by ``factor``."""
        if factor < 0.0:
            raise TraceError(f"scale factor must be non-negative, got {factor}")
        return PowerTrace(
            self._powers * factor, self.sample_period, name or f"{self.name}*{factor:g}"
        )

    def clipped(self, max_power: float, name: str | None = None) -> "PowerTrace":
        """Return a copy with samples clipped to ``max_power``."""
        if max_power <= 0.0:
            raise TraceError(f"max power must be positive, got {max_power}")
        return PowerTrace(
            np.minimum(self._powers, max_power),
            self.sample_period,
            name or f"{self.name}-clipped",
        )

    def truncated(self, duration: float, name: str | None = None) -> "PowerTrace":
        """Return a copy containing only the first ``duration`` seconds."""
        if duration <= 0.0:
            raise TraceError(f"duration must be positive, got {duration}")
        count = max(1, int(round(duration / self.sample_period)))
        return PowerTrace(
            self._powers[:count], self.sample_period, name or f"{self.name}-trunc"
        )

    def resampled(self, sample_period: float, name: str | None = None) -> "PowerTrace":
        """Return a copy resampled (zero-order hold) to a new sample period."""
        if sample_period <= 0.0:
            raise TraceError(f"sample period must be positive, got {sample_period}")
        new_times = np.arange(0.0, self.duration, sample_period)
        indices = np.minimum(
            (new_times / self.sample_period).astype(int), self._powers.size - 1
        )
        return PowerTrace(
            self._powers[indices], sample_period, name or f"{self.name}-resampled"
        )

    def concatenated(
        self, other: "PowerTrace", name: str | None = None
    ) -> "PowerTrace":
        """Return this trace followed by ``other`` (sample periods must match)."""
        if abs(other.sample_period - self.sample_period) > 1e-12:
            raise TraceError("cannot concatenate traces with different sample periods")
        return PowerTrace(
            np.concatenate([self._powers, other.powers]),
            self.sample_period,
            name or f"{self.name}+{other.name}",
        )

    # -- persistence -----------------------------------------------------------

    def to_csv(self, path: Union[str, Path]) -> None:
        """Write the trace as ``time_s,power_w`` rows."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time_s", "power_w"])
            for time, power in self:
                writer.writerow([f"{time:.6f}", f"{power:.9f}"])

    @classmethod
    def from_csv(cls, path: Union[str, Path], name: str | None = None) -> "PowerTrace":
        """Load a trace written by :meth:`to_csv` (or any two-column CSV)."""
        path = Path(path)
        times: list[float] = []
        powers: list[float] = []
        with path.open() as handle:
            reader = csv.reader(handle)
            for row in reader:
                if not row or not row[0] or row[0].startswith("#"):
                    continue
                try:
                    time, power = float(row[0]), float(row[1])
                except ValueError:
                    continue  # header row
                times.append(time)
                powers.append(power)
        if len(powers) < 2:
            raise TraceError(f"trace file {path} contains fewer than two samples")
        sample_period = times[1] - times[0]
        return cls(powers, sample_period, name or path.stem)

    @classmethod
    def from_samples(
        cls,
        samples: Iterable[Tuple[float, float]],
        sample_period: float,
        name: str = "trace",
    ) -> "PowerTrace":
        """Build a trace from ``(time, power)`` pairs sampled uniformly."""
        powers = [power for _, power in samples]
        return cls(powers, sample_period, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"PowerTrace(name={self.name!r}, duration={self.duration:.0f}s, "
            f"mean={self.mean_power * 1e3:.3f} mW, CV={self.coefficient_of_variation:.2f})"
        )
