"""RF energy-harvesting model.

The paper's RF traces come from a Powercast P2110B harvester and TX91501B
915 MHz transmitter in an office.  This module models the pieces of that
chain a user might want to vary: free-space path loss between transmitter
and harvester, antenna gain, and the strongly input-power-dependent RF-to-DC
conversion efficiency of the harvester chip.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.harvester.trace import PowerTrace

#: Speed of light, m/s.
SPEED_OF_LIGHT = 299_792_458.0

#: (input power dBm, efficiency) points approximating a P2110B-style
#: RF-to-DC converter: efficiency collapses at low input power and saturates
#: slightly above 50 % near its optimal operating point.
_RF_DC_EFFICIENCY_CURVE = (
    (-12.0, 0.00),
    (-10.0, 0.05),
    (-5.0, 0.18),
    (0.0, 0.38),
    (5.0, 0.50),
    (10.0, 0.55),
    (15.0, 0.52),
    (20.0, 0.45),
)


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 10.0 ** (dbm / 10.0) * 1e-3


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm."""
    if watts <= 0.0:
        return -math.inf
    return 10.0 * math.log10(watts / 1e-3)


def rf_to_dc_efficiency(input_power: float) -> float:
    """Conversion efficiency of the harvester chip at ``input_power`` watts.

    Linear interpolation over the tabulated curve; zero below the chip's
    sensitivity threshold.
    """
    if input_power <= 0.0:
        return 0.0
    dbm = watts_to_dbm(input_power)
    points = _RF_DC_EFFICIENCY_CURVE
    if dbm <= points[0][0]:
        return points[0][1]
    if dbm >= points[-1][0]:
        return points[-1][1]
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x0 <= dbm <= x1:
            fraction = (dbm - x0) / (x1 - x0)
            return y0 + fraction * (y1 - y0)
    return points[-1][1]  # pragma: no cover - unreachable


@dataclass(frozen=True)
class RfHarvester:
    """A 915 MHz rectenna + RF-to-DC converter.

    Parameters
    ----------
    frequency:
        Carrier frequency in hertz (915 MHz for the Powercast system).
    antenna_gain_dbi:
        Receive antenna gain (the paper's dipole is ~1 dBi).
    transmit_power:
        Transmitter EIRP in watts (TX91501B: 3 W EIRP).
    """

    frequency: float = 915e6
    antenna_gain_dbi: float = 1.0
    transmit_power: float = 3.0

    def __post_init__(self) -> None:
        if self.frequency <= 0.0:
            raise ConfigurationError(
                f"frequency must be positive, got {self.frequency}"
            )
        if self.transmit_power <= 0.0:
            raise ConfigurationError(
                f"transmit power must be positive, got {self.transmit_power}"
            )

    @property
    def wavelength(self) -> float:
        """Carrier wavelength in metres."""
        return SPEED_OF_LIGHT / self.frequency

    def received_rf_power(self, distance: float, obstruction_db: float = 0.0) -> float:
        """Friis free-space RF power at the antenna, in watts."""
        if distance <= 0.0:
            raise ValueError(f"distance must be positive, got {distance}")
        gain = 10.0 ** (self.antenna_gain_dbi / 10.0)
        path_gain = gain * (self.wavelength / (4.0 * math.pi * distance)) ** 2
        obstruction = 10.0 ** (-obstruction_db / 10.0)
        return self.transmit_power * path_gain * obstruction

    def harvested_power(self, distance: float, obstruction_db: float = 0.0) -> float:
        """DC power delivered to the buffer, in watts."""
        rf_power = self.received_rf_power(distance, obstruction_db)
        return rf_power * rf_to_dc_efficiency(rf_power)

    def trace_from_distances(
        self,
        distances: np.ndarray,
        sample_period: float = 1.0,
        obstruction_db: float = 0.0,
        name: str = "rf",
    ) -> PowerTrace:
        """Convert a transmitter-distance timeline into a harvested-power trace.

        This is how a "mobile" RF trace arises physically: the harvester (or
        people around it) moves, the path loss swings, and the DC output
        swings even faster because the conversion efficiency is itself a
        function of input power.
        """
        distances = np.asarray(distances, dtype=float)
        powers = np.array(
            [self.harvested_power(distance, obstruction_db) for distance in distances]
        )
        return PowerTrace(powers, sample_period, name)
