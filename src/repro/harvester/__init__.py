"""Energy-harvesting frontend: power traces, harvester models, and replay.

The paper evaluates REACT by replaying recorded RF and solar power traces
through an Ekho-style programmable power frontend.  This package provides
the equivalent software substrate:

* :mod:`repro.harvester.trace` — the :class:`PowerTrace` container and its
  statistics (duration, mean power, coefficient of variation, spikiness),
* :mod:`repro.harvester.synthetic` — seeded generators that produce the five
  evaluation traces calibrated to Table 3 of the paper,
* :mod:`repro.harvester.solar` / :mod:`repro.harvester.rf` — physical models
  of the harvesting hardware (panel, antenna, RF-to-DC converter),
* :mod:`repro.harvester.regulator` — load/level-dependent conversion
  efficiency of the harvester power stage,
* :mod:`repro.harvester.frontend` — the replay frontend the simulator polls.
"""

from repro.harvester.trace import PowerTrace, TraceStatistics
from repro.harvester.synthetic import (
    SyntheticTraceSpec,
    TABLE3_SPECS,
    generate_table3_trace,
    generate_table3_traces,
    rf_trace,
    solar_trace,
)
from repro.harvester.solar import SolarPanel, diurnal_irradiance
from repro.harvester.rf import RfHarvester, rf_to_dc_efficiency
from repro.harvester.regulator import BoostRegulator, IdealRegulator, Regulator
from repro.harvester.frontend import HarvestingFrontend

__all__ = [
    "PowerTrace",
    "TraceStatistics",
    "SyntheticTraceSpec",
    "TABLE3_SPECS",
    "generate_table3_trace",
    "generate_table3_traces",
    "rf_trace",
    "solar_trace",
    "SolarPanel",
    "diurnal_irradiance",
    "RfHarvester",
    "rf_to_dc_efficiency",
    "Regulator",
    "IdealRegulator",
    "BoostRegulator",
    "HarvestingFrontend",
]
