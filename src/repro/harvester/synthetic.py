"""Synthetic power-trace generators calibrated to the paper's Table 3.

The paper replays three RF traces recorded in an office environment and two
solar traces from the EnHANTs mobile-irradiance dataset.  Those recordings
characterize each trace by its duration, average power, and coefficient of
variation (CV), and describe the qualitative structure: most of the energy
arrives in short high-power spikes while most of the *time* is spent at low
power.

We cannot redistribute the recordings, so this module generates seeded
synthetic traces with the same duration, the same mean power (matched
exactly), a CV matched to within a small tolerance, and a bursty spike
structure.  The buffering policies under study respond exactly to these
properties — how often the buffer sees a surplus vs. a deficit and how large
the swings are — so the substitution preserves the experiments' behaviour.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from repro.exceptions import TraceError
from repro.harvester.trace import PowerTrace


@dataclass(frozen=True)
class SyntheticTraceSpec:
    """Target statistics and structure for one synthetic trace.

    ``burst_rate`` is the expected number of power spikes per second and
    ``burst_duration`` their typical length; together with ``base_fraction``
    (the share of mean power delivered by the quiet baseline) they control
    how bursty the trace is, which the calibration step then tunes to the
    target CV.
    """

    name: str
    kind: str
    duration: float
    mean_power: float
    coefficient_of_variation: float
    burst_rate: float
    burst_duration: float
    base_fraction: float
    sample_period: float = 1.0

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise TraceError(f"duration must be positive, got {self.duration}")
        if self.mean_power <= 0.0:
            raise TraceError(f"mean power must be positive, got {self.mean_power}")
        if self.coefficient_of_variation < 0.0:
            raise TraceError("coefficient of variation must be non-negative")
        if not 0.0 <= self.base_fraction <= 1.0:
            raise TraceError("base fraction must lie in [0, 1]")


#: Target statistics straight from Table 3 of the paper.
TABLE3_SPECS: Dict[str, SyntheticTraceSpec] = {
    "RF Cart": SyntheticTraceSpec(
        name="RF Cart",
        kind="rf",
        duration=313.0,
        mean_power=2.12e-3,
        coefficient_of_variation=1.03,
        burst_rate=0.08,
        burst_duration=6.0,
        base_fraction=0.45,
    ),
    "RF Obstruction": SyntheticTraceSpec(
        name="RF Obstruction",
        kind="rf",
        duration=313.0,
        mean_power=0.227e-3,
        coefficient_of_variation=0.61,
        burst_rate=0.05,
        burst_duration=8.0,
        base_fraction=0.65,
    ),
    "RF Mobile": SyntheticTraceSpec(
        name="RF Mobile",
        kind="rf",
        duration=318.0,
        mean_power=0.5e-3,
        coefficient_of_variation=1.66,
        burst_rate=0.05,
        burst_duration=4.0,
        base_fraction=0.25,
    ),
    "Solar Campus": SyntheticTraceSpec(
        name="Solar Campus",
        kind="solar",
        duration=3609.0,
        mean_power=5.18e-3,
        coefficient_of_variation=2.07,
        burst_rate=0.01,
        burst_duration=45.0,
        base_fraction=0.12,
    ),
    "Solar Commute": SyntheticTraceSpec(
        name="Solar Commute",
        kind="solar",
        duration=6030.0,
        mean_power=0.148e-3,
        coefficient_of_variation=3.33,
        burst_rate=0.004,
        burst_duration=30.0,
        base_fraction=0.05,
    ),
}

#: Canonical order the paper's tables use.
TABLE3_ORDER = (
    "RF Cart",
    "RF Obstruction",
    "RF Mobile",
    "Solar Campus",
    "Solar Commute",
)


def _smooth(values: np.ndarray, window: int) -> np.ndarray:
    """Moving-average smoothing that keeps the array length unchanged."""
    if window <= 1:
        return values
    kernel = np.ones(window) / window
    return np.convolve(values, kernel, mode="same")


def _raw_bursty_shape(
    spec: SyntheticTraceSpec, rng: np.random.Generator
) -> np.ndarray:
    """Generate an uncalibrated non-negative trace with the spec's structure."""
    count = max(2, int(round(spec.duration / spec.sample_period)))
    # Quiet baseline: slowly wandering level around 1.0 (arbitrary units).
    wander = _smooth(rng.standard_normal(count), window=max(3, count // 40))
    wander_std = wander.std() or 1.0
    base = 1.0 + 0.25 * wander / wander_std
    base = np.clip(base, 0.05, None)

    # Spikes: Poisson arrivals of bursts whose amplitude is lognormal.  The
    # heavy-tailed amplitudes reproduce the structure the paper highlights
    # (§2.1.2): most of the harvested energy arrives in short, tall spikes
    # while most of the *time* is spent at low power.
    spikes = np.zeros(count)
    expected_bursts = spec.burst_rate * spec.duration
    n_bursts = rng.poisson(max(expected_bursts, 1.0))
    burst_samples = max(1, int(round(spec.burst_duration / spec.sample_period)))
    for _ in range(n_bursts):
        start = rng.integers(0, count)
        length = max(1, int(rng.exponential(burst_samples)))
        amplitude = rng.lognormal(mean=2.2, sigma=1.0)
        end = min(count, start + length)
        # Rounded (half-sine) burst profile: power ramps in and out.
        profile = np.sin(np.linspace(0.0, np.pi, end - start))
        spikes[start:end] += amplitude * profile
    return base, spikes


def _calibrate(
    base: np.ndarray,
    spikes: np.ndarray,
    spec: SyntheticTraceSpec,
) -> np.ndarray:
    """Mix baseline and spikes to match the spec's mean power and CV.

    The mixing weight between the quiet baseline and the spike train is the
    single knob that moves the CV; we solve for it with bisection and then
    scale the whole trace so the mean matches exactly (scaling leaves the CV
    unchanged).
    """
    base_mean = base.mean() or 1.0
    spike_mean = spikes.mean()
    if spike_mean <= 0.0:
        # Degenerate: no spikes landed (tiny traces); fall back to baseline only.
        shape = base / base_mean
        return shape * spec.mean_power

    def cv_for(weight: float) -> float:
        mixture = (1.0 - weight) * base / base_mean + weight * spikes / spike_mean
        mean = mixture.mean()
        return float(mixture.std() / mean) if mean > 0 else 0.0

    low, high = 0.0, 1.0
    target = spec.coefficient_of_variation
    if cv_for(high) < target:
        weight = high  # spikes alone cannot reach the target; use max burstiness
    elif cv_for(low) > target:
        weight = low
    else:
        for _ in range(60):
            mid = 0.5 * (low + high)
            if cv_for(mid) < target:
                low = mid
            else:
                high = mid
        weight = 0.5 * (low + high)

    mixture = (1.0 - weight) * base / base_mean + weight * spikes / spike_mean
    mixture = np.clip(mixture, 0.0, None)
    scale = spec.mean_power / mixture.mean()
    return mixture * scale


def generate_trace(spec: SyntheticTraceSpec, seed: int = 0) -> PowerTrace:
    """Generate a synthetic trace matching ``spec``.

    The same ``(spec, seed)`` pair always produces the same trace, which is
    what makes the experiment harness repeatable (the role Ekho's
    record-and-replay frontend plays in the paper).
    """
    # A stable (process-independent) seed: Python's built-in hash() is salted
    # per interpreter run, which would silently make every process generate a
    # different trace.
    name_digest = zlib.crc32(spec.name.encode("utf-8"))
    rng = np.random.default_rng((name_digest + 1_000_003 * seed) % (2**32))
    base, spikes = _raw_bursty_shape(spec, rng)
    powers = _calibrate(base, spikes, spec)
    return PowerTrace(powers, spec.sample_period, name=spec.name)


def generate_table3_trace(name: str, seed: int = 0) -> PowerTrace:
    """Generate one of the five evaluation traces by its Table 3 name."""
    if name not in TABLE3_SPECS:
        raise TraceError(
            f"unknown trace {name!r}; expected one of {sorted(TABLE3_SPECS)}"
        )
    return generate_trace(TABLE3_SPECS[name], seed)


def generate_table3_traces(
    seed: int = 0, names: Optional[Iterable[str]] = None
) -> Dict[str, PowerTrace]:
    """Generate all five evaluation traces (or a named subset), in table order."""
    selected = list(names) if names is not None else list(TABLE3_ORDER)
    traces: Dict[str, PowerTrace] = {}
    for name in selected:
        traces[name] = generate_table3_trace(name, seed)
    return traces


def rf_trace(
    duration: float = 313.0,
    mean_power: float = 1e-3,
    coefficient_of_variation: float = 1.0,
    seed: int = 0,
    name: str = "RF Synthetic",
) -> PowerTrace:
    """Generate an office-RF style trace with custom statistics."""
    spec = SyntheticTraceSpec(
        name=name,
        kind="rf",
        duration=duration,
        mean_power=mean_power,
        coefficient_of_variation=coefficient_of_variation,
        burst_rate=0.06,
        burst_duration=6.0,
        base_fraction=0.4,
    )
    return generate_trace(spec, seed)


def solar_trace(
    duration: float = 3600.0,
    mean_power: float = 5e-3,
    coefficient_of_variation: float = 2.0,
    seed: int = 0,
    name: str = "Solar Synthetic",
) -> PowerTrace:
    """Generate a mobile-solar style trace with custom statistics.

    The defaults approximate the pedestrian EnHANTs trace used for Figure 1:
    long stretches of low power with most energy concentrated in short
    high-irradiance windows.
    """
    spec = SyntheticTraceSpec(
        name=name,
        kind="solar",
        duration=duration,
        mean_power=mean_power,
        coefficient_of_variation=coefficient_of_variation,
        burst_rate=0.01,
        burst_duration=45.0,
        base_fraction=0.12,
    )
    return generate_trace(spec, seed)


def solar_night_trace(
    duration: float = 3600.0, mean_power: float = 0.04e-3, seed: int = 0
) -> PowerTrace:
    """A very low-power trace approximating a solar panel at night (§2.1.2)."""
    spec = SyntheticTraceSpec(
        name="Solar Night",
        kind="solar",
        duration=duration,
        mean_power=mean_power,
        coefficient_of_variation=0.4,
        burst_rate=0.002,
        burst_duration=20.0,
        base_fraction=0.9,
    )
    return generate_trace(spec, seed)


def scaled_table3_traces(
    duration_cap: float, seed: int = 0, names: Optional[Iterable[str]] = None
) -> Dict[str, PowerTrace]:
    """Table 3 traces truncated to at most ``duration_cap`` seconds.

    The two solar traces run for 1–2 hours; the truncated variants keep unit
    tests and benchmark harness runs fast while preserving per-trace
    statistics (the generators are stationary, so a prefix has approximately
    the same mean and CV).
    """
    traces = generate_table3_traces(seed, names)
    capped: Dict[str, PowerTrace] = {}
    for name, trace in traces.items():
        if trace.duration > duration_cap:
            capped[name] = trace.truncated(duration_cap, name=trace.name)
        else:
            capped[name] = trace
    return capped
