"""Replayable harvesting frontend (the simulator's power source).

:class:`HarvestingFrontend` is the software equivalent of the paper's
Ekho-inspired record-and-replay power controller: it replays a
:class:`~repro.harvester.trace.PowerTrace` through a
:class:`~repro.harvester.regulator.Regulator` and reports, per timestep, how
much energy is offered to the energy buffer.  It also keeps a ledger of the
raw harvested energy so efficiency metrics can relate "energy that existed in
the environment" to "energy that reached application code".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.harvester.regulator import IdealRegulator, Regulator
from repro.harvester.trace import PowerTrace


@dataclass
class HarvestingFrontend:
    """Replays a power trace through a conversion-efficiency model.

    Parameters
    ----------
    trace:
        The harvested-power timeline to replay.
    regulator:
        Conversion-efficiency model between the transducer and the buffer.
        Defaults to an ideal (lossless) stage so that experiments measuring
        only buffer behaviour are not confounded by converter losses.
    """

    trace: PowerTrace
    regulator: Regulator = field(default_factory=IdealRegulator)

    def __post_init__(self) -> None:
        if self.trace is None:
            raise ConfigurationError("a harvesting frontend requires a power trace")
        self.raw_energy_offered = 0.0
        self.energy_delivered = 0.0

    @property
    def duration(self) -> float:
        """Length of the replayed trace in seconds."""
        return self.trace.duration

    def reset(self) -> None:
        """Clear the energy ledger for a fresh simulation run."""
        self.raw_energy_offered = 0.0
        self.energy_delivered = 0.0

    def raw_power(self, time: float) -> float:
        """Harvested power before conversion losses, in watts."""
        return self.trace.power_at(time)

    def delivered_power(self, time: float, buffer_voltage: float) -> float:
        """Power delivered to the buffer at ``time`` for a given buffer voltage."""
        raw = self.raw_power(time)
        return self.regulator.delivered_power(raw, buffer_voltage)

    def segment_end(self, time: float) -> float:
        """End of the constant-raw-power segment containing ``time``.

        Delegates to the trace's zero-order-hold sample grid; the
        simulator's off-phase fast path advances at most to this boundary
        so that raw power stays constant over the fast-forwarded interval.
        """
        return self.trace.segment_end(time)

    def credit(self, raw_energy: float, delivered_energy: float) -> None:
        """Account a fast-forwarded interval in the energy ledger.

        The off-phase fast path integrates whole constant-power intervals
        outside :meth:`step`; this applies the same cumulative bookkeeping
        those steps would have produced.
        """
        if raw_energy < 0.0 or delivered_energy < 0.0:
            raise ValueError("fast-forwarded energies must be non-negative")
        self.raw_energy_offered += raw_energy
        self.energy_delivered += delivered_energy

    def step(self, time: float, dt: float, buffer_voltage: float) -> float:
        """Energy (joules) offered to the buffer over ``[time, time + dt)``.

        Updates the frontend's cumulative ledger as a side effect.
        """
        if dt <= 0.0:
            raise ValueError(f"dt must be positive, got {dt}")
        raw = self.raw_power(time)
        delivered = self.regulator.delivered_power(raw, buffer_voltage)
        self.raw_energy_offered += raw * dt
        self.energy_delivered += delivered * dt
        return delivered * dt

    @property
    def conversion_efficiency(self) -> float:
        """Cumulative fraction of raw harvested energy that reached the buffer."""
        if self.raw_energy_offered <= 0.0:
            return 1.0
        return self.energy_delivered / self.raw_energy_offered
