"""Photovoltaic harvester model.

The paper's running example (Figure 1, §2.1) uses a 5 cm², 22 %-efficient
solar cell; the hardware evaluation emulates the same panel behind a
bq25570-style management chip.  This module converts irradiance timelines
into electrical power so users can drive the simulator from irradiance data
instead of pre-converted power traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.harvester.trace import PowerTrace

#: Standard "one sun" irradiance in W/m^2.
FULL_SUN_IRRADIANCE = 1000.0


@dataclass(frozen=True)
class SolarPanel:
    """A small photovoltaic panel characterized by area and efficiency.

    Parameters
    ----------
    area_cm2:
        Active cell area in square centimetres (paper: 5 cm²).
    efficiency:
        Conversion efficiency at standard conditions (paper: 0.22).
    fill_factor:
        Derating applied for operating off the maximum-power point; the
        bq25570's fractional-open-circuit MPPT typically captures ~80–90 %
        of the true MPP.
    """

    area_cm2: float = 5.0
    efficiency: float = 0.22
    fill_factor: float = 0.85

    def __post_init__(self) -> None:
        if self.area_cm2 <= 0.0:
            raise ConfigurationError(
                f"panel area must be positive, got {self.area_cm2}"
            )
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError(
                f"efficiency must lie in (0, 1], got {self.efficiency}"
            )
        if not 0.0 < self.fill_factor <= 1.0:
            raise ConfigurationError(
                f"fill factor must lie in (0, 1], got {self.fill_factor}"
            )

    @property
    def area_m2(self) -> float:
        """Active area in square metres."""
        return self.area_cm2 * 1e-4

    def power_from_irradiance(self, irradiance: float) -> float:
        """Electrical output power (W) for an irradiance in W/m²."""
        if irradiance < 0.0:
            raise ValueError(f"irradiance must be non-negative, got {irradiance}")
        return irradiance * self.area_m2 * self.efficiency * self.fill_factor

    def full_sun_power(self) -> float:
        """Output power under standard one-sun illumination."""
        return self.power_from_irradiance(FULL_SUN_IRRADIANCE)

    def trace_from_irradiance(
        self, irradiance: np.ndarray, sample_period: float = 1.0, name: str = "solar"
    ) -> PowerTrace:
        """Convert an irradiance timeline (W/m²) into a power trace."""
        irradiance = np.asarray(irradiance, dtype=float)
        powers = np.array([self.power_from_irradiance(value) for value in irradiance])
        return PowerTrace(powers, sample_period, name)


def diurnal_irradiance(
    duration: float,
    sample_period: float = 60.0,
    peak_irradiance: float = 600.0,
    sunrise: float = 6.0 * 3600.0,
    sunset: float = 18.0 * 3600.0,
    cloud_fraction: float = 0.3,
    seed: int = 0,
) -> np.ndarray:
    """A simple day-cycle irradiance model with random cloud attenuation.

    The deterministic component is a half-sine between sunrise and sunset;
    clouds multiply it by a slowly varying attenuation factor.  This is a
    deliberately coarse model — the evaluation traces come from
    :mod:`repro.harvester.synthetic` — but it lets example applications run
    a multi-day deployment scenario.
    """
    if duration <= 0.0:
        raise ValueError(f"duration must be positive, got {duration}")
    rng = np.random.default_rng(seed)
    times = np.arange(0.0, duration, sample_period)
    day_seconds = 24.0 * 3600.0
    time_of_day = np.mod(times, day_seconds)
    day_length = sunset - sunrise
    solar_angle = np.clip((time_of_day - sunrise) / day_length, 0.0, 1.0)
    clear_sky = peak_irradiance * np.sin(np.pi * solar_angle)
    clear_sky[(time_of_day < sunrise) | (time_of_day > sunset)] = 0.0
    # Slowly varying cloud attenuation between (1 - cloud_fraction) and 1.
    # The smoothing window is capped at the timeline length — and the cap
    # must win over the 3-sample floor: np.convolve's "same" mode returns
    # max(len(input), len(kernel)) samples, so any kernel longer than a
    # short timeline would change the output shape.
    cloud_noise = rng.random(times.size)
    window = min(max(3, int(1800.0 / sample_period)), times.size)
    kernel = np.ones(window) / window
    smoothed = np.convolve(cloud_noise, kernel, mode="same")
    attenuation = 1.0 - cloud_fraction * smoothed
    return np.clip(clear_sky * attenuation, 0.0, None)
