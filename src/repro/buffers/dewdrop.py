"""Dewdrop-style adaptive enable voltage on a single capacitor (NSDI'11).

Dewdrop keeps a single static capacitor but varies the *enable voltage*
according to projected task needs: a cheap task can start at a lower
voltage (better reactivity), an expensive one waits for a higher voltage
(better longevity).  Energy is fully fungible, but the design still suffers
the reactivity-longevity tradeoff of the underlying capacitor size (§2.4).

Like Capybara, this is a related-work extension rather than one of the
paper's evaluated baselines; it lets users reproduce the argument that
varying the enable point alone cannot match an energy-adaptive capacitance.
"""

from __future__ import annotations

import math

from typing import Optional

from repro.buffers.static import StaticBuffer
from repro.exceptions import ConfigurationError
from repro.units import capacitor_energy


class DewdropBuffer(StaticBuffer):
    """A static capacitor whose effective enable point tracks task energy.

    The buffer itself is a plain capacitor; the adaptive part is the
    longevity API, which converts a requested task energy into the voltage
    the capacitor must reach before the task should start.
    """

    supports_longevity = True

    def __init__(
        self,
        capacitance: float,
        max_voltage: float = 3.6,
        brownout_voltage: float = 1.8,
        minimum_enable_voltage: float = 2.2,
        name: str = "Dewdrop",
    ) -> None:
        super().__init__(
            capacitance=capacitance,
            max_voltage=max_voltage,
            brownout_voltage=brownout_voltage,
            name=name,
        )
        if not brownout_voltage < minimum_enable_voltage <= max_voltage:
            raise ConfigurationError(
                "minimum enable voltage must lie between brown-out and max voltage"
            )
        self.minimum_enable_voltage = minimum_enable_voltage

    # Off-phase fast forwarding: Dewdrop is electrically a plain static
    # capacitor (the adaptation lives entirely in the longevity API, which
    # only software on a *powered* platform exercises), so the exact
    # inlined fast path inherited from :class:`StaticBuffer` applies as-is.

    def required_voltage(self, task_energy: float) -> float:
        """Voltage the capacitor must reach before a task of ``task_energy`` starts."""
        if task_energy < 0.0:
            raise ValueError(f"task energy must be non-negative, got {task_energy}")
        floor_energy = capacitor_energy(self.capacitance, self.brownout_voltage)
        needed = floor_energy + task_energy
        voltage = math.sqrt(2.0 * needed / self.capacitance)
        return max(self.minimum_enable_voltage, min(voltage, self.max_voltage))

    def longevity_satisfied(self) -> bool:
        if self.longevity_request <= 0.0:
            return True
        return self.output_voltage >= self.required_voltage(self.longevity_request)

    def longevity_wake_voltage(self) -> Optional[float]:
        """Dewdrop's longevity condition *is* a voltage threshold.

        :meth:`longevity_satisfied` compares the output voltage against
        :meth:`required_voltage` of the pending request, so the threshold
        itself is the exact wake voltage the simulator's quiescent fast
        path must stop below — the inputs (request, capacitance, clamps)
        are all frozen while the workload waits.
        """
        if self.longevity_request <= 0.0:
            return None
        return self.required_voltage(self.longevity_request)
