"""Common interface for all energy-buffer architectures.

The simulator interacts with a buffer through four operations per step —
harvest, draw, housekeeping, and telemetry — plus the longevity-guarantee
API that longevity-aware software (the RT and PF workloads) uses on buffers
that support it.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

import numpy as np


@dataclass
class BufferLedger:
    """Cumulative energy accounting for a whole buffer architecture.

    The end-to-end efficiency experiments reduce to comparing these fields:
    energy the environment offered, energy actually stored, energy delivered
    to the load, and the three loss channels (overvoltage clipping, leakage,
    and internal switching/transfer dissipation).
    """

    offered: float = 0.0
    stored: float = 0.0
    delivered: float = 0.0
    clipped: float = 0.0
    leaked: float = 0.0
    switching_loss: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "offered": self.offered,
            "stored": self.stored,
            "delivered": self.delivered,
            "clipped": self.clipped,
            "leaked": self.leaked,
            "switching_loss": self.switching_loss,
        }

    @property
    def capture_efficiency(self) -> float:
        """Fraction of offered energy that was stored rather than clipped."""
        if self.offered <= 0.0:
            return 1.0
        return self.stored / self.offered

    @property
    def delivery_efficiency(self) -> float:
        """Fraction of offered energy that reached the load."""
        if self.offered <= 0.0:
            return 0.0
        return self.delivered / self.offered


class LockstepKernel:
    """Shared fast-forward machinery for batch lockstep kernels.

    A lockstep kernel (:class:`~repro.buffers.static.StaticBatchKernel`,
    :class:`~repro.buffers.morphy_batch.MorphyBatchKernel`) advances many
    lanes per step through vectorized ``harvest`` / ``draw`` /
    ``housekeeping`` hooks that mirror the scalar buffer arithmetic bit for
    bit.  This base class adds the vectorized counterparts of the scalar
    :meth:`EnergyBuffer.fast_forward` / :meth:`~EnergyBuffer.fast_forward_on`
    entry points: given a :class:`~repro.sim.segments.LaneSegmentPlan`, each
    lane replays up to its per-lane step budget of whole-segment steps
    through the kernel's own hooks, with lanes that stopped (or never
    started) masked to exact no-op inputs — zero energy, zero load, zero
    ``dt``, and a ``-inf`` housekeeping timestamp so no controller poll can
    fire for a frozen lane.

    Because the replay goes through the same hooks as the lockstep main
    loop, a fast-forwarded lane's trajectory and ledger are bit-identical
    to stepping it normally; the speedup comes from collapsing whole
    segments of the batch engine's per-iteration Python dispatch (workload
    hint checks, gating, retirement scans) into this tight loop.  The stop
    checks are exact wherever :meth:`_post_harvest_voltage` is exact
    (statics/Dewdrop override it with the closed-form post-harvest voltage)
    and conservative otherwise (Morphy inherits the upper *bound*, so its
    lanes may stop a step early and resume under normal stepping — never
    skipping past a transition).

    Subclasses must provide the kernel protocol this class drives:
    ``voltage``, ``post_harvest_voltage_bound``, ``harvest``, ``draw``,
    ``housekeeping`` and ``drained_mask``.
    """

    #: Whether the batch engine may fast-forward whole segments through
    #: this kernel.  True for any kernel whose hooks treat zero-energy /
    #: zero-``dt`` inputs as exact no-ops (required for the lane masking).
    supports_fast_forward = True

    #: Replay economics hint for the batch engine: when True, only plans
    #: covering *every* lane are worth executing through this kernel.  The
    #: generic array replay below pays one full-width vectorized step per
    #: committed step — about the price of a lockstep main-loop step — so
    #: it only wins when it replaces main-loop iterations outright (all
    #: lanes skipping together); replaying a partial lane group would run
    #: the heavy hooks twice per simulated step.  Kernels with a cheap
    #: per-lane replay (the static kernel's inlined float loop) leave this
    #: False and profit from any group size.
    fast_forward_needs_full_batch = True

    #: Housekeeping timestamp for masked lanes: no poll schedule can be due
    #: at ``-inf``, so a frozen lane's controller never runs.
    _NEVER = float("-inf")

    def _post_harvest_voltage(self, energy: np.ndarray) -> np.ndarray:
        """Per-lane post-harvest output voltage, or an upper bound on it.

        Used for the pre-commit ``stop_above`` check.  The default is the
        kernel's :meth:`post_harvest_voltage_bound`; kernels whose exact
        post-harvest voltage has a closed form override this so the check
        matches the gate's observation point bit for bit.
        """
        return self.post_harvest_voltage_bound(energy)

    def _replay_load(
        self, load: np.ndarray, stepping: np.ndarray, system_on: bool
    ) -> np.ndarray:
        """Per-lane draw current for one replayed step, masked to the movers.

        The engine hands the replay a per-lane constant ``load``; kernels
        whose scalar counterpart re-evaluates a state-dependent
        :meth:`EnergyBuffer.overhead_current` inside every fast-forwarded
        step (``dynamic_overhead`` kernels — REACT ties it to the output
        voltage and connected-bank count) override this to add that term
        before the mask, mirroring the scalar replay loops bit for bit.
        """
        return np.where(stepping, load, 0.0)

    def fast_forward(self, energy_in, load, dt, times, plan):
        """Advance off-phase lanes through whole-segment replay.

        ``energy_in`` / ``load`` are per-lane constants over the planned
        segments (delivered energy per step, gate quiescent plus buffer
        overhead current); ``times`` is the per-lane clock array, which is
        not mutated — a fresh array with ``dt`` added once per committed
        step (the scalar engine's additive accumulation) is returned along
        with the per-lane committed step counts.
        """
        max_steps = plan.steps
        stop_above = plan.stop_above
        stop_below = plan.stop_below
        drain_floor = plan.drain_floor
        check_drain = bool(np.isfinite(drain_floor).any())
        harvesting = bool(np.any(energy_in > 0.0))
        stepping = max_steps > 0
        consumed = np.zeros(len(max_steps), dtype=np.int64)
        times = times.copy()
        never = np.full(len(max_steps), self._NEVER)
        while True:
            # Pre-commit: no committed step's post-harvest voltage may
            # reach stop_above (the gate would engage / the efficiency
            # region would change on a step the engine must run normally).
            stepping &= self.voltage < stop_above
            if harvesting and stepping.any():
                energy = np.where(stepping, energy_in, 0.0)
                stepping &= self._post_harvest_voltage(energy) < stop_above
            if not stepping.any():
                break
            if harvesting:
                self.harvest(np.where(stepping, energy_in, 0.0))
            masked_dt = np.where(stepping, dt, 0.0)
            self.draw(self._replay_load(load, stepping, False), masked_dt)
            self.housekeeping(np.where(stepping, times, never), masked_dt)
            times = np.where(stepping, times + dt, times)
            consumed += stepping
            # Post-commit: the committed step used the correct pre-crossing
            # power; a lane that ended below an efficiency breakpoint (or
            # past the drain termination test) stops here.
            stepping &= ~(self.voltage < stop_below)
            if check_drain:
                stepping &= ~self.drained_mask(drain_floor)
            stepping &= consumed < max_steps
        return consumed, times

    def fast_forward_on(self, energy_in, load, dt, times, plan, brownout_floor):
        """Advance quiescent on-phase lanes through whole-segment replay.

        The on-phase analogue of :meth:`fast_forward`: ``load`` is each
        lane's promised constant demand (MCU mode + peripherals + gate
        quiescent + buffer overhead, as cached by the batch engine's hint
        masks) and the stop set swaps the drain test for the gate's
        brown-out floor, checked at each step *start* — harvesting can
        only raise the voltage, so a step starting above the floor cannot
        brown out mid-step, while a step starting at or below it might and
        is left to the engine's exact machinery to resolve.
        """
        max_steps = plan.steps
        stop_above = plan.stop_above
        stop_below = plan.stop_below
        harvesting = bool(np.any(energy_in > 0.0))
        stepping = max_steps > 0
        consumed = np.zeros(len(max_steps), dtype=np.int64)
        times = times.copy()
        never = np.full(len(max_steps), self._NEVER)
        while True:
            voltage = self.voltage
            stepping &= ~(voltage <= brownout_floor)
            stepping &= voltage < stop_above
            if harvesting and stepping.any():
                energy = np.where(stepping, energy_in, 0.0)
                stepping &= self._post_harvest_voltage(energy) < stop_above
            if not stepping.any():
                break
            if harvesting:
                self.harvest(np.where(stepping, energy_in, 0.0))
            masked_dt = np.where(stepping, dt, 0.0)
            self.draw(self._replay_load(load, stepping, True), masked_dt)
            self.housekeeping(np.where(stepping, times, never), masked_dt)
            times = np.where(stepping, times + dt, times)
            consumed += stepping
            stepping &= ~(self.voltage < stop_below)
            stepping &= consumed < max_steps
        return consumed, times


class EnergyBuffer(ABC):
    """Abstract energy buffer between the harvester and the platform."""

    #: Human-readable name used in result tables ("770 uF", "REACT", ...).
    name: str = "buffer"

    #: Whether software can set longevity guarantees on this buffer.
    supports_longevity: bool = False

    def __init__(self) -> None:
        self.ledger = BufferLedger()
        self._longevity_request: float = 0.0

    # -- telemetry ------------------------------------------------------------

    @property
    @abstractmethod
    def output_voltage(self) -> float:
        """Voltage presented to the power gate / computational backend."""

    @property
    @abstractmethod
    def stored_energy(self) -> float:
        """Total energy currently stored anywhere in the buffer (joules)."""

    @property
    @abstractmethod
    def capacitance(self) -> float:
        """Present equivalent capacitance seen at the buffer output (farads)."""

    @property
    @abstractmethod
    def max_capacitance(self) -> float:
        """Largest equivalent capacitance the buffer can be configured to."""

    def snapshot(self) -> Dict[str, float]:
        """Per-step telemetry for the recorder."""
        return {
            "voltage": self.output_voltage,
            "stored_energy": self.stored_energy,
            "capacitance": self.capacitance,
        }

    # -- energy flow ----------------------------------------------------------

    @abstractmethod
    def harvest(self, energy: float, dt: float) -> float:
        """Absorb up to ``energy`` joules offered by the harvester.

        Returns the energy actually stored; the difference is clipped.
        Implementations must update :attr:`ledger`.
        """

    @abstractmethod
    def draw(self, current: float, dt: float) -> float:
        """Supply the load with ``current`` amperes for ``dt`` seconds.

        Returns the energy delivered.  Implementations must update
        :attr:`ledger`.
        """

    @abstractmethod
    def housekeeping(self, time: float, dt: float, system_on: bool) -> None:
        """Apply leakage and run any controller logic for this step."""

    def overhead_current(self, system_on: bool) -> float:
        """Extra load current the buffer's own circuitry adds (amperes)."""
        return 0.0

    # -- multi-system batching ------------------------------------------------

    def batch_key(self) -> Optional[Hashable]:
        """Lockstep-compatibility key for batched execution, or None.

        Batched execution replays the exact per-step ``harvest`` / ``draw`` /
        ``housekeeping`` arithmetic of the scalar engine across many systems
        through shared numpy state arrays, so it is only available to buffer
        architectures that export a vectorized kernel.  Lanes whose keys
        compare equal (and that share a power trace) can run inside one
        kernel instance of a :class:`~repro.sim.batch.BatchSimulator`; the
        experiment layer partitions grid cells on this key.  ``None`` means
        no batched kernel exists for this buffer and its lanes fall back to
        the scalar engine (see
        :meth:`~repro.buffers.static.StaticBuffer.batch_key` and
        :meth:`~repro.buffers.morphy.MorphyBuffer.batch_key` for the
        in-tree kernels).
        """
        return None

    def can_batch(self) -> bool:
        """Whether a :class:`~repro.sim.batch.BatchSimulator` lane can host this buffer."""
        return self.batch_key() is not None

    # -- off-phase fast forwarding --------------------------------------------

    def can_fast_forward(self) -> bool:
        """Whether the simulator may batch off-phase steps through this buffer.

        While the power gate is disconnected the simulator's per-step work
        reduces to ``harvest`` / ``draw`` / ``housekeeping`` with a constant
        harvest power (the trace is zero-order-hold) and the gate's
        quiescent load.  :meth:`fast_forward` replays exactly that call
        sequence without the engine's per-step dispatch, so it is exact by
        construction for any buffer implemented through those three hooks.

        Subclasses must override this to return False if their ``harvest``
        can raise the output voltage beyond the
        :meth:`post_harvest_voltage_bound` contract (e.g. by triggering a
        reconfiguration), since the simulator relies on that bound to stop
        fast-forwarding before the power gate would engage.
        """
        return True

    def post_harvest_voltage_bound(self, energy: float) -> float:
        """Upper bound on the output voltage right after absorbing ``energy``.

        Used by the simulator to (a) stop the off-phase fast path before a
        harvest step could lift the output to the gate's enable voltage and
        (b) drop to the fine on-phase timestep for the step on which the
        gate engages.  The contract: the returned value must be ≥ the true
        post-harvest output voltage; being loose only costs a few extra
        fine-grained steps near the threshold, while being tight risks the
        fast path skipping over an enable transition.  The default assumes
        the whole energy lands on the *present output capacitance* — exact
        for a single capacitor, conservative for designs that split or
        attenuate the inflow, but **an underestimate** for designs whose
        harvest can charge a smaller capacitance than the reported
        equivalent (REACT's last-level buffer is the in-tree example, and
        overrides this accordingly).  Such designs must override.
        """
        if energy <= 0.0:
            return self.output_voltage
        voltage = self.output_voltage
        return math.sqrt(voltage * voltage + 2.0 * energy / self.capacitance)

    def fast_forward(
        self,
        delivered_power: float,
        quiescent_current: float,
        dt: float,
        start_time: float,
        max_steps: int,
        stop_above: Optional[float] = None,
        stop_below: Optional[float] = None,
        drain_floor: Optional[float] = None,
    ) -> Tuple[int, float]:
        """Advance up to ``max_steps`` off-phase steps of size ``dt``.

        Replays the exact per-step sequence the simulator would execute
        while the platform is off — harvest ``delivered_power * dt``, draw
        the gate's quiescent current plus :meth:`overhead_current`, then run
        :meth:`housekeeping` — but in a tight loop free of the engine's
        per-step frontend/workload/gate/recorder dispatch.

        Stops early (without consuming the offending step) when the output
        voltage reaches ``stop_above`` at a step start, or when
        :meth:`post_harvest_voltage_bound` says the next harvest could reach
        it.  Stops after a committed step when the voltage falls below
        ``stop_below`` (the harvester's efficiency region changed) or when
        ``drain_floor`` is set and the buffer can no longer restart the
        platform (the post-trace drain termination test).

        Returns ``(steps_consumed, end_time)`` where ``end_time`` is
        ``start_time`` advanced by ``dt`` per consumed step using the same
        additive accumulation the step-by-step engine performs, so
        downstream time-keyed behaviour (trace sample indexing, controller
        poll schedules) sees bit-identical timestamps.
        """
        energy = delivered_power * dt
        time = start_time
        steps = 0
        while steps < max_steps:
            if stop_above is not None:
                if self.output_voltage >= stop_above:
                    break
                if self.post_harvest_voltage_bound(energy) >= stop_above:
                    break
            self.harvest(energy, dt)
            self.draw(quiescent_current + self.overhead_current(False), dt)
            self.housekeeping(time, dt, False)
            time += dt
            steps += 1
            if stop_below is not None and self.output_voltage < stop_below:
                break
            if drain_floor is not None and self.output_voltage < drain_floor:
                if not self.can_reach_voltage(drain_floor):
                    break
        return steps, time

    # -- on-phase fast forwarding ----------------------------------------------

    def fast_forward_on(
        self,
        delivered_power: float,
        load_current: float,
        dt: float,
        start_time: float,
        max_steps: int,
        stop_above: Optional[float] = None,
        stop_below: Optional[float] = None,
        brownout_floor: Optional[float] = None,
        wake_energy: Optional[float] = None,
    ) -> Tuple[int, float]:
        """Advance up to ``max_steps`` quiescent *on*-phase steps of size ``dt``.

        The on-phase analogue of :meth:`fast_forward`, used when the
        workload has declared a :class:`~repro.workloads.base.QuiescenceHint`:
        the platform load is the constant ``load_current`` (MCU mode +
        peripherals + gate quiescent current; this method adds the buffer's
        own :meth:`overhead_current`, re-evaluated per step since designs
        like REACT tie it to the output voltage) and the per-step call
        sequence — harvest, draw, ``housekeeping(..., system_on=True)`` —
        replays exactly what the engine would execute, so controller
        polling and replenishment still run on their own schedules.

        Stop conditions, all conservative (an un-consumed step is simply
        executed by the engine's exact per-step machinery):

        * ``stop_above`` — a wake voltage or the next regulator efficiency
          breakpoint above; checked against the present voltage and the
          :meth:`post_harvest_voltage_bound` *before* committing a step, so
          no committed step's workload-observation point (post-harvest) can
          have crossed it.
        * ``wake_energy`` — a pending longevity request with no expressible
          wake voltage; the loop stops before any step whose harvest could
          lift :meth:`usable_energy` to the request.  Harvest raises the
          usable energy by at most the offered energy, and a double margin
          absorbs both float rounding and housekeeping-driven jumps (which
          are caught at the next iteration's re-check, after they happen).
        * ``brownout_floor`` — checked against the voltage at each step
          *start* (equal to the previous step's end): harvesting can only
          raise the voltage, so a step starting above the floor cannot
          brown out mid-step, while a step starting at or below it might
          (the gate tests the post-harvest voltage) and is left to the
          engine's exact machinery to resolve.
        * ``stop_below`` — the regulator's efficiency region changed; the
          committed step still used the correct (pre-crossing) power.
        """
        energy = delivered_power * dt
        time = start_time
        steps = 0
        while steps < max_steps:
            voltage = self.output_voltage
            if brownout_floor is not None and voltage <= brownout_floor:
                break
            if stop_above is not None:
                if voltage >= stop_above:
                    break
                if self.post_harvest_voltage_bound(energy) >= stop_above:
                    break
            if (
                wake_energy is not None
                and self.usable_energy() + 2.0 * energy >= wake_energy
            ):
                break
            self.harvest(energy, dt)
            self.draw(load_current + self.overhead_current(True), dt)
            self.housekeeping(time, dt, True)
            time += dt
            steps += 1
            if stop_below is not None and self.output_voltage < stop_below:
                break
        return steps, time

    # -- longevity guarantees --------------------------------------------------

    def request_longevity(self, energy: float) -> None:
        """Ask the buffer to accumulate ``energy`` joules before proceeding.

        Only meaningful when :attr:`supports_longevity` is True; the base
        implementation records the request so subclasses can honour it.
        """
        if energy < 0.0:
            raise ValueError(f"requested energy must be non-negative, got {energy}")
        self._longevity_request = energy

    def longevity_satisfied(self) -> bool:
        """True when the pending longevity request (if any) is met."""
        return self.usable_energy() >= self._longevity_request

    def clear_longevity(self) -> None:
        """Drop any pending longevity request."""
        self._longevity_request = 0.0

    @property
    def longevity_request(self) -> float:
        """The currently requested reserve energy in joules (0 when none)."""
        return self._longevity_request

    def longevity_wake_voltage(self) -> Optional[float]:
        """Output voltage at which the pending longevity request is met.

        When a buffer's :meth:`longevity_satisfied` condition is exactly a
        threshold on the output voltage (Dewdrop's adaptive enable point is
        the in-tree case), returning that threshold lets the simulator
        fast-forward a waiting workload right up to it.  The returned value
        must be exact or conservative (never above the true flip voltage
        while a lower output could already satisfy the request — the
        fast path skips *until* the voltage reaches it).  ``None`` (the
        default) means the condition has no output-voltage equivalent; the
        simulator then falls back to a usable-energy guard on the pending
        request, which is conservative for every buffer whose harvest
        raises :meth:`usable_energy` by at most the offered energy.
        """
        return None

    def usable_energy(self) -> float:
        """Energy extractable before the platform would brown out.

        Subclasses refine this; the default is the total stored energy,
        which is an optimistic surrogate.
        """
        return self.stored_energy

    def can_reach_voltage(self, voltage: float) -> bool:
        """Whether the output could still reach ``voltage`` without new input.

        Used by the simulator's post-trace drain logic to decide when the
        system can no longer restart.  The default assumes all stored energy
        could be concentrated onto the present output capacitance, which is
        a safe (conservative-toward-continuing) over-approximation.
        """
        if voltage <= 0.0:
            return True
        needed = 0.5 * self.capacitance * voltage * voltage
        return self.stored_energy >= needed

    # -- lifecycle ----------------------------------------------------------------

    @abstractmethod
    def reset(self) -> None:
        """Restore the buffer to its cold-start state for a fresh run."""

    def _reset_base(self) -> None:
        """Helper for subclasses: clear the ledger and longevity state."""
        self.ledger = BufferLedger()
        self._longevity_request = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"V={self.output_voltage:.3f} V, C={self.capacitance * 1e3:.3f} mF)"
        )
