"""Vectorized lockstep kernel for batches of REACT lanes.

:class:`ReactBatchKernel` advances N config-sharing
:class:`~repro.buffers.react_adapter.ReactBuffer` systems per step through
shared numpy state arrays, one row per lane: the last-level buffer lives in
a ``(lanes,)`` charge array and the reconfigurable fabric in
``(lanes, bank_count)`` cell-voltage / state-code arrays, so the per-step
harvest / draw / leakage / replenishment arithmetic and the controller's
10 Hz poll all vectorize across lanes.

Why this shape: profiling the scalar REACT quick cells (PR 10 prelude)
puts ~80 % of the wall-clock in bank-array stepping —
``ReactHardware.replenish`` (~2.4 s cumulative over 4 cells),
``harvest``/``_lowest_voltage_element`` (~3.4 s) and ``apply_leakage``
(~1.2 s) against ~0.2 s for ``ReactController.poll`` — so the kernel
vectorizes the per-step electrical recurrences wholesale and runs the
(rare, per-lane-divergent) controller policy as masked lane-group updates
on the shared poll grid.

Layout
------

* ``_ll_charge (lanes,)`` — last-level buffer charge (coulombs; the scalar
  :class:`~repro.capacitors.capacitor.Capacitor` is charge-domain, so the
  kernel is too — every voltage read mirrors its ``charge / capacitance``).
* ``_cell_v (lanes, B)`` / ``_state (lanes, B)`` — per-bank cell voltage
  and connection state (0 = disconnected, 1 = series, 2 = parallel; the
  scalar state machine's step_up/step_down become masked ``±1`` column
  updates).
* controller state (``_next_poll``, ``_last_expansion``, ``_last_signal``)
  and integer action counters as per-lane arrays, written back as deltas.
* hardware loss counters (``energy_clipped`` / ``energy_leaked`` /
  ``transfer_loss``) as *absolute* per-lane arrays plus the adapter's
  baseline arrays: the adapter's baseline-delta dance
  (``clipped_now = counter - baseline; baseline = counter``) is not
  bitwise reproducible from deltas alone (``(c + x) - c != x``), so the
  kernel replicates the absolute arithmetic exactly.

Bit-equality notes
------------------

Every expression mirrors its scalar counterpart operation for operation
(the repo-wide discipline the differential suite pins):

* **Element selection**: the scalar harvest scan keeps the *first strict
  minimum* (last-level first, then banks in order) and the replenish scan
  the *first maximum* — both are exactly ``np.argmin`` / ``np.argmax``
  first-occurrence semantics over a column-ordered candidate matrix with
  ±inf masking the ineligible entries.
* **Sequential column adds**: wherever the scalar code runs a Python
  reduction (leakage summed last-level-then-banks into ``energy_leaked``),
  the kernel adds columns one at a time in the same order instead of
  ``np.sum``.
* **Masked no-ops**: a masked-out lane's arrays are bit-unchanged.  Zero
  energy / zero load / zero ``dt`` are natural no-ops of the charge-domain
  updates (``x + 0.0 == x``, ``x - x == +0.0``); the one hazard is the
  bank-leakage charge round trip ``(unit * v - 0.0) / unit``, which can
  shift an ulp at ``dt == 0`` and is therefore committed only where
  ``dt > 0``.  Replenishment and polling are likewise gated on
  ``dt > 0`` because the scalar housekeeping only runs for real steps.
* **Controller loops**: the scalar reclamation loop (step_down →
  replenish → resample, at most ``2 * B`` rounds) runs as a masked
  fixed-point iteration with the same per-round sampling, so
  ``monitor.last_signal`` latches identically.

The kernel inherits the generic full-batch segment replay from
:class:`~repro.buffers.base.LockstepKernel`
(``fast_forward_needs_full_batch = True``: one replayed step costs about a
main-loop step, so partial-group replay would run the heavy hooks twice
per simulated step).  REACT's overhead current is state-dependent
(:attr:`dynamic_overhead`), so the replay override adds
``overhead_current`` per step inside :meth:`_replay_load` — mirroring the
scalar ``fast_forward`` loops, which re-evaluate it every step — and the
batch engine adds it after load assembly instead of caching it.

:class:`~repro.buffers.capybara.CapybaraBuffer` does **not** share this
kernel: it is a different architecture (base + task capacitor with
software-directed surplus steering, no bank fabric) that extends
``EnergyBuffer`` directly, so it keeps the scalar engine and the explicit
stays-scalar test in ``tests/test_batch_engine.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.buffers.base import EnergyBuffer, LockstepKernel
from repro.buffers.react_adapter import ReactBuffer
from repro.capacitors.leakage import VoltageProportionalLeakage
from repro.capacitors.switches import SwitchState
from repro.core.bank import BankState
from repro.platform.monitor import BufferSignal

#: Bank connection state codes (int8 column values of ``_state``).
_STATE_CODE = {
    BankState.DISCONNECTED: 0,
    BankState.SERIES: 1,
    BankState.PARALLEL: 2,
}
_CODE_STATE = {code: state for state, code in _STATE_CODE.items()}

#: DPDT throw position for each bank state (both poles gang together).
_SWITCH_FOR_STATE = {
    BankState.DISCONNECTED: SwitchState.OPEN,
    BankState.SERIES: SwitchState.POSITION_A,
    BankState.PARALLEL: SwitchState.POSITION_B,
}

#: Voltage-monitor signal codes (int8 values of ``_last_signal``).
_SIGNAL_CODE = {
    BufferSignal.OK: 0,
    BufferSignal.NEAR_FULL: 1,
    BufferSignal.NEAR_EMPTY: 2,
}
_CODE_SIGNAL = {code: signal for signal, code in _SIGNAL_CODE.items()}


class ReactBatchKernel(LockstepKernel):
    """Lockstep kernel over N REACT lanes sharing one ``ReactConfig``."""

    #: The kernel's overhead current depends on live state (output voltage
    #: and connected-bank count), so the batch engine must not cache it at
    #: batch start: it zeroes the static overhead contribution instead and
    #: adds :meth:`overhead_current` to the assembled load every step.
    dynamic_overhead = True

    #: Opt in to shared-expiry hint clustering
    #: (:func:`~repro.sim.segments.cluster_expiry_budgets`): the full-batch
    #: replay only fires when *every* on lane agrees, so trading a step or
    #: two of skip length to keep near-coincident lanes phase-locked wins
    #: here (~13% on the 80-lane hint sweep).  Kernels whose lanes replay
    #: fine unaligned profile slower with clustering, so it is per-kernel
    #: opt-in rather than an engine default.
    wants_expiry_clustering = True

    def __init__(self, buffers: Sequence[ReactBuffer]) -> None:
        self.buffers: List[ReactBuffer] = list(buffers)
        n = len(self.buffers)
        template = self.buffers[0]
        config = template.config
        hardware = template.hardware
        last_level = hardware.last_level

        # -- shared constants (equal across lanes by batch_key) ----------------
        self._C_ll = last_level.capacitance
        self._vmax = config.max_voltage
        # Mirrors Capacitor.charge_with_energy's clamp constant expression.
        rated = last_level.rated_voltage
        self._ll_max_energy = 0.5 * self._C_ll * rated * rated
        self._harvest_thresh_ll = self._vmax - 1e-9
        ll_leakage = last_level.leakage
        assert isinstance(ll_leakage, VoltageProportionalLeakage)
        self._ll_rated_current = ll_leakage.rated_current
        self._ll_rated_voltage = ll_leakage.rated_voltage
        self._high = config.high_threshold
        self._low = config.low_threshold
        self._poll_period = config.poll_period
        self._expansion_min_interval = template.controller.expansion_min_interval
        self._brownout = config.brownout_voltage
        self._instrumentation_power = config.instrumentation_power
        self._per_bank_power = config.per_bank_overhead_power

        banks = hardware.banks
        B = len(banks)
        self._B = B
        counts: List[int] = []
        units: List[float] = []
        half_units: List[float] = []
        count_units: List[float] = []
        series_eqC: List[float] = []
        parallel_eqC: List[float] = []
        harvest_thresh_s: List[float] = []
        harvest_thresh_p: List[float] = []
        absorb_max_s: List[float] = []
        absorb_max_p: List[float] = []
        leak_prop: List[bool] = []
        leak_rc: List[float] = []
        leak_rv: List[float] = []
        leak_cc: List[float] = []
        for bank in banks:
            count = bank.spec.count
            unit = bank.spec.unit_capacitance
            rated_cell = bank.rated_cell_voltage
            counts.append(count)
            units.append(unit)
            half_units.append(0.5 * unit)
            count_units.append(count * unit)
            series_eqC.append(bank.spec.series_capacitance)
            parallel_eqC.append(bank.spec.parallel_capacitance)
            # _lowest_voltage_element's per-state selection ceilings.
            ceiling = rated_cell * count
            if ceiling > self._vmax:
                ceiling = self._vmax
            harvest_thresh_s.append(ceiling - 1e-9)
            ceiling = rated_cell
            if ceiling > self._vmax:
                ceiling = self._vmax
            harvest_thresh_p.append(ceiling - 1e-9)
            # absorb_energy's per-state clamp energies, with the exact scalar
            # expression shapes (hardware always passes max_output_voltage =
            # config.max_voltage).
            ceiling = rated_cell * count
            clamp_output = self._vmax if self._vmax < ceiling else ceiling
            clamp_cell = clamp_output / count
            absorb_max_s.append(count * (0.5 * unit * clamp_cell * clamp_cell))
            ceiling = rated_cell
            clamp_output = self._vmax if self._vmax < ceiling else ceiling
            clamp_cell = clamp_output
            absorb_max_p.append(count * (0.5 * unit * clamp_cell * clamp_cell))
            leakage = bank.leakage
            if isinstance(leakage, VoltageProportionalLeakage):
                leak_prop.append(True)
                leak_rc.append(leakage.rated_current)
                leak_rv.append(leakage.rated_voltage)
                leak_cc.append(0.0)
            else:  # ConstantCurrentLeakage (enforced by batch_key)
                leak_prop.append(False)
                leak_rc.append(0.0)
                leak_rv.append(1.0)
                leak_cc.append(leakage.leakage_current)
        self._counts = counts
        self._count_units = count_units
        self._series_eqC = np.array(series_eqC)
        self._parallel_eqC = np.array(parallel_eqC)
        self._counts_row = np.array(counts, dtype=np.int64)
        self._counts_f = np.array(counts, dtype=float)
        # (B,) parameter rows for the bank-matrix expressions; broadcasting
        # a row against a ``(lanes, B)`` state matrix performs the exact
        # per-element float arithmetic the scalar per-bank code does, in
        # one numpy dispatch instead of B.
        self._units_row = np.array(units)
        self._half_units_row = np.array(half_units)
        self._harvest_thresh_s_row = np.array(harvest_thresh_s)
        self._harvest_thresh_p_row = np.array(harvest_thresh_p)
        self._absorb_max_s = absorb_max_s
        self._absorb_max_p = absorb_max_p
        self._leak_prop_row = np.array(leak_prop, dtype=bool)
        self._leak_rc_row = np.array(leak_rc)
        self._leak_rv_row = np.array(leak_rv)
        self._leak_cc_row = np.array(leak_cc)

        # -- per-lane state (warm start from the live objects) -----------------
        self._ll_charge = np.array([b.hardware.last_level._charge for b in buffers])
        self._cell_v = np.array(
            [[bank.cell_voltage for bank in b.hardware.banks] for b in buffers]
        ).reshape(n, B)
        self._state = np.array(
            [[_STATE_CODE[bank.state] for bank in b.hardware.banks] for b in buffers],
            dtype=np.int8,
        ).reshape(n, B)
        # Connected-bank count per lane, maintained incrementally at the
        # (rare) state transitions so the per-step hot paths can gate all
        # bank-matrix work on a single ``any()`` instead of re-deriving
        # connectivity from ``_state`` every call.
        self._n_connected = (self._state != 0).sum(axis=1)
        self._next_poll = np.array([b.controller._next_poll_time for b in buffers])
        self._last_expansion = np.array(
            [b.controller._last_expansion_time for b in buffers]
        )
        self._last_signal = np.array(
            [_SIGNAL_CODE[b.hardware.monitor.last_signal] for b in buffers],
            dtype=np.int8,
        )
        self._software = np.array([b._software_overhead_current for b in buffers])
        # Controller action counters, accumulated as deltas.
        self._poll_delta = np.zeros(n, dtype=np.int64)
        self._up_delta = np.zeros(n, dtype=np.int64)
        self._down_delta = np.zeros(n, dtype=np.int64)
        self._reconfig_delta = np.zeros((n, B), dtype=np.int64)
        # Hardware loss counters (absolute) + the adapter's baselines.
        self._hw_clipped = np.array([b.hardware.energy_clipped for b in buffers])
        self._hw_leaked = np.array([b.hardware.energy_leaked for b in buffers])
        self._hw_transfer = np.array([b.hardware.transfer_loss for b in buffers])
        self._clip_base = np.array([b._clip_baseline for b in buffers])
        self._leak_base = np.array([b._leak_baseline for b in buffers])
        self._transfer_base = np.array([b._transfer_baseline for b in buffers])
        # Last-level capacitor's own EnergyLedger (absolute) and per-bank
        # cumulative leakage (absolute).
        self._cap_absorbed = np.array(
            [b.hardware.last_level.ledger.absorbed for b in buffers]
        )
        self._cap_delivered = np.array(
            [b.hardware.last_level.ledger.delivered for b in buffers]
        )
        self._cap_clipped = np.array(
            [b.hardware.last_level.ledger.clipped for b in buffers]
        )
        self._cap_leaked = np.array(
            [b.hardware.last_level.ledger.leaked for b in buffers]
        )
        self._bank_leaked = np.array(
            [[bank.energy_leaked for bank in b.hardware.banks] for b in buffers]
        ).reshape(n, B)
        # BufferLedger accumulators (deltas folded into the adapter's ledger
        # at finalize; fresh-system start state is 0.0, so a delta fold is
        # the exact sequential-add replay).
        self.offered = np.zeros(n)
        self.stored = np.zeros(n)
        self.clipped = np.zeros(n)
        self.delivered = np.zeros(n)
        self.leaked = np.zeros(n)
        self.switching = np.zeros(n)
        # Power-gate phase mask, pushed by the batch engine before every
        # housekeeping call; the scalar controller is software and only
        # polls while the platform is on.  ``_phase_on`` pins the phase
        # during segment replay (the engine is not in the loop there).
        self._system_on = np.zeros(n, dtype=bool)
        self._phase_on: Optional[bool] = None
        self._rows = np.arange(n)

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(cls, buffers: Sequence[EnergyBuffer]) -> Optional["ReactBatchKernel"]:
        """A kernel spanning ``buffers``, or None if any lane doesn't fit."""
        if not all(isinstance(b, ReactBuffer) and b.can_batch() for b in buffers):
            return None
        if len({b.batch_key() for b in buffers}) != 1:
            return None
        return cls(buffers)

    def __len__(self) -> int:
        return len(self.buffers)

    # -- telemetry ---------------------------------------------------------------

    @property
    def voltage(self) -> np.ndarray:
        """Per-lane output voltage (the last-level buffer's terminal)."""
        return self._ll_charge / self._C_ll

    def post_harvest_voltage_bound(self, energy: np.ndarray) -> np.ndarray:
        """Vector mirror of :meth:`ReactBuffer.post_harvest_voltage_bound`."""
        voltage = self._ll_charge / self._C_ll
        positive = energy > 0.0
        masked = np.where(positive, energy, 0.0)
        return np.where(
            positive,
            np.sqrt(voltage * voltage + 2.0 * masked / self._C_ll),
            voltage,
        )

    def drained_mask(self, enable_voltage: np.ndarray) -> np.ndarray:
        """Lanes that can no longer restart (mirror of ``can_reach_voltage``).

        The output only rises (without input) via bank replenishment, and a
        bank can only lift the last-level buffer toward its own output
        voltage, so a lane is drained once its output *and* every connected
        bank output sit at or below the enable voltage.
        """
        out = self._ll_charge / self._C_ll
        if self._B == 0 or not np.count_nonzero(self._n_connected):
            best = np.full(len(self.buffers), float("-inf"))
        else:
            bank_out = np.where(
                self._state == 1,
                self._cell_v * self._counts_row,
                np.where(self._state == 2, self._cell_v, float("-inf")),
            )
            best = bank_out.max(axis=1)
        return (out < enable_voltage) & ~(best > enable_voltage)

    def overhead_current(self, system_on) -> np.ndarray:
        """Vector mirror of :meth:`ReactBuffer.overhead_current`.

        ``system_on`` may be a scalar bool (segment replay pins one phase)
        or the engine's per-lane enabled mask.
        """
        voltage = np.maximum(self._ll_charge / self._C_ll, self._brownout)
        hardware_power = self._instrumentation_power + (
            self._n_connected * self._per_bank_power
        )
        hardware_current = hardware_power / voltage
        return np.where(
            system_on, hardware_current + self._software, hardware_current
        )

    # -- engine hooks ------------------------------------------------------------

    def set_system_on(self, enabled: np.ndarray) -> None:
        """Record the power-gate mask for the next ``housekeeping`` call."""
        self._system_on = enabled

    def harvest(self, energy: np.ndarray) -> None:
        """Vector mirror of ``ReactBuffer.harvest`` + ``ReactHardware.harvest``.

        The scalar harvest loop repeatedly drops ``remaining`` on the
        lowest-voltage eligible element (last-level buffer first on ties,
        then banks in order) until nothing is eligible or nothing sticks;
        with ``1 + B`` elements it runs at most ``1 + B`` rounds.  Each
        round vectorizes as an argmin over a ±inf-masked candidate-voltage
        matrix with per-element-group masked commits.
        """
        self.offered += energy
        n = len(self.buffers)
        B = self._B
        C = self._C_ll
        remaining = energy
        stored_total = np.zeros(n)
        active = remaining > 0.0
        rows = self._rows
        inf = np.inf
        cand = np.empty((n, 1 + B))
        # Only connected banks are eligible, harvest never reconfigures,
        # and lanes spend long stretches with every bank disconnected —
        # gate all bank-matrix work on the maintained connectivity count.
        banks_live = B > 0 and bool(np.count_nonzero(self._n_connected))
        if B and not banks_live:
            cand[:, 1:] = inf
        for _ in range(1 + B):
            if not np.count_nonzero(active):
                break
            # -- _lowest_voltage_element as a first-occurrence argmin --
            ll_v = self._ll_charge / C
            cand[:, 0] = np.where(ll_v < self._harvest_thresh_ll, ll_v, inf)
            if banks_live:
                state = self._state
                cell = self._cell_v
                series = state == 1
                out = np.where(series, cell * self._counts_row, cell)
                thresh = np.where(
                    series,
                    self._harvest_thresh_s_row,
                    self._harvest_thresh_p_row,
                )
                cand[:, 1:] = np.where((state != 0) & (out < thresh), out, inf)
            chosen = cand.argmin(axis=1)
            active = active & (cand[rows, chosen] < inf)
            if not np.count_nonzero(active):
                break
            stored_step = np.zeros(n)
            rem_m = np.where(active, remaining, 0.0)
            # -- last-level branch: Capacitor.charge_with_energy --
            mask = active & (chosen == 0)
            if np.count_nonzero(mask):
                q = self._ll_charge
                v = q / C
                present = 0.5 * C * v * v
                new_energy = present + rem_m
                new_energy = np.where(
                    new_energy > self._ll_max_energy, self._ll_max_energy, new_energy
                )
                stored_cap = new_energy - present
                clipped_cap = rem_m - stored_cap
                new_q = C * np.sqrt(2.0 * new_energy / C)
                v2 = new_q / C
                after = 0.5 * C * v2 * v2
                # `before` (the adapter reads last_level.energy) is the same
                # expression as `present`, so stored == after - present.
                self._ll_charge = np.where(mask, new_q, q)
                self._cap_absorbed += np.where(mask, stored_cap, 0.0)
                self._cap_clipped += np.where(mask, clipped_cap, 0.0)
                stored_step = np.where(mask, after - present, stored_step)
            # -- bank branches: CapacitorBank.absorb_energy --
            if banks_live:
                # One bincount tells which bank columns were actually chosen,
                # so unselected banks cost nothing.
                counts_sel = np.bincount(
                    np.where(active, chosen, 0), minlength=1 + B
                )
                for j in range(B):
                    if not counts_sel[j + 1]:
                        continue
                    mask = active & (chosen == j + 1)
                    st = self._state[:, j]
                    v = self._cell_v[:, j]
                    max_energy = np.where(
                        st == 1, self._absorb_max_s[j], self._absorb_max_p[j]
                    )
                    stored_now = self._counts[j] * (self._half_units_row[j] * v * v)
                    stored_j = np.minimum(
                        rem_m, np.maximum(0.0, max_energy - stored_now)
                    )
                    ok = mask & (stored_j > 0.0)
                    if np.count_nonzero(ok):
                        new_energy = stored_now + np.where(ok, stored_j, 0.0)
                        new_cell = np.sqrt(2.0 * new_energy / self._count_units[j])
                        self._cell_v[:, j] = np.where(ok, new_cell, v)
                        stored_step = np.where(ok, stored_j, stored_step)
            # -- loop bookkeeping (scalar: break when stored <= 0) --
            add = active & (stored_step > 0.0)
            stored_total = np.where(add, stored_total + stored_step, stored_total)
            remaining = np.where(add, remaining - stored_step, remaining)
            active = add & (remaining > 0.0)
        self._hw_clipped = self._hw_clipped + np.maximum(0.0, remaining)
        # -- adapter ledger sync (ReactBuffer.harvest) --
        self.stored += stored_total
        clipped_now = self._hw_clipped - self._clip_base
        self._clip_base = self._hw_clipped.copy()
        self.clipped += clipped_now

    def draw(self, current: np.ndarray, dt: np.ndarray) -> None:
        """Vector mirror of ``Capacitor.discharge_current`` (v_floor = 0)."""
        C = self._C_ll
        q = self._ll_charge
        v = q / C
        before = 0.5 * C * v * v
        new_q = np.maximum(q - current * dt, 0.0)
        self._ll_charge = new_q
        v2 = new_q / C
        delivered = before - 0.5 * C * v2 * v2
        self._cap_delivered += delivered
        self.delivered += delivered

    def housekeeping(self, time: np.ndarray, dt: np.ndarray) -> None:
        """Replenish → leakage → (on lanes) poll + replenish → ledger sync.

        Mirrors ``ReactBuffer.housekeeping``.  The scalar adapter calls
        replenish unconditionally, but a masked lane (``dt == 0``, clock
        pinned to -inf) must stay bit-unchanged, so every mover here is
        gated on ``dt > 0``; leakage is arithmetically a no-op at
        ``dt == 0`` except for the bank cell-voltage round trip, which
        :meth:`_apply_leakage` masks.
        """
        active = dt > 0.0
        self._replenish(active)
        self._apply_leakage(dt, active)
        if self._phase_on is None:
            on = self._system_on & active
        elif self._phase_on:
            on = active
        else:
            on = None
        if on is not None and np.count_nonzero(on):
            self._poll(time, on)
            self._replenish(on)
        self._sync_ledger()

    # -- segment replay ----------------------------------------------------------

    def fast_forward(self, energy_in, load, dt, times, plan):
        """Off-phase replay with the controller pinned off.

        The generic replay masks frozen lanes by zero ``dt``; REACT's
        housekeeping additionally needs the phase (the engine is not in
        the loop to push ``set_system_on``), and the scalar off-phase
        replay never polls.
        """
        self._phase_on = False
        try:
            return super().fast_forward(energy_in, load, dt, times, plan)
        finally:
            self._phase_on = None

    def fast_forward_on(self, energy_in, load, dt, times, plan, brownout_floor):
        """On-phase replay: every stepping lane polls on its own grid."""
        self._phase_on = True
        try:
            return super().fast_forward_on(
                energy_in, load, dt, times, plan, brownout_floor
            )
        finally:
            self._phase_on = None

    def _replay_load(self, load, stepping, system_on):
        """Add the state-dependent overhead per replayed step.

        The scalar ``fast_forward`` loops draw
        ``load + overhead_current(phase)`` each step; the batch engine
        passes overhead-free loads for ``dynamic_overhead`` kernels, so
        the same re-evaluation happens here.
        """
        return np.where(stepping, load + self.overhead_current(system_on), 0.0)

    # -- internal physics --------------------------------------------------------

    def _replenish(self, mask: np.ndarray) -> None:
        """Vector mirror of ``ReactHardware.replenish`` for lanes in ``mask``.

        Each round moves charge from the highest-output connected bank
        (first-maximum scan → argmax) into the last-level buffer by exact
        capacitor equalization; a lane keeps going until no bank sits more
        than the diode margin above the sink, for at most B rounds.
        """
        B = self._B
        # Mirrors the scalar's `if not connected: return` — and skips the
        # whole matrix scan during the (long) all-disconnected stretches.
        if (
            B == 0
            or not np.count_nonzero(self._n_connected)
            or not np.count_nonzero(mask)
        ):
            return
        minus_inf = float("-inf")
        Ck = self._C_ll
        rows = self._rows
        act = mask
        for _ in range(B):
            if not np.count_nonzero(act):
                break
            state = self._state
            out = np.where(
                state == 1,
                self._cell_v * self._counts_row,
                np.where(state == 2, self._cell_v, minus_inf),
            )
            src = out.argmax(axis=1)
            source_v = out[rows, src]
            sink_v = self._ll_charge / Ck
            go = act & (source_v > sink_v + 1e-9)
            act = go
            if not np.count_nonzero(act):
                break
            # Mask the voltages so dropped lanes never produce inf - inf.
            Vs = np.where(go, source_v, 0.0)
            Vk = sink_v
            st_src = state[rows, src]
            Cs = np.where(
                st_src == 1, self._series_eqC[src], self._parallel_eqC[src]
            )
            total = Cs + Ck
            fv = (Cs * Vs + Ck * Vk) / total
            initial = 0.5 * Cs * Vs * Vs + 0.5 * Ck * Vk * Vk
            dissipated = initial - (0.5 * total * fv * fv)
            dissipated = np.where(dissipated < 0.0, 0.0, dissipated)
            over = go & (fv > self._vmax)
            if np.count_nonzero(over):
                before = 0.5 * Cs * fv * fv + 0.5 * Ck * fv * fv
                clamped = np.where(over, self._vmax, fv)
                after = 0.5 * Cs * clamped * clamped + 0.5 * Ck * clamped * clamped
                self._hw_clipped = self._hw_clipped + np.where(
                    over, np.maximum(0.0, before - after), 0.0
                )
                fv = clamped
            # source.set_output_voltage(fv) on the chosen column only.
            new_cell = np.where(st_src == 1, fv / self._counts_f[src], fv)
            go_rows = np.nonzero(go)[0]
            self._cell_v[go_rows, src[go_rows]] = new_cell[go_rows]
            # last_level.set_voltage(fv): charge-domain commit.
            self._ll_charge = np.where(go, Ck * fv, self._ll_charge)
            self._hw_transfer = self._hw_transfer + np.where(go, dissipated, 0.0)

    def _apply_leakage(self, dt: np.ndarray, active: np.ndarray) -> None:
        """Vector mirror of ``ReactHardware.apply_leakage``.

        Last level first, then every bank in order, with the per-element
        losses added to ``energy_leaked`` sequentially (the scalar sum is
        a Python left fold, never ``np.sum``).
        """
        C = self._C_ll
        q = self._ll_charge
        v = q / C
        current = np.where(
            v > 0.0,
            self._ll_rated_current * (v / self._ll_rated_voltage),
            0.0,
        )
        lost = np.minimum(current * dt, q)
        before = 0.5 * C * v * v
        new_q = q - lost
        self._ll_charge = new_q
        v2 = new_q / C
        leaked = before - 0.5 * C * v2 * v2
        self._cap_leaked += leaked
        total = leaked
        # An empty bank early-returns 0.0 in the scalar (no arithmetic, no
        # counter writes), and a `+ 0.0` fold over a nonnegative total is
        # bit-exact to skipping it, so the whole bank matrix is gated on
        # any cell holding charge.  The bank expressions run as one
        # ``(lanes, B)`` broadcast against the (B,) parameter rows —
        # per-element float arithmetic identical to the scalar per-bank
        # loop, in a handful of dispatches instead of ~16 per bank.
        if self._B and np.count_nonzero(self._cell_v > 0.0):
            V = self._cell_v
            charged = V > 0.0
            current = np.where(
                charged,
                np.where(
                    self._leak_prop_row,
                    self._leak_rc_row * (V / self._leak_rv_row),
                    self._leak_cc_row,
                ),
                0.0,
            )
            before = self._counts_row * (self._half_units_row * V * V)
            new_cell_charge = self._units_row * V - current * dt[:, None]
            new_cell_charge = np.where(new_cell_charge < 0.0, 0.0, new_cell_charge)
            new_v = new_cell_charge / self._units_row
            after = self._counts_row * (self._half_units_row * new_v * new_v)
            # The charge round trip shifts ulps at dt == 0 (scalar never
            # runs it), so commit only real steps on charged cells.
            apply = active[:, None] & charged
            leaked_mat = np.where(apply, before - after, 0.0)
            self._cell_v = np.where(apply, new_v, V)
            self._bank_leaked = self._bank_leaked + leaked_mat
            # energy_leaked is a Python left fold in the scalar: add the
            # bank columns one at a time, in bank order.
            for j in range(self._B):
                total = total + leaked_mat[:, j]
        self._hw_leaked = self._hw_leaked + total

    def _signal_code(self, voltage: np.ndarray) -> np.ndarray:
        """Vector mirror of ``VoltageMonitor.sample`` (without the latch)."""
        return np.where(
            voltage >= self._high,
            np.int8(_SIGNAL_CODE[BufferSignal.NEAR_FULL]),
            np.where(
                voltage <= self._low,
                np.int8(_SIGNAL_CODE[BufferSignal.NEAR_EMPTY]),
                np.int8(_SIGNAL_CODE[BufferSignal.OK]),
            ),
        ).astype(np.int8)

    def _poll(self, time: np.ndarray, on: np.ndarray) -> None:
        """Vector mirror of ``ReactController.poll`` for powered lanes.

        Expansion picks the first bank (connection order) that can step up;
        reclamation repeatedly steps the *last* steppable bank down,
        replenishes, and resamples, for at most ``2 * B`` rounds per poll
        — both as masked lane-group column updates.
        """
        due = on & (time >= self._next_poll)
        if not np.count_nonzero(due):
            return
        self._next_poll = np.where(due, time + self._poll_period, self._next_poll)
        self._poll_delta += due
        signal = self._signal_code(self._ll_charge / self._C_ll)
        self._last_signal = np.where(due, signal, self._last_signal)
        B = self._B
        full_code = np.int8(_SIGNAL_CODE[BufferSignal.NEAR_FULL])
        empty_code = np.int8(_SIGNAL_CODE[BufferSignal.NEAR_EMPTY])
        # -- NEAR_FULL: rate-limited single expansion step --
        full = due & (signal == full_code)
        if B and np.count_nonzero(full):
            safe_time = np.where(due, time, 0.0)
            can = full & (
                safe_time - self._last_expansion >= self._expansion_min_interval
            )
            if np.count_nonzero(can):
                up_ok = self._state != 2
                doing = can & up_ok.any(axis=1)
                if np.count_nonzero(doing):
                    col = up_ok.argmax(axis=1)
                    rows = np.nonzero(doing)[0]
                    cols = col[rows]
                    was_disconnected = self._state[rows, cols] == 0
                    self._state[rows, cols] += 1
                    self._n_connected[rows] += was_disconnected
                    self._reconfig_delta[rows, cols] += 1
                    self._up_delta += doing
                    self._last_expansion = np.where(
                        doing, time, self._last_expansion
                    )
        # -- NEAR_EMPTY: unlimited reclamation loop --
        empty = due & (signal == empty_code)
        if B and np.count_nonzero(empty):
            stepping = empty
            steps = np.zeros(len(self.buffers), dtype=np.int64)
            cap = 2 * B
            for _ in range(cap):
                down_ok = self._state != 0
                stepping = stepping & down_ok.any(axis=1)
                if not np.count_nonzero(stepping):
                    break
                col = (B - 1) - down_ok[:, ::-1].argmax(axis=1)
                rows = np.nonzero(stepping)[0]
                cols = col[rows]
                self._state[rows, cols] -= 1
                self._n_connected[rows] -= self._state[rows, cols] == 0
                self._reconfig_delta[rows, cols] += 1
                self._down_delta += stepping
                steps = steps + stepping
                self._replenish(stepping)
                signal = self._signal_code(self._ll_charge / self._C_ll)
                self._last_signal = np.where(stepping, signal, self._last_signal)
                stepping = stepping & (signal == empty_code) & (steps < cap)

    def _sync_ledger(self) -> None:
        """Vector mirror of ``ReactBuffer._sync_ledger`` (same field order)."""
        leaked_now = self._hw_leaked - self._leak_base
        self._leak_base = self._hw_leaked.copy()
        self.leaked += leaked_now
        transfer_now = self._hw_transfer - self._transfer_base
        self._transfer_base = self._hw_transfer.copy()
        self.switching += transfer_now
        clipped_now = self._hw_clipped - self._clip_base
        self._clip_base = self._hw_clipped.copy()
        self.clipped += clipped_now

    # -- lane lifecycle ----------------------------------------------------------

    def compact(self, keep: np.ndarray) -> None:
        """Drop retired lanes from the shared arrays."""
        self.buffers = [b for b, k in zip(self.buffers, keep) if k]
        for name in (
            "_ll_charge", "_cell_v", "_state", "_n_connected", "_next_poll",
            "_last_expansion",
            "_last_signal", "_software", "_poll_delta", "_up_delta",
            "_down_delta", "_reconfig_delta", "_hw_clipped", "_hw_leaked",
            "_hw_transfer", "_clip_base", "_leak_base", "_transfer_base",
            "_cap_absorbed", "_cap_delivered", "_cap_clipped", "_cap_leaked",
            "_bank_leaked", "offered", "stored", "clipped", "delivered",
            "leaked", "switching", "_system_on",
        ):
            setattr(self, name, getattr(self, name)[keep])
        self._rows = np.arange(len(self.buffers))

    def sync_lane(self, index: int) -> None:
        """Refresh lane ``index``'s objects so Python code can read them.

        Workload step contexts read output voltage, usable energy,
        capacitance (level) and stored energy — all functions of the
        last-level charge and the bank states/voltages.
        """
        buffer = self.buffers[index]
        hardware = buffer.hardware
        hardware.last_level._charge = float(self._ll_charge[index])
        states = self._state[index]
        for j, bank in enumerate(hardware.banks):
            bank.cell_voltage = float(self._cell_v[index, j])
            bank.state = _CODE_STATE[int(states[j])]
        hardware._invalidate_topology()

    def sync_lanes(self, indices: Sequence[int]) -> None:
        """Refresh every buffer object in ``indices`` in one pass."""
        for index in indices:
            self.sync_lane(index)

    def finalize_lane(self, index: int) -> ReactBuffer:
        """Write lane ``index``'s array state back into its component objects.

        After this the lane's system is indistinguishable from a
        scalar-simulated one: charge/state/counters land exactly, the
        switch poles replay one actuation per bank transition (every
        transition moves the ganged DPDT between distinct positions, so
        both poles actuate every time, with their per-actuation energy
        added sequentially), and the adapter's ledger deltas fold in with
        one add per field (exact because a fresh system's ledger starts
        at 0.0).
        """
        buffer = self.buffers[index]
        hardware = buffer.hardware
        last_level = hardware.last_level
        last_level._charge = float(self._ll_charge[index])
        cap_ledger = last_level.ledger
        cap_ledger.absorbed = float(self._cap_absorbed[index])
        cap_ledger.delivered = float(self._cap_delivered[index])
        cap_ledger.clipped = float(self._cap_clipped[index])
        cap_ledger.leaked = float(self._cap_leaked[index])
        for j, bank in enumerate(hardware.banks):
            bank.cell_voltage = float(self._cell_v[index, j])
            bank.energy_leaked = float(self._bank_leaked[index, j])
            new_state = _CODE_STATE[int(self._state[index, j])]
            transitions = int(self._reconfig_delta[index, j])
            bank.state = new_state
            if transitions:
                bank.reconfiguration_count += transitions
                target = _SWITCH_FOR_STATE[new_state]
                switch = bank.switch
                for pole in (switch.pole_a, switch.pole_b):
                    pole.state = target
                    pole.actuation_count += transitions
                    spent = pole.energy_spent
                    for _ in range(transitions):
                        spent += pole.actuation_energy
                    pole.energy_spent = spent
        hardware._invalidate_topology()
        hardware.energy_clipped = float(self._hw_clipped[index])
        hardware.energy_leaked = float(self._hw_leaked[index])
        hardware.transfer_loss = float(self._hw_transfer[index])
        hardware.monitor.last_signal = _CODE_SIGNAL[int(self._last_signal[index])]
        controller = buffer.controller
        controller._next_poll_time = float(self._next_poll[index])
        controller._last_expansion_time = float(self._last_expansion[index])
        controller.poll_count += int(self._poll_delta[index])
        controller.step_up_count += int(self._up_delta[index])
        controller.step_down_count += int(self._down_delta[index])
        buffer._clip_baseline = float(self._clip_base[index])
        buffer._leak_baseline = float(self._leak_base[index])
        buffer._transfer_baseline = float(self._transfer_base[index])
        ledger = buffer.ledger
        ledger.offered += float(self.offered[index])
        ledger.stored += float(self.stored[index])
        ledger.clipped += float(self.clipped[index])
        ledger.delivered += float(self.delivered[index])
        ledger.leaked += float(self.leaked[index])
        ledger.switching_loss += float(self.switching[index])
        return buffer
