"""Fixed-size (static) buffer capacitor — the conventional baseline.

A static buffer is a single capacitor sized at design time.  Its behaviour
embodies the reactivity/longevity/efficiency tradeoff the paper analyzes in
§2: a small capacitor charges quickly but clips harvested energy whenever
input power exceeds demand; a large one captures surplus energy but enables
late and loses more cold-start energy to leakage.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.buffers.base import EnergyBuffer
from repro.capacitors.capacitor import Capacitor
from repro.capacitors.leakage import LeakageModel, VoltageProportionalLeakage
from repro.exceptions import ConfigurationError
from repro.units import capacitor_energy

#: Default leakage density: amperes of leakage per farad at the rated voltage.
#: Chosen to match "typical" (not worst-case datasheet) figures for the
#: ceramic / electrolytic parts the paper's prototypes use.
DEFAULT_LEAKAGE_PER_FARAD = 3e-3


class StaticBuffer(EnergyBuffer):
    """A single fixed buffer capacitor behind the harvester.

    Parameters
    ----------
    capacitance:
        Buffer size in farads (the paper evaluates 770 µF, 10 mF, 17 mF).
    max_voltage:
        Overvoltage-protection clamp; harvested energy beyond this point is
        burned off as heat (3.6 V in the testbed).
    brownout_voltage:
        Voltage below which stored energy cannot power the platform; used
        for the ``usable_energy`` surrogate.
    leakage:
        Optional explicit leakage model; by default leakage scales with the
        capacitance (bigger banks leak more).
    """

    supports_longevity = False

    def __init__(
        self,
        capacitance: float,
        max_voltage: float = 3.6,
        brownout_voltage: float = 1.8,
        leakage: LeakageModel | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__()
        if capacitance <= 0.0:
            raise ConfigurationError(f"capacitance must be positive, got {capacitance}")
        if max_voltage <= brownout_voltage:
            raise ConfigurationError(
                "max voltage must exceed the brown-out voltage "
                f"({max_voltage} <= {brownout_voltage})"
            )
        if leakage is None:
            leakage = VoltageProportionalLeakage(
                rated_current=DEFAULT_LEAKAGE_PER_FARAD * capacitance,
                rated_voltage=6.3,
            )
        self.brownout_voltage = brownout_voltage
        self._capacitor = Capacitor(
            capacitance=capacitance,
            rated_voltage=max_voltage,
            leakage=leakage,
            name=name or "static",
        )
        self.name = name or f"{capacitance * 1e6:.0f} uF"

    # -- telemetry -----------------------------------------------------------------

    @property
    def output_voltage(self) -> float:
        return self._capacitor.voltage

    @property
    def stored_energy(self) -> float:
        return self._capacitor.energy

    @property
    def capacitance(self) -> float:
        return self._capacitor.capacitance

    @property
    def max_capacitance(self) -> float:
        return self._capacitor.capacitance

    @property
    def max_voltage(self) -> float:
        """Overvoltage clamp of the buffer."""
        return self._capacitor.rated_voltage

    def usable_energy(self) -> float:
        floor = capacitor_energy(self._capacitor.capacitance, self.brownout_voltage)
        return max(0.0, self._capacitor.energy - floor)

    # -- energy flow -------------------------------------------------------------------

    def harvest(self, energy: float, dt: float) -> float:
        self.ledger.offered += energy
        stored = self._capacitor.charge_with_energy(energy)
        self.ledger.stored += stored
        self.ledger.clipped += energy - stored
        return stored

    def draw(self, current: float, dt: float) -> float:
        delivered = self._capacitor.discharge_current(current, dt)
        self.ledger.delivered += delivered
        return delivered

    def housekeeping(self, time: float, dt: float, system_on: bool) -> None:
        self.ledger.leaked += self._capacitor.apply_leakage(dt)

    # -- off-phase fast forwarding ---------------------------------------------------

    def post_harvest_voltage_bound(self, energy: float) -> float:
        """Exact post-harvest voltage: all harvested energy lands on the cap."""
        if energy <= 0.0:
            return self._capacitor.voltage
        capacitance = self._capacitor.capacitance
        new_energy = min(self._capacitor.energy + energy, self._capacitor.max_energy)
        return (2.0 * new_energy / capacitance) ** 0.5

    def fast_forward(
        self,
        delivered_power: float,
        quiescent_current: float,
        dt: float,
        start_time: float,
        max_steps: int,
        stop_above: Optional[float] = None,
        stop_below: Optional[float] = None,
        drain_floor: Optional[float] = None,
    ) -> Tuple[int, float]:
        """Exact inlined off-phase replay for a single buffer capacitor.

        Performs the same harvest → draw → leak update per step as the
        step-by-step path (identical expressions, identical operation
        order, so the trajectory is bit-equal), but on local floats with
        the ledger totals accumulated once at the end.  A single static
        capacitor has no controllers to poll, so the whole off interval
        reduces to this three-operation recurrence.
        """
        cap = self._capacitor
        capacitance = cap.capacitance
        max_energy = cap.max_energy
        leakage_charge_lost = cap.leakage.charge_lost
        overhead = self.overhead_current(False)
        load_current = quiescent_current + overhead
        energy_in = delivered_power * dt
        charge = cap._charge
        time = start_time
        steps = 0
        offered = stored_total = clipped_total = 0.0
        delivered_total = leaked_total = 0.0
        while steps < max_steps:
            voltage = charge / capacitance
            energy = 0.5 * capacitance * voltage * voltage
            # Harvest (energy-domain charging, clipped at the rated voltage).
            new_energy = energy
            if energy_in > 0.0:
                new_energy = min(energy + energy_in, max_energy)
                post_charge = capacitance * (2.0 * new_energy / capacitance) ** 0.5
                if stop_above is not None and post_charge / capacitance >= stop_above:
                    break  # the gate would engage on this step: leave it to the engine
                charge = post_charge
                stored_total += new_energy - energy
                clipped_total += energy_in - (new_energy - energy)
                offered += energy_in
            elif stop_above is not None and voltage >= stop_above:
                break
            else:
                offered += energy_in
            # Load draw (charge domain, floored at zero).
            before_energy = new_energy
            charge = max(charge - load_current * dt, 0.0)
            voltage = charge / capacitance
            after_energy = 0.5 * capacitance * voltage * voltage
            delivered_total += before_energy - after_energy
            # Leakage (through the model's charge_lost hook, so custom
            # LeakageModel subclasses stay equivalent to the stepped path).
            lost_charge = leakage_charge_lost(voltage, dt)
            if lost_charge > charge:
                lost_charge = charge
            charge -= lost_charge
            voltage = charge / capacitance
            leaked_total += after_energy - 0.5 * capacitance * voltage * voltage
            time += dt
            steps += 1
            if stop_below is not None and voltage < stop_below:
                break
            if drain_floor is not None and voltage < drain_floor:
                break  # all stored energy sits on the output cap: cannot restart
        cap._charge = charge
        cap.ledger.absorbed += stored_total
        cap.ledger.clipped += clipped_total
        cap.ledger.delivered += delivered_total
        cap.ledger.leaked += leaked_total
        self.ledger.offered += offered
        self.ledger.stored += stored_total
        self.ledger.clipped += clipped_total
        self.ledger.delivered += delivered_total
        self.ledger.leaked += leaked_total
        return steps, time

    # -- lifecycle ----------------------------------------------------------------------

    def reset(self) -> None:
        self._capacitor.reset()
        self._reset_base()
