"""Fixed-size (static) buffer capacitor — the conventional baseline.

A static buffer is a single capacitor sized at design time.  Its behaviour
embodies the reactivity/longevity/efficiency tradeoff the paper analyzes in
§2: a small capacitor charges quickly but clips harvested energy whenever
input power exceeds demand; a large one captures surplus energy but enables
late and loses more cold-start energy to leakage.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.buffers.base import EnergyBuffer, LockstepKernel
from repro.capacitors.array import CapacitorArray
from repro.capacitors.capacitor import Capacitor
from repro.capacitors.leakage import (
    LeakageModel,
    VoltageProportionalLeakage,
    stack_proportional_leakage,
)
from repro.exceptions import ConfigurationError
from repro.units import capacitor_energy

#: Default leakage density: amperes of leakage per farad at the rated voltage.
#: Chosen to match "typical" (not worst-case datasheet) figures for the
#: ceramic / electrolytic parts the paper's prototypes use.
DEFAULT_LEAKAGE_PER_FARAD = 3e-3


class StaticBuffer(EnergyBuffer):
    """A single fixed buffer capacitor behind the harvester.

    Parameters
    ----------
    capacitance:
        Buffer size in farads (the paper evaluates 770 µF, 10 mF, 17 mF).
    max_voltage:
        Overvoltage-protection clamp; harvested energy beyond this point is
        burned off as heat (3.6 V in the testbed).
    brownout_voltage:
        Voltage below which stored energy cannot power the platform; used
        for the ``usable_energy`` surrogate.
    leakage:
        Optional explicit leakage model; by default leakage scales with the
        capacitance (bigger banks leak more).
    """

    supports_longevity = False

    #: Whether this class's energy-flow hooks are exactly the single-capacitor
    #: recurrence :class:`StaticBatchKernel` vectorizes.  Subclasses that
    #: override ``harvest`` / ``draw`` / ``housekeeping`` /
    #: ``overhead_current`` with different dynamics must set this False so
    #: their lanes fall back to the scalar engine (DewdropBuffer keeps it:
    #: its adaptation lives entirely in the longevity API, which the batch
    #: engine services through the synced scalar object).
    batch_exact = True

    def __init__(
        self,
        capacitance: float,
        max_voltage: float = 3.6,
        brownout_voltage: float = 1.8,
        leakage: LeakageModel | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__()
        if capacitance <= 0.0:
            raise ConfigurationError(f"capacitance must be positive, got {capacitance}")
        if max_voltage <= brownout_voltage:
            raise ConfigurationError(
                "max voltage must exceed the brown-out voltage "
                f"({max_voltage} <= {brownout_voltage})"
            )
        if leakage is None:
            leakage = VoltageProportionalLeakage(
                rated_current=DEFAULT_LEAKAGE_PER_FARAD * capacitance,
                rated_voltage=6.3,
            )
        self.brownout_voltage = brownout_voltage
        self._capacitor = Capacitor(
            capacitance=capacitance,
            rated_voltage=max_voltage,
            leakage=leakage,
            name=name or "static",
        )
        self.name = name or f"{capacitance * 1e6:.0f} uF"

    # -- telemetry -----------------------------------------------------------------

    @property
    def output_voltage(self) -> float:
        return self._capacitor.voltage

    @property
    def stored_energy(self) -> float:
        return self._capacitor.energy

    @property
    def capacitance(self) -> float:
        return self._capacitor.capacitance

    @property
    def max_capacitance(self) -> float:
        return self._capacitor.capacitance

    @property
    def max_voltage(self) -> float:
        """Overvoltage clamp of the buffer."""
        return self._capacitor.rated_voltage

    def usable_energy(self) -> float:
        floor = capacitor_energy(self._capacitor.capacitance, self.brownout_voltage)
        return max(0.0, self._capacitor.energy - floor)

    # -- energy flow -------------------------------------------------------------------

    def harvest(self, energy: float, dt: float) -> float:
        self.ledger.offered += energy
        stored = self._capacitor.charge_with_energy(energy)
        self.ledger.stored += stored
        self.ledger.clipped += energy - stored
        return stored

    def draw(self, current: float, dt: float) -> float:
        delivered = self._capacitor.discharge_current(current, dt)
        self.ledger.delivered += delivered
        return delivered

    def housekeeping(self, time: float, dt: float, system_on: bool) -> None:
        self.ledger.leaked += self._capacitor.apply_leakage(dt)

    # -- multi-system batching -------------------------------------------------------

    def batch_key(self) -> Optional[str]:
        """``"static"`` when this buffer's dynamics vectorize exactly.

        Requires the class to vouch for its hooks (:attr:`batch_exact`) and
        the leakage model to be one the capacitor layer can stack into
        closed-form arrays.  All static lanes share one key — the
        :class:`StaticBatchKernel` handles heterogeneous capacitances and
        leakage parameters per lane.
        """
        if (
            self.batch_exact
            and stack_proportional_leakage([self._capacitor.leakage]) is not None
        ):
            return "static"
        return None

    # -- off-phase fast forwarding ---------------------------------------------------

    def post_harvest_voltage_bound(self, energy: float) -> float:
        """Exact post-harvest voltage: all harvested energy lands on the cap."""
        if energy <= 0.0:
            return self._capacitor.voltage
        capacitance = self._capacitor.capacitance
        new_energy = min(self._capacitor.energy + energy, self._capacitor.max_energy)
        return math.sqrt(2.0 * new_energy / capacitance)

    def fast_forward(
        self,
        delivered_power: float,
        quiescent_current: float,
        dt: float,
        start_time: float,
        max_steps: int,
        stop_above: Optional[float] = None,
        stop_below: Optional[float] = None,
        drain_floor: Optional[float] = None,
    ) -> Tuple[int, float]:
        """Exact inlined off-phase replay for a single buffer capacitor.

        Performs the same harvest → draw → leak update per step as the
        step-by-step path (identical expressions, identical operation
        order, so the trajectory is bit-equal), but on local floats with
        the ledger totals accumulated once at the end.  A single static
        capacitor has no controllers to poll, so the whole off interval
        reduces to this three-operation recurrence.
        """
        cap = self._capacitor
        capacitance = cap.capacitance
        max_energy = cap.max_energy
        leakage_charge_lost = cap.leakage.charge_lost
        overhead = self.overhead_current(False)
        load_current = quiescent_current + overhead
        energy_in = delivered_power * dt
        charge = cap._charge
        time = start_time
        steps = 0
        offered = stored_total = clipped_total = 0.0
        delivered_total = leaked_total = 0.0
        while steps < max_steps:
            voltage = charge / capacitance
            energy = 0.5 * capacitance * voltage * voltage
            # Harvest (energy-domain charging, clipped at the rated voltage).
            new_energy = energy
            if energy_in > 0.0:
                new_energy = min(energy + energy_in, max_energy)
                post_charge = capacitance * math.sqrt(2.0 * new_energy / capacitance)
                if stop_above is not None and post_charge / capacitance >= stop_above:
                    break  # the gate would engage on this step: leave it to the engine
                charge = post_charge
                stored_total += new_energy - energy
                clipped_total += energy_in - (new_energy - energy)
                offered += energy_in
            elif stop_above is not None and voltage >= stop_above:
                break
            else:
                offered += energy_in
            # Load draw (charge domain, floored at zero).
            before_energy = new_energy
            charge = max(charge - load_current * dt, 0.0)
            voltage = charge / capacitance
            after_energy = 0.5 * capacitance * voltage * voltage
            delivered_total += before_energy - after_energy
            # Leakage (through the model's charge_lost hook, so custom
            # LeakageModel subclasses stay equivalent to the stepped path).
            lost_charge = leakage_charge_lost(voltage, dt)
            if lost_charge > charge:
                lost_charge = charge
            charge -= lost_charge
            voltage = charge / capacitance
            leaked_total += after_energy - 0.5 * capacitance * voltage * voltage
            time += dt
            steps += 1
            if stop_below is not None and voltage < stop_below:
                break
            if drain_floor is not None and voltage < drain_floor:
                break  # all stored energy sits on the output cap: cannot restart
        cap._charge = charge
        cap.ledger.absorbed += stored_total
        cap.ledger.clipped += clipped_total
        cap.ledger.delivered += delivered_total
        cap.ledger.leaked += leaked_total
        self.ledger.offered += offered
        self.ledger.stored += stored_total
        self.ledger.clipped += clipped_total
        self.ledger.delivered += delivered_total
        self.ledger.leaked += leaked_total
        return steps, time

    def fast_forward_on(
        self,
        delivered_power: float,
        load_current: float,
        dt: float,
        start_time: float,
        max_steps: int,
        stop_above: Optional[float] = None,
        stop_below: Optional[float] = None,
        brownout_floor: Optional[float] = None,
        wake_energy: Optional[float] = None,
    ) -> Tuple[int, float]:
        """Exact inlined on-phase replay for a single buffer capacitor.

        Same structure as :meth:`fast_forward` — the identical per-step
        harvest → draw → leak expressions in the identical order, on local
        floats, ledger totals accumulated once — but with the on-phase
        load (the workload's constant demand plus the gate's quiescent
        current plus this buffer's on-overhead) and the on-phase stop set:
        a wake voltage / efficiency breakpoint above, the brown-out floor
        below (checked at step start with the gate's ``<=`` convention —
        see :meth:`EnergyBuffer.fast_forward_on`), and the conservative
        usable-energy guard for a pending longevity request (for a single
        capacitor the usable energy is the stored energy above the
        brown-out floor).
        """
        cap = self._capacitor
        capacitance = cap.capacitance
        max_energy = cap.max_energy
        leakage_charge_lost = cap.leakage.charge_lost
        total_load = load_current + self.overhead_current(True)
        energy_in = delivered_power * dt
        floor_energy = capacitor_energy(capacitance, self.brownout_voltage)
        charge = cap._charge
        time = start_time
        steps = 0
        offered = stored_total = clipped_total = 0.0
        delivered_total = leaked_total = 0.0
        while steps < max_steps:
            voltage = charge / capacitance
            if brownout_floor is not None and voltage <= brownout_floor:
                break  # the gate may disconnect this step: engine decides
            energy = 0.5 * capacitance * voltage * voltage
            if wake_energy is not None:
                usable = energy - floor_energy
                if usable < 0.0:
                    usable = 0.0
                if usable + 2.0 * energy_in >= wake_energy:
                    break
            # Harvest (energy-domain charging, clipped at the rated voltage).
            new_energy = energy
            if energy_in > 0.0:
                new_energy = min(energy + energy_in, max_energy)
                post_charge = capacitance * math.sqrt(2.0 * new_energy / capacitance)
                if stop_above is not None and post_charge / capacitance >= stop_above:
                    break  # a wake/breakpoint crossing: leave it to the engine
                charge = post_charge
                stored_total += new_energy - energy
                clipped_total += energy_in - (new_energy - energy)
                offered += energy_in
            elif stop_above is not None and voltage >= stop_above:
                break
            else:
                offered += energy_in
            # Load draw (charge domain, floored at zero).
            before_energy = new_energy
            charge = max(charge - total_load * dt, 0.0)
            voltage = charge / capacitance
            after_energy = 0.5 * capacitance * voltage * voltage
            delivered_total += before_energy - after_energy
            # Leakage (through the model's charge_lost hook, so custom
            # LeakageModel subclasses stay equivalent to the stepped path).
            lost_charge = leakage_charge_lost(voltage, dt)
            if lost_charge > charge:
                lost_charge = charge
            charge -= lost_charge
            voltage = charge / capacitance
            leaked_total += after_energy - 0.5 * capacitance * voltage * voltage
            time += dt
            steps += 1
            if stop_below is not None and voltage < stop_below:
                break
        cap._charge = charge
        cap.ledger.absorbed += stored_total
        cap.ledger.clipped += clipped_total
        cap.ledger.delivered += delivered_total
        cap.ledger.leaked += leaked_total
        self.ledger.offered += offered
        self.ledger.stored += stored_total
        self.ledger.clipped += clipped_total
        self.ledger.delivered += delivered_total
        self.ledger.leaked += leaked_total
        return steps, time

    # -- lifecycle ----------------------------------------------------------------------

    def reset(self) -> None:
        self._capacitor.reset()
        self._reset_base()


class StaticBatchKernel(LockstepKernel):
    """Vectorized lockstep state for N static-capacitor buffer lanes.

    One kernel instance backs every batchable lane of a
    :class:`~repro.sim.batch.BatchSimulator`: the per-lane
    :class:`StaticBuffer` (or :class:`~repro.buffers.dewdrop.DewdropBuffer`)
    objects stay alive for workload-facing APIs (longevity requests, the
    ``ctx.buffer`` telemetry workloads read) while the electrical state
    advances through a shared :class:`~repro.capacitors.array.CapacitorArray`.
    Buffer-level accounting mirrors :meth:`StaticBuffer.harvest` /
    :meth:`~StaticBuffer.draw` / :meth:`~StaticBuffer.housekeeping`: the
    capacitor ledger entries are the buffer ledger entries for a single-cap
    design, with ``offered`` tracked separately.
    """

    #: The per-lane inlined replay below costs a handful of float ops per
    #: lane-step, so fast-forwarding pays off for any lane-group size.
    fast_forward_needs_full_batch = False

    def __init__(self, buffers: Sequence[StaticBuffer], caps: CapacitorArray) -> None:
        self.buffers = list(buffers)
        self.caps = caps
        self.offered = np.zeros(len(self.buffers))

    @classmethod
    def build(cls, buffers: Sequence[EnergyBuffer]) -> Optional["StaticBatchKernel"]:
        """A kernel over ``buffers``, or None if any lane is unbatchable."""
        if not all(isinstance(b, StaticBuffer) and b.can_batch() for b in buffers):
            return None
        caps = CapacitorArray.from_capacitors([b._capacitor for b in buffers])
        if caps is None:
            return None
        return cls(buffers, caps)

    def __len__(self) -> int:
        return len(self.buffers)

    @property
    def voltage(self) -> np.ndarray:
        """Per-lane output voltages."""
        return self.caps.voltage

    def post_harvest_voltage_bound(self, energy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`StaticBuffer.post_harvest_voltage_bound`."""
        caps = self.caps
        voltage = caps.voltage
        present = caps.energy(voltage)
        new_energy = np.minimum(present + energy, caps.max_energy)
        return np.where(
            energy > 0.0, np.sqrt(2.0 * new_energy / caps.capacitance), voltage
        )

    def _post_harvest_voltage(self, energy: np.ndarray) -> np.ndarray:
        """Exact post-harvest output voltage, making segment replay exact.

        :meth:`~repro.capacitors.array.CapacitorArray.charge_with_energy`
        stores ``C * sqrt(2 E / C)`` as the new charge and the gate then
        observes ``charge / C``; evaluating that same round trip here (not
        the bound's bare ``sqrt``, which can differ in the last ulp) makes
        the fast-forward ``stop_above`` decision identical to the voltage
        the lockstep gate check would see, so whole-segment replay commits
        exactly the steps normal stepping would.
        """
        caps = self.caps
        capacitance = caps.capacitance
        voltage = caps.voltage
        present = caps.energy(voltage)
        new_energy = np.minimum(present + energy, caps.max_energy)
        post_charge = capacitance * np.sqrt(2.0 * new_energy / capacitance)
        return np.where(energy > 0.0, post_charge / capacitance, voltage)

    def harvest(self, energy: np.ndarray) -> None:
        """Vectorized :meth:`StaticBuffer.harvest` for one lockstep step."""
        self.offered += energy
        self.caps.charge_with_energy(energy)

    def draw(self, current: np.ndarray, dt: np.ndarray) -> None:
        """Vectorized :meth:`StaticBuffer.draw` for one lockstep step."""
        self.caps.discharge_current(current, dt)

    def housekeeping(self, time: np.ndarray, dt: np.ndarray) -> None:
        """Vectorized :meth:`StaticBuffer.housekeeping` (leakage only).

        ``time`` is part of the shared kernel interface (the Morphy kernel
        schedules its 10 Hz controller poll off it); a static capacitor has
        no controller, so only leakage applies here.
        """
        self.caps.apply_leakage(dt)

    def drained_mask(self, enable_voltage: np.ndarray) -> np.ndarray:
        """Which powered-off lanes can never re-enable without new input.

        Mirrors the scalar drain test: output voltage below the enable
        threshold and stored energy below what the enable voltage requires
        on the present capacitance
        (:meth:`~repro.buffers.base.EnergyBuffer.can_reach_voltage`).
        """
        caps = self.caps
        voltage = caps.voltage
        stored = caps.energy(voltage)
        needed = 0.5 * caps.capacitance * enable_voltage * enable_voltage
        return (voltage < enable_voltage) & ~(stored >= needed)

    # -- whole-segment replay ------------------------------------------------

    def fast_forward(self, energy_in, load, dt, times, plan):
        """Per-lane inlined off-phase replay (see :meth:`_replay`)."""
        return self._replay(
            energy_in,
            load,
            dt,
            times,
            plan.steps,
            plan.stop_above,
            plan.stop_below,
            drain_floor=plan.drain_floor,
            brownout_floor=None,
        )

    def fast_forward_on(self, energy_in, load, dt, times, plan, brownout_floor):
        """Per-lane inlined on-phase replay (see :meth:`_replay`)."""
        return self._replay(
            energy_in,
            load,
            dt,
            times,
            plan.steps,
            plan.stop_above,
            plan.stop_below,
            drain_floor=None,
            brownout_floor=brownout_floor,
        )

    def _replay(
        self,
        energy_in,
        load,
        dt,
        times,
        max_steps,
        stop_above,
        stop_below,
        drain_floor,
        brownout_floor,
    ):
        """Whole-segment replay on local Python floats, one lane at a time.

        Overrides the generic :class:`~repro.buffers.base.LockstepKernel`
        array replay: a static lane's per-step update is only a handful of
        float operations (the same harvest → draw → leak recurrence
        :meth:`StaticBuffer.fast_forward` inlines for the scalar engine),
        so replaying each lane in a local-variable loop beats per-step
        vectorized dispatch on every batch width that fits in memory.  The
        expressions, their order, and the per-step running-total ledger
        accumulation replicate :class:`~repro.capacitors.array.CapacitorArray`
        operation for operation — python floats and numpy float64 share
        IEEE-754 double arithmetic — so the committed trajectory *and*
        ledger stay bit-identical to lockstep stepping, and the stop set
        matches the generic replay's (exact post-harvest voltage above,
        efficiency breakpoint below, brown-out floor / drain termination).
        """
        consumed = np.zeros(len(max_steps), dtype=np.int64)
        times = times.copy()
        lanes = np.nonzero(max_steps > 0)[0].tolist()
        if not lanes:
            return consumed, times
        caps = self.caps
        capacitance_list = caps.capacitance.tolist()
        max_energy_list = caps.max_energy.tolist()
        leak_current_list = caps.leak_rated_current.tolist()
        leak_voltage_list = caps.leak_rated_voltage.tolist()
        charge_list = caps.charge.tolist()
        absorbed_list = caps.absorbed.tolist()
        clipped_list = caps.clipped.tolist()
        delivered_list = caps.delivered.tolist()
        leaked_list = caps.leaked.tolist()
        offered_list = self.offered.tolist()
        energy_list = np.asarray(energy_in).tolist()
        load_list = np.asarray(load).tolist()
        budget_list = max_steps.tolist()
        above_list = stop_above.tolist()
        below_list = stop_below.tolist()
        drain_list = drain_floor.tolist() if drain_floor is not None else None
        floor_list = (
            np.asarray(brownout_floor).tolist()
            if brownout_floor is not None
            else None
        )
        time_list = times.tolist()
        dt = float(dt)
        sqrt = math.sqrt
        never = float("-inf")
        for i in lanes:
            capacitance = capacitance_list[i]
            max_energy = max_energy_list[i]
            leak_current = leak_current_list[i]
            leak_voltage = leak_voltage_list[i]
            energy_step = energy_list[i]
            current = load_list[i]
            above = above_list[i]
            below = below_list[i]
            floor = floor_list[i] if floor_list is not None else never
            budget = budget_list[i]
            charge = charge_list[i]
            absorbed = absorbed_list[i]
            clipped = clipped_list[i]
            delivered = delivered_list[i]
            leaked = leaked_list[i]
            offered = offered_list[i]
            lane_time = time_list[i]
            if drain_list is not None:
                drain = drain_list[i]
                check_drain = drain > never
                needed = 0.5 * capacitance * drain * drain if check_drain else 0.0
            else:
                drain = never
                check_drain = False
                needed = 0.0
            steps = 0
            while steps < budget:
                voltage = charge / capacitance
                if voltage <= floor:
                    break
                if voltage >= above:
                    break
                if energy_step > 0.0:
                    present = 0.5 * capacitance * voltage * voltage
                    new_energy = present + energy_step
                    if new_energy > max_energy:
                        new_energy = max_energy
                    post_charge = capacitance * sqrt(
                        2.0 * new_energy / capacitance
                    )
                    if post_charge / capacitance >= above:
                        break
                    offered += energy_step
                    stored = new_energy - present
                    absorbed += stored
                    clipped += energy_step - stored
                    charge = post_charge
                # Load draw (charge domain, floored at zero).
                voltage = charge / capacitance
                before = 0.5 * capacitance * voltage * voltage
                new_charge = charge - current * dt
                if new_charge < 0.0:
                    new_charge = 0.0
                charge = new_charge
                voltage = charge / capacitance
                delivered += before - 0.5 * capacitance * voltage * voltage
                # Leakage (the vectorized proportional model's expression).
                if voltage > 0.0:
                    lost = leak_current * (voltage / leak_voltage) * dt
                    if lost > charge:
                        lost = charge
                else:
                    lost = 0.0
                before = 0.5 * capacitance * voltage * voltage
                charge = charge - lost
                voltage = charge / capacitance
                leaked += before - 0.5 * capacitance * voltage * voltage
                lane_time += dt
                steps += 1
                if voltage < below:
                    break
                if check_drain and voltage < drain:
                    if not (0.5 * capacitance * voltage * voltage >= needed):
                        break
            caps.charge[i] = charge
            caps.absorbed[i] = absorbed
            caps.clipped[i] = clipped
            caps.delivered[i] = delivered
            caps.leaked[i] = leaked
            self.offered[i] = offered
            times[i] = lane_time
            consumed[i] = steps
        return consumed, times

    def compact(self, keep: np.ndarray) -> None:
        """Drop retired lanes from the shared arrays."""
        self.buffers = [b for b, k in zip(self.buffers, keep) if k]
        self.offered = self.offered[keep]
        self.caps.compact(keep)

    def sync_lane(self, index: int) -> None:
        """Refresh lane ``index``'s buffer object so Python code can read it."""
        self.caps.sync_charge(index)

    def sync_lanes(self, indices: Sequence[int]) -> None:
        """Refresh every buffer object in ``indices`` in one pass."""
        self.caps.sync_charges(indices)

    def finalize_lane(self, index: int) -> StaticBuffer:
        """Write lane ``index`` back into its buffer object and return it."""
        buffer = self.buffers[index]
        caps = self.caps
        caps.writeback(index)
        buffer.ledger.offered += float(self.offered[index])
        buffer.ledger.stored += float(caps.absorbed[index])
        buffer.ledger.clipped += float(caps.clipped[index])
        buffer.ledger.delivered += float(caps.delivered[index])
        buffer.ledger.leaked += float(caps.leaked[index])
        return buffer
