"""Fixed-size (static) buffer capacitor — the conventional baseline.

A static buffer is a single capacitor sized at design time.  Its behaviour
embodies the reactivity/longevity/efficiency tradeoff the paper analyzes in
§2: a small capacitor charges quickly but clips harvested energy whenever
input power exceeds demand; a large one captures surplus energy but enables
late and loses more cold-start energy to leakage.
"""

from __future__ import annotations

from repro.buffers.base import EnergyBuffer
from repro.capacitors.capacitor import Capacitor
from repro.capacitors.leakage import LeakageModel, VoltageProportionalLeakage
from repro.exceptions import ConfigurationError
from repro.units import capacitor_energy

#: Default leakage density: amperes of leakage per farad at the rated voltage.
#: Chosen to match "typical" (not worst-case datasheet) figures for the
#: ceramic / electrolytic parts the paper's prototypes use.
DEFAULT_LEAKAGE_PER_FARAD = 3e-3


class StaticBuffer(EnergyBuffer):
    """A single fixed buffer capacitor behind the harvester.

    Parameters
    ----------
    capacitance:
        Buffer size in farads (the paper evaluates 770 µF, 10 mF, 17 mF).
    max_voltage:
        Overvoltage-protection clamp; harvested energy beyond this point is
        burned off as heat (3.6 V in the testbed).
    brownout_voltage:
        Voltage below which stored energy cannot power the platform; used
        for the ``usable_energy`` surrogate.
    leakage:
        Optional explicit leakage model; by default leakage scales with the
        capacitance (bigger banks leak more).
    """

    supports_longevity = False

    def __init__(
        self,
        capacitance: float,
        max_voltage: float = 3.6,
        brownout_voltage: float = 1.8,
        leakage: LeakageModel | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__()
        if capacitance <= 0.0:
            raise ConfigurationError(f"capacitance must be positive, got {capacitance}")
        if max_voltage <= brownout_voltage:
            raise ConfigurationError(
                "max voltage must exceed the brown-out voltage "
                f"({max_voltage} <= {brownout_voltage})"
            )
        if leakage is None:
            leakage = VoltageProportionalLeakage(
                rated_current=DEFAULT_LEAKAGE_PER_FARAD * capacitance,
                rated_voltage=6.3,
            )
        self.brownout_voltage = brownout_voltage
        self._capacitor = Capacitor(
            capacitance=capacitance,
            rated_voltage=max_voltage,
            leakage=leakage,
            name=name or "static",
        )
        self.name = name or f"{capacitance * 1e6:.0f} uF"

    # -- telemetry -----------------------------------------------------------------

    @property
    def output_voltage(self) -> float:
        return self._capacitor.voltage

    @property
    def stored_energy(self) -> float:
        return self._capacitor.energy

    @property
    def capacitance(self) -> float:
        return self._capacitor.capacitance

    @property
    def max_capacitance(self) -> float:
        return self._capacitor.capacitance

    @property
    def max_voltage(self) -> float:
        """Overvoltage clamp of the buffer."""
        return self._capacitor.rated_voltage

    def usable_energy(self) -> float:
        floor = capacitor_energy(self._capacitor.capacitance, self.brownout_voltage)
        return max(0.0, self._capacitor.energy - floor)

    # -- energy flow -------------------------------------------------------------------

    def harvest(self, energy: float, dt: float) -> float:
        self.ledger.offered += energy
        stored = self._capacitor.charge_with_energy(energy)
        self.ledger.stored += stored
        self.ledger.clipped += energy - stored
        return stored

    def draw(self, current: float, dt: float) -> float:
        delivered = self._capacitor.discharge_current(current, dt)
        self.ledger.delivered += delivered
        return delivered

    def housekeeping(self, time: float, dt: float, system_on: bool) -> None:
        self.ledger.leaked += self._capacitor.apply_leakage(dt)

    # -- lifecycle ----------------------------------------------------------------------

    def reset(self) -> None:
        self._capacitor.reset()
        self._reset_base()
