"""Morphy-style unified switched-capacitor buffer (Yang et al., SenSys'21).

Morphy replaces the static buffer with a set of identical capacitors in a
fully interconnected switching network; software reconfigures the network
to present different equivalent capacitances.  The REACT paper evaluates
Morphy as the closest prior work and shows that its Achilles heel is
*dissipative reconfiguration*: whenever capacitors (or capacitor chains) at
different potentials end up in parallel, the equalizing current spike burns
a large fraction of the stored energy (25 % in the 4-capacitor example of
the paper's Figure 5; 56.25 % for an 8-capacitor array stepping out of full
parallel).

Topology model
--------------

A configuration is a *series chain of parallel groups* with optionally some
capacitors connected directly across the network output (the structure of
the paper's Figures 4–5).  The default table exposes eleven configurations
spanning 250 µF–16 mF, matching the configuration count and capacitance
range of the paper's Morphy implementation (eight 2 mF capacitors).

Loss model
----------

Charging and discharging through the output terminals is lossless (charge
divides between the chain and the across capacitors in proportion to their
capacitance), but it drives the per-capacitor voltages apart whenever the
groups are of unequal size.  Reconfiguration then equalizes:

1. capacitors regrouped into the same parallel group equalize to their
   charge-weighted mean voltage, and
2. the new chain and every across capacitor equalize to a common output
   voltage,

each time conserving charge and dissipating the energy difference in the
switches.  Both losses are accumulated in ``ledger.switching_loss`` — they
are the quantity the REACT-versus-Morphy comparison (and the isolation
ablation) measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.buffers.base import EnergyBuffer
from repro.buffers.static import DEFAULT_LEAKAGE_PER_FARAD
from repro.capacitors.leakage import (
    VoltageProportionalLeakage,
    stack_proportional_leakage,
)
from repro.exceptions import ConfigurationError
from repro.units import capacitor_energy, millifarads, next_grid_time


@dataclass(frozen=True)
class MorphyConfiguration:
    """One switch setting of the Morphy array.

    ``groups`` are the parallel-group sizes forming the series chain (in
    positional capacitor order); ``across`` is how many further capacitors
    sit directly across the network output.  Capacitors beyond
    ``sum(groups) + across`` are isolated and simply hold their charge.
    """

    groups: Tuple[int, ...]
    across: int = 0

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigurationError("a configuration needs at least one chain group")
        if any(size < 1 for size in self.groups):
            raise ConfigurationError("group sizes must be at least 1")
        if self.across < 0:
            raise ConfigurationError("across count must be non-negative")

    @property
    def caps_used(self) -> int:
        """Capacitors participating in this configuration."""
        # repro-lint: disable=ledger-sum -- integer capacitor count, not a float ledger
        return sum(self.groups) + self.across

    def chain_capacitance(self, unit: float) -> float:
        """Equivalent capacitance of the series chain alone."""
        # repro-lint: disable=ledger-sum -- configuration-table arithmetic; the batch kernel calls this same helper, so there is one add order
        return 1.0 / sum(1.0 / (size * unit) for size in self.groups)

    def equivalent_capacitance(self, unit: float) -> float:
        """Capacitance presented at the output."""
        return self.chain_capacitance(unit) + self.across * unit


#: The eleven configurations of the default (eight 2 mF capacitor) array,
#: ascending in equivalent capacitance from 250 µF to 16 mF.  The low end
#: regroups the series chain; from 1 mF upward every expansion pulls
#: capacitors out of the chain and places them across the output — the
#: transition the paper's Figure 5 analyzes, and the one that dissipates a
#: large fraction of the stored energy.
DEFAULT_CONFIGURATIONS: Tuple[MorphyConfiguration, ...] = (
    MorphyConfiguration(groups=(1, 1, 1, 1, 1, 1, 1, 1)),          # 0.250 mF
    MorphyConfiguration(groups=(2, 1, 1, 1, 1, 1, 1)),             # 0.308 mF
    MorphyConfiguration(groups=(2, 2, 1, 1, 1, 1)),                # 0.400 mF
    MorphyConfiguration(groups=(2, 2, 2, 2)),                      # 1.000 mF
    MorphyConfiguration(groups=(2, 2, 2, 1), across=1),            # 2.800 mF
    MorphyConfiguration(groups=(2, 2, 2), across=2),               # 5.333 mF
    MorphyConfiguration(groups=(2, 2, 1), across=3),               # 7.000 mF
    MorphyConfiguration(groups=(2, 2), across=4),                  # 10.000 mF
    MorphyConfiguration(groups=(2, 1), across=5),                  # 11.333 mF
    MorphyConfiguration(groups=(1, 1), across=6),                  # 13.000 mF
    MorphyConfiguration(groups=(8,)),                              # 16.000 mF
)


class MorphyConfigurationTable:
    """The ordered set of configurations a Morphy array steps through."""

    def __init__(
        self,
        cap_count: int = 8,
        unit_capacitance: float = millifarads(2.0),
        configurations: Sequence[MorphyConfiguration] | None = None,
    ) -> None:
        if cap_count < 2:
            raise ConfigurationError("a Morphy array needs at least two capacitors")
        if unit_capacitance <= 0.0:
            raise ConfigurationError("unit capacitance must be positive")
        self.cap_count = cap_count
        self.unit_capacitance = unit_capacitance
        if configurations is None:
            configurations = self._default_configurations(cap_count)
        configurations = tuple(configurations)
        for config in configurations:
            if config.caps_used > cap_count:
                raise ConfigurationError(
                    f"configuration {config} uses more capacitors than the array has"
                )
        ordered = sorted(
            configurations, key=lambda c: c.equivalent_capacitance(unit_capacitance)
        )
        self.configurations: Tuple[MorphyConfiguration, ...] = tuple(ordered)

    @staticmethod
    def _default_configurations(cap_count: int) -> Tuple[MorphyConfiguration, ...]:
        if cap_count == 8:
            return DEFAULT_CONFIGURATIONS
        # Generic fallback: a ladder from all-series to all-parallel.
        configs: List[MorphyConfiguration] = []
        for chain in range(cap_count, 0, -1):
            configs.append(
                MorphyConfiguration(groups=(1,) * chain, across=cap_count - chain)
            )
        return tuple(configs)

    @property
    def max_level(self) -> int:
        """Highest configuration level (largest capacitance)."""
        return len(self.configurations) - 1

    def configuration(self, level: int) -> MorphyConfiguration:
        """The configuration at ``level`` (0 = smallest capacitance)."""
        if not 0 <= level <= self.max_level:
            raise ConfigurationError(
                f"configuration level must lie in [0, {self.max_level}], got {level}"
            )
        return self.configurations[level]

    def equivalent_capacitance(self, level: int) -> float:
        """Equivalent capacitance presented at configuration ``level``."""
        return self.configuration(level).equivalent_capacitance(self.unit_capacitance)

    @property
    def capacitance_range(self) -> Tuple[float, float]:
        """(minimum, maximum) equivalent capacitance."""
        return (
            self.equivalent_capacitance(0), self.equivalent_capacitance(self.max_level)
        )

    def levels(self) -> List[float]:
        """Equivalent capacitance at every level, ascending."""
        return [
            self.equivalent_capacitance(level) for level in range(self.max_level + 1)
        ]


class MorphyBuffer(EnergyBuffer):
    """A software-defined charge-storage array with lossy reconfiguration."""

    supports_longevity = True

    #: Whether this class's energy-flow hooks are exactly the per-capacitor
    #: recurrence :class:`~repro.buffers.morphy_batch.MorphyBatchKernel`
    #: vectorizes.  Subclasses overriding ``harvest`` / ``draw`` /
    #: ``housekeeping`` / ``reconfigure`` / ``_shift_output_voltage`` /
    #: ``overhead_current`` with different dynamics must set this False so
    #: their lanes fall back to the scalar engine.
    batch_exact = True

    def __init__(
        self,
        cap_count: int = 8,
        unit_capacitance: float = millifarads(2.0),
        configurations: Sequence[MorphyConfiguration] | None = None,
        max_voltage: float = 3.6,
        brownout_voltage: float = 1.8,
        high_threshold: float = 3.5,
        low_threshold: float = 1.9,
        poll_rate_hz: float = 10.0,
        network_efficiency: float = 0.95,
        name: str = "Morphy",
    ) -> None:
        super().__init__()
        if max_voltage <= brownout_voltage:
            raise ConfigurationError("max voltage must exceed brown-out voltage")
        if high_threshold <= low_threshold:
            raise ConfigurationError("high threshold must exceed low threshold")
        if not 0.0 < network_efficiency <= 1.0:
            raise ConfigurationError("network efficiency must lie in (0, 1]")
        self.table = MorphyConfigurationTable(
            cap_count, unit_capacitance, configurations
        )
        self.max_voltage = max_voltage
        self.brownout_voltage = brownout_voltage
        self.high_threshold = high_threshold
        self.low_threshold = low_threshold
        self.poll_period = 1.0 / poll_rate_hz
        #: Conduction efficiency of the switch fabric.  Every coulomb into or
        #: out of the array crosses several pass transistors of the fully
        #: interconnected network, whereas REACT's charge path is two active
        #: ideal diodes (§3.3.2); the default models a few percent of
        #: conduction loss for Morphy's network.
        self.network_efficiency = network_efficiency
        self.name = name
        self.leakage = VoltageProportionalLeakage(
            rated_current=DEFAULT_LEAKAGE_PER_FARAD * unit_capacitance,
            rated_voltage=6.3,
        )
        self._voltages: List[float] = [0.0] * cap_count
        self.level = 0
        self._next_poll_time = 0.0
        self.reconfiguration_count = 0
        self._build_topology_cache()

    def _build_topology_cache(self) -> None:
        """Precompute per-level topology so hot-path steps avoid rebuilding it.

        The configuration table is immutable after construction, but the
        seed implementation re-derived group membership and equivalent
        capacitance from it on every ``output_voltage``/``harvest``/``draw``
        call — about a dozen list constructions per simulation step, which
        profiling showed dominated Morphy's simulation cost.
        """
        unit = self.table.unit_capacitance
        self._level_groups: List[Tuple[Tuple[int, ...], ...]] = []
        self._level_across: List[Tuple[int, ...]] = []
        self._level_firsts: List[Tuple[int, ...]] = []
        self._level_chain_capacitance: List[float] = []
        self._level_capacitance: List[float] = []
        for level in range(self.table.max_level + 1):
            config = self.table.configuration(level)
            groups: List[Tuple[int, ...]] = []
            index = 0
            for size in config.groups:
                groups.append(tuple(range(index, index + size)))
                index += size
            across = tuple(range(index, index + config.across))
            self._level_groups.append(tuple(groups))
            self._level_across.append(across)
            self._level_firsts.append(tuple(group[0] for group in groups))
            self._level_chain_capacitance.append(config.chain_capacitance(unit))
            self._level_capacitance.append(config.equivalent_capacitance(unit))

    # -- topology helpers ------------------------------------------------------------

    @property
    def cap_count(self) -> int:
        """Number of capacitors in the array."""
        return self.table.cap_count

    @property
    def unit_capacitance(self) -> float:
        """Capacitance of each unit capacitor."""
        return self.table.unit_capacitance

    @property
    def configuration(self) -> MorphyConfiguration:
        """The active configuration."""
        return self.table.configuration(self.level)

    def _membership(
        self, config: MorphyConfiguration
    ) -> Tuple[List[List[int]], List[int], List[int]]:
        """(chain groups, across, isolated) capacitor indices for a configuration."""
        groups: List[List[int]] = []
        index = 0
        for size in config.groups:
            groups.append(list(range(index, index + size)))
            index += size
        across = list(range(index, index + config.across))
        index += config.across
        isolated = list(range(index, self.cap_count))
        return groups, across, isolated

    # -- telemetry ----------------------------------------------------------------------

    @property
    def output_voltage(self) -> float:
        voltages = self._voltages
        # repro-lint: disable=ledger-sum -- scalar reference order: builtin sum is sequential left-to-right; MorphyBatchKernel mirrors it with sequential column adds
        return sum(voltages[first] for first in self._level_firsts[self.level])

    @property
    def stored_energy(self) -> float:
        # repro-lint: disable=ledger-sum -- scalar reference order: builtin sum is sequential left-to-right; MorphyBatchKernel mirrors it with sequential column adds
        return sum(
            capacitor_energy(self.unit_capacitance, voltage)
            for voltage in self._voltages
        )

    @property
    def capacitance(self) -> float:
        return self._level_capacitance[self.level]

    @property
    def max_capacitance(self) -> float:
        return self.table.capacitance_range[1]

    def usable_energy(self) -> float:
        floor = capacitor_energy(self.capacitance, self.brownout_voltage)
        present = capacitor_energy(self.capacitance, self.output_voltage)
        return max(0.0, present - floor)

    def can_reach_voltage(self, voltage: float) -> bool:
        """Stepping down to the smallest configuration boosts the output.

        Without new input the best Morphy can do is reconfigure its stored
        charge onto the minimum equivalent capacitance; if even that cannot
        reach ``voltage`` the system cannot restart.
        """
        if self.output_voltage >= voltage:
            return True
        minimum_capacitance = self.table.capacitance_range[0]
        best_voltage = math.sqrt(2.0 * self.stored_energy / minimum_capacitance)
        return best_voltage >= voltage

    def snapshot(self) -> Dict[str, float]:
        snapshot = super().snapshot()
        snapshot["configuration_level"] = float(self.level)
        return snapshot

    # -- multi-system batching ---------------------------------------------------------

    def batch_key(self) -> Optional[Hashable]:
        """Lockstep-compatibility key for the Morphy batch kernel.

        Lanes can share one :class:`~repro.buffers.morphy_batch.MorphyBatchKernel`
        when their switch topology is identical — same capacitor count and
        the same (groups, across) structure at every level — because the
        kernel vectorizes per-capacitor updates over a uniform
        ``(lanes, cap_count)`` array.  Everything scalar (unit capacitance,
        thresholds, poll rate, network efficiency, leakage parameters) may
        differ per lane.  Requires the class to vouch for its hooks
        (:attr:`batch_exact`) and a leakage model the kernel can stack into
        closed form.
        """
        if not self.batch_exact:
            return None
        if stack_proportional_leakage([self.leakage]) is None:
            return None
        topology = tuple(
            (config.groups, config.across) for config in self.table.configurations
        )
        return ("morphy", self.cap_count, topology)

    # -- off-phase fast forwarding ----------------------------------------------------

    def post_harvest_voltage_bound(self, energy: float) -> float:
        """Exact post-harvest output voltage for the active configuration.

        Charging through the output terminals cannot reconfigure the array
        (only the 10 Hz controller poll in housekeeping does, and the
        conservative generic fast path re-checks the output voltage after
        every housekeeping call), so the harvest formula itself is the
        bound.
        """
        if energy <= 0.0:
            return self.output_voltage
        voltage = self.output_voltage
        usable = energy * self.network_efficiency
        capacitance = self.capacitance
        headroom = capacitor_energy(capacitance, self.max_voltage) - capacitor_energy(
            capacitance, voltage
        )
        stored = min(usable, max(0.0, headroom))
        return math.sqrt(voltage * voltage + 2.0 * stored / capacitance)

    # -- energy flow -----------------------------------------------------------------------

    def harvest(self, energy: float, dt: float) -> float:
        self.ledger.offered += energy
        if energy <= 0.0:
            return 0.0
        usable_input = energy * self.network_efficiency
        capacitance = self._level_capacitance[self.level]
        voltage = self.output_voltage
        headroom = (
            0.5 * capacitance * self.max_voltage * self.max_voltage
            - 0.5 * capacitance * voltage * voltage
        )
        capped = max(0.0, headroom)
        # Conduction loss is charged only on the energy that actually
        # crosses the switch fabric: when the array is full, the clipped
        # surplus is burned off before the network (the statics' clipping
        # convention), so ``offered == stored + clipped + switching_loss``
        # decomposes consistently across architectures.
        if usable_input <= capped:
            stored = usable_input
            switching = energy - usable_input
            clipped = 0.0
        else:
            stored = capped
            crossing = stored / self.network_efficiency
            switching = crossing - stored
            clipped = energy - crossing
        if stored > 0.0:
            new_output = math.sqrt(voltage * voltage + 2.0 * stored / capacitance)
            self._shift_output_voltage(new_output - voltage)
        self.ledger.stored += stored
        self.ledger.switching_loss += switching
        self.ledger.clipped += clipped
        return stored

    def draw(self, current: float, dt: float) -> float:
        if current <= 0.0 or dt <= 0.0:
            return 0.0
        # The load current crosses the switch fabric, so slightly more charge
        # leaves the capacitors than reaches the platform.
        charge = current * dt / self.network_efficiency
        capacitance = self._level_capacitance[self.level]
        voltage = self.output_voltage
        available_charge = capacitance * voltage
        charge = min(charge, available_charge)
        before = 0.5 * capacitance * voltage * voltage
        new_output = (available_charge - charge) / capacitance
        self._shift_output_voltage(new_output - voltage)
        removed = before - 0.5 * capacitance * new_output * new_output
        delivered = removed * self.network_efficiency
        self.ledger.switching_loss += removed - delivered
        self.ledger.delivered += delivered
        return delivered

    def housekeeping(self, time: float, dt: float, system_on: bool) -> None:
        self.ledger.leaked += self._apply_leakage(dt)
        # Morphy's controller is a separately powered microcontroller (the
        # paper uses a USB-supplied MSP430), so reconfiguration decisions do
        # not require the main platform to be awake.
        if time >= self._next_poll_time:
            # Snap to the poll-period grid rather than ``time +
            # poll_period``: the latter stretches every interval by the
            # step's overshoot, so the 10 Hz controller drifts off its
            # hardware clock and the poll schedule becomes a function of
            # the simulation step size.
            self._next_poll_time = next_grid_time(time, self.poll_period)
            self._poll()

    # -- controller policy --------------------------------------------------------------------

    def _poll(self) -> None:
        voltage = self.output_voltage
        if voltage >= self.high_threshold and self.level < self.table.max_level:
            self.reconfigure(self.level + 1)
        elif voltage <= self.low_threshold and self.level > 0:
            self.reconfigure(self.level - 1)

    def set_state(self, level: int, cell_voltages: Sequence[float]) -> None:
        """Directly set the configuration level and per-capacitor voltages.

        Intended for experiment and test setup (e.g. measuring the loss of a
        single reconfiguration from a known starting point); normal
        simulation drives the state through ``harvest``/``draw``/``housekeeping``.
        """
        if not 0 <= level <= self.table.max_level:
            raise ConfigurationError(
                f"configuration level must lie in [0, {self.table.max_level}], got {level}"
            )
        if len(cell_voltages) != self.cap_count:
            raise ConfigurationError(
                f"expected {self.cap_count} cell voltages, got {len(cell_voltages)}"
            )
        if any(v < 0.0 for v in cell_voltages):
            raise ConfigurationError("cell voltages must be non-negative")
        self.level = level
        self._voltages = [float(v) for v in cell_voltages]

    # -- reconfiguration physics -----------------------------------------------------------------

    def reconfigure(self, new_level: int) -> float:
        """Switch to configuration ``new_level``; returns the energy dissipated.

        Reconfiguration happens with the array isolated from harvester and
        load (break-before-make), so total charge at the output node is
        conserved while capacitors forced to a common potential dissipate
        the energy difference in the switch network.
        """
        if new_level == self.level:
            return 0.0
        config = self.table.configuration(new_level)
        energy_before = self.stored_energy
        groups, across, _ = self._membership(config)

        # Phase 1: members of each new parallel group equalize.
        for group in groups:
            # repro-lint: disable=ledger-sum -- scalar reference order: builtin sum is sequential left-to-right; MorphyBatchKernel mirrors it with sequential column adds
            mean_voltage = sum(self._voltages[i] for i in group) / len(group)
            for i in group:
                self._voltages[i] = mean_voltage

        # Phase 2: the chain and every across capacitor equalize at the output.
        unit = self.unit_capacitance
        chain_capacitance = config.chain_capacitance(unit)
        # repro-lint: disable=ledger-sum -- scalar reference order: builtin sum is sequential left-to-right; MorphyBatchKernel mirrors it with sequential column adds
        chain_output = sum(self._voltages[group[0]] for group in groups)
        # repro-lint: disable=ledger-sum -- scalar reference order: builtin sum is sequential left-to-right; MorphyBatchKernel mirrors it with sequential column adds
        numerator = chain_capacitance * chain_output + unit * sum(
            self._voltages[i] for i in across
        )
        denominator = chain_capacitance + unit * len(across)
        final_voltage = numerator / denominator
        chain_delta_charge = (final_voltage - chain_output) * chain_capacitance
        for group in groups:
            delta = chain_delta_charge / (len(group) * unit)
            for i in group:
                self._voltages[i] = max(0.0, self._voltages[i] + delta)
        for i in across:
            self._voltages[i] = final_voltage

        self.level = new_level
        self.reconfiguration_count += 1
        dissipated = max(0.0, energy_before - self.stored_energy)
        self.ledger.switching_loss += dissipated
        return dissipated

    # -- internals -----------------------------------------------------------------------------------

    def _set_output_voltage(self, new_output: float) -> None:
        """Charge or discharge the network at its output terminals."""
        self._shift_output_voltage(max(0.0, new_output) - self.output_voltage)

    def _shift_output_voltage(self, delta_v: float) -> None:
        """Move the output voltage by ``delta_v`` through the output terminals.

        The charge moving through the output splits between the chain and
        the across capacitors in proportion to capacitance; every group in
        the chain carries the full chain share, so unequal group sizes make
        the cell voltages diverge (the seed of the reconfiguration loss).
        """
        if delta_v == 0.0:
            return
        level = self.level
        voltages = self._voltages
        unit = self.table.unit_capacitance
        total = self._level_capacitance[level]
        charge = delta_v * total
        chain_charge = charge * (self._level_chain_capacitance[level] / total)
        for group in self._level_groups[level]:
            delta = chain_charge / (len(group) * unit)
            for i in group:
                voltages[i] = max(0.0, voltages[i] + delta)
        for i in self._level_across[level]:
            voltages[i] = max(0.0, voltages[i] + delta_v)

    def _apply_leakage(self, dt: float) -> float:
        leaked = 0.0
        voltages = self._voltages
        unit = self.table.unit_capacitance
        leakage = self.leakage
        if type(leakage) is VoltageProportionalLeakage:
            # Inlined hot path: one leakage evaluation per cell per step.
            # Exact-type check (not isinstance): a subclass overriding
            # current()/charge_lost() must go through the generic branch.
            rated_current = leakage.rated_current
            rated_voltage = leakage.rated_voltage
            for index, voltage in enumerate(voltages):
                if voltage <= 0.0:
                    continue
                lost_charge = rated_current * (voltage / rated_voltage) * dt
                new_voltage = max(0.0, voltage - lost_charge / unit)
                leaked += (
                    0.5 * unit * voltage * voltage
                    - 0.5 * unit * new_voltage * new_voltage
                )
                voltages[index] = new_voltage
            return leaked
        for index, voltage in enumerate(voltages):
            if voltage <= 0.0:
                continue
            lost_charge = leakage.charge_lost(voltage, dt)
            new_voltage = max(0.0, voltage - lost_charge / unit)
            leaked += capacitor_energy(unit, voltage) - capacitor_energy(
                unit, new_voltage
            )
            voltages[index] = new_voltage
        return leaked

    # -- lifecycle ---------------------------------------------------------------------------------------

    def reset(self) -> None:
        self._voltages = [0.0] * self.cap_count
        self.level = 0
        self._next_poll_time = 0.0
        self.reconfiguration_count = 0
        self._reset_base()
