"""Vectorized lockstep kernel for Morphy switched-capacitor lanes.

:class:`MorphyBatchKernel` is the Morphy counterpart of
:class:`~repro.buffers.static.StaticBatchKernel`: it advances N
trace-sharing :class:`~repro.buffers.morphy.MorphyBuffer` lanes through one
``(lanes, cap_count)`` voltage array, mirroring every scalar expression of
``harvest`` / ``draw`` / ``housekeeping`` operation for operation so the
per-lane trajectory is bit-identical to the scalar engine.

Layout
------

All lanes share one switch topology (enforced through
:meth:`~repro.buffers.morphy.MorphyBuffer.batch_key`): the same capacitor
count and the same (groups, across) structure at every configuration level.
That makes every per-capacitor update expressible with *per-level constant*
index masks over the capacitor axis, while everything scalar — unit
capacitance, thresholds, poll period, network efficiency, leakage
parameters, and the per-level equivalent/chain capacitances derived from
them — varies per lane as plain parameter arrays.

Lanes diverge in configuration *level* (each lane's 10 Hz controller polls
on its own clock), but levels change only at a reconfiguring poll — a few
times per simulated second against hundreds of steps — so every
level-dependent quantity the hot path needs (equivalent and chain
capacitance, half-capacitance energy factors, the chain/across masks and
charge-split denominators, the lane partition by level) is cached by
:meth:`_refresh_level_cache` and rebuilt only when some lane's level
actually moves.  The hot-path cost per step is then a fixed handful of
elementwise array ops, independent of how the lanes are distributed over
levels.

Bit-equality notes
------------------

Floating-point addition is not associative, so everywhere the scalar code
accumulates a Python ``sum()`` over capacitors (output voltage over the
chain groups' first members, stored energy, group equalization means) this
kernel adds the same columns *sequentially in the same order* rather than
calling ``numpy.sum`` (whose pairwise summation would round differently).
Products the scalar code forms left-to-right (``0.5 * C * v * v``) are
precomputed only up to the per-lane constant prefix (``0.5 * C``), keeping
the per-element operation sequence identical.  The cached output voltage is
recomputed from the cell voltages after every mutation a reader can
observe, exactly as the scalar ``output_voltage`` property re-derives it on
every read.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.buffers.base import EnergyBuffer, LockstepKernel
from repro.buffers.morphy import MorphyBuffer
from repro.capacitors.leakage import stack_proportional_leakage


class MorphyBatchKernel(LockstepKernel):
    """Vectorized lockstep state for N topology-sharing Morphy lanes.

    The per-lane :class:`~repro.buffers.morphy.MorphyBuffer` objects stay
    alive for workload-facing APIs (longevity requests, the ``ctx.buffer``
    telemetry workloads read) while the electrical state advances through
    the shared arrays; :meth:`sync_lane` / :meth:`finalize_lane` write a
    lane's array state back into its buffer object.

    Segment fast-forwarding (:meth:`~repro.buffers.base.LockstepKernel.fast_forward`
    and its on-phase twin) is inherited in its *conservative* form: the
    pre-commit ``stop_above`` check uses :meth:`post_harvest_voltage_bound`
    rather than the exact post-harvest output (which for Morphy emerges
    from the charge split across the switch network and has no cheap
    closed form), so a lane may leave fast-forward a step early and resume
    under normal stepping — the same conservatism the scalar engine's
    generic :meth:`~repro.buffers.base.EnergyBuffer.fast_forward` applies
    to Morphy.  Controller polls still run on schedule inside the replay
    (the masked housekeeping timestamps are each stepping lane's own
    clock), so reconfigurations land on exactly the step they would under
    normal stepping; a reconfiguration that jumps the output voltage is
    caught by the next iteration's pre-commit checks, again exactly like
    the scalar fast path.

    The inherited ``fast_forward_needs_full_batch = True`` stays in force:
    Morphy's per-step hooks sweep the whole ``lanes × caps`` state, so a
    replayed step costs about a lockstep main-loop step and only a plan
    covering every lane (the batch engine then skips its iteration
    entirely) can come out ahead; partial lane groups step normally under
    the hint masks instead.
    """

    def __init__(self, buffers: Sequence[MorphyBuffer]) -> None:
        self.buffers: List[MorphyBuffer] = list(buffers)
        template = self.buffers[0]
        n = len(self.buffers)
        cap_count = template.cap_count
        n_levels = template.table.max_level + 1
        self._cap_count = cap_count
        self._max_level = n_levels - 1

        # Shared topology (identical across lanes by construction): group
        # membership per level, plus per-level constant masks over the
        # capacitor axis for the vectorized output-terminal charge split.
        self._level_groups = template._level_groups
        self._level_across = template._level_across
        self._level_firsts = template._level_firsts
        chain_mask = np.zeros((n_levels, cap_count), dtype=bool)
        across_mask = np.zeros((n_levels, cap_count), dtype=bool)
        # Group size at chain-member positions; 1.0 elsewhere so the masked
        # division never divides by zero.
        chain_denom = np.ones((n_levels, cap_count))
        for level in range(n_levels):
            for group in self._level_groups[level]:
                for index in group:
                    chain_mask[level, index] = True
                    chain_denom[level, index] = float(len(group))
            for index in self._level_across[level]:
                across_mask[level, index] = True
        self._chain_mask = chain_mask
        self._across_mask = across_mask
        self._chain_denom = chain_denom

        # Per-lane scalar parameters.
        self._unit = np.array([b.unit_capacitance for b in self.buffers])
        self._eta = np.array([b.network_efficiency for b in self.buffers])
        self._vmax = np.array([b.max_voltage for b in self.buffers])
        self._high = np.array([b.high_threshold for b in self.buffers])
        self._low = np.array([b.low_threshold for b in self.buffers])
        self._period = np.array([b.poll_period for b in self.buffers])
        stacked = stack_proportional_leakage([b.leakage for b in self.buffers])
        assert stacked is not None  # guaranteed by build()/batch_key()
        self._rated_current, self._rated_voltage = stacked
        # Per-lane per-level capacitance caches, copied verbatim from the
        # buffers' own topology caches so the gathered values are the very
        # floats the scalar hot paths read.
        self._level_cap = np.array([b._level_capacitance for b in self.buffers])
        self._chain_cap = np.array(
            [b._level_chain_capacitance for b in self.buffers]
        )
        self._min_cap = self._level_cap[:, 0].copy()

        # Per-lane state.
        self._V = np.array([b._voltages for b in self.buffers])
        self._level = np.array([b.level for b in self.buffers], dtype=np.int64)
        self._next_poll = np.array([b._next_poll_time for b in self.buffers])
        self._reconfigurations = np.zeros(n, dtype=np.int64)

        # Per-lane ledger accumulators, folded into the buffer ledgers at
        # retirement.
        self.offered = np.zeros(n)
        self.stored = np.zeros(n)
        self.clipped = np.zeros(n)
        self.delivered = np.zeros(n)
        self.leaked = np.zeros(n)
        self.switching = np.zeros(n)

        self._refresh_lane_cache()
        self._refresh_level_cache()
        self._recompute_output()

    @classmethod
    def build(cls, buffers: Sequence[EnergyBuffer]) -> Optional["MorphyBatchKernel"]:
        """A kernel over ``buffers``, or None if they cannot share one."""
        if not all(isinstance(b, MorphyBuffer) and b.can_batch() for b in buffers):
            return None
        if len({b.batch_key() for b in buffers}) != 1:
            return None  # mixed topologies cannot share the masks
        return cls(buffers)  # type: ignore[arg-type]

    def __len__(self) -> int:
        return len(self.buffers)

    # -- caches ------------------------------------------------------------------

    def _refresh_lane_cache(self) -> None:
        """Rebuild the per-lane constants (after construction/compaction)."""
        self._rows = np.arange(len(self.buffers))
        self._unit_col = self._unit[:, None]
        self._half_unit_col = 0.5 * self._unit_col
        self._rated_current_col = self._rated_current[:, None]
        self._rated_voltage_col = self._rated_voltage[:, None]

    def _refresh_level_cache(self) -> None:
        """Rebuild everything derived from the per-lane configuration level.

        Levels move only at a reconfiguring controller poll, so the hot
        paths read these caches instead of re-gathering per step.  Each
        cached product keeps the scalar's left-to-right evaluation prefix
        (``0.5 * C`` for the energy factors, ``group_size * unit`` for the
        charge-split denominator, ``chain_C / C`` for the chain's charge
        share), so downstream expressions stay bit-identical.
        """
        level = self._level
        rows = self._rows
        cap = self._level_cap[rows, level]
        self._cap_now = cap
        self._half_cap_now = 0.5 * cap
        self._max_energy_now = self._half_cap_now * self._vmax * self._vmax
        self._chain_frac_now = self._chain_cap[rows, level] / cap
        self._denom_unit_now = self._chain_denom[level] * self._unit_col
        self._chain_mask_now = self._chain_mask[level]
        self._across_mask_now = self._across_mask[level]
        unique = np.unique(level)
        if len(unique) == 1:
            self._single_level: Optional[int] = int(unique[0])
            self._level_rows: List[Tuple[int, np.ndarray]] = []
        else:
            self._single_level = None
            self._level_rows = [
                (int(lvl), np.nonzero(level == lvl)[0]) for lvl in unique
            ]

    # -- telemetry ---------------------------------------------------------------

    @property
    def voltage(self) -> np.ndarray:
        """Per-lane output voltages (a snapshot: safe to hold across steps)."""
        return self._out

    def _recompute_output(self) -> None:
        """Re-derive the cached output voltage from the cell voltages.

        Mirrors the scalar ``output_voltage`` property: the sum of each
        chain group's first member, added in group order (sequential column
        adds, not a pairwise ``numpy.sum``).  Produces a fresh array so
        snapshots handed out earlier keep their pre-mutation values.
        """
        voltages = self._V
        if self._single_level is not None:
            firsts = self._level_firsts[self._single_level]
            acc = voltages[:, firsts[0]].copy()
            for first in firsts[1:]:
                acc = acc + voltages[:, first]
            self._out = acc
            return
        out = np.empty(len(self.buffers))
        for lvl, rows in self._level_rows:
            firsts = self._level_firsts[lvl]
            acc = voltages[rows, firsts[0]]
            for first in firsts[1:]:
                acc = acc + voltages[rows, first]
            out[rows] = acc
        self._out = out

    def _stored_energy(self) -> np.ndarray:
        """Per-lane stored energy, summed over cells in index order."""
        energy = self._half_unit_col * self._V * self._V
        acc = energy[:, 0]
        for j in range(1, self._cap_count):
            acc = acc + energy[:, j]
        return acc

    # -- energy flow -------------------------------------------------------------

    def post_harvest_voltage_bound(self, energy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`MorphyBuffer.post_harvest_voltage_bound`."""
        voltage = self._out
        usable = energy * self._eta
        headroom = self._max_energy_now - self._half_cap_now * voltage * voltage
        stored = np.minimum(usable, np.maximum(0.0, headroom))
        return np.where(
            energy > 0.0,
            np.sqrt(voltage * voltage + 2.0 * stored / self._cap_now),
            voltage,
        )

    def harvest(self, energy: np.ndarray) -> None:
        """Vectorized :meth:`MorphyBuffer.harvest` for one lockstep step.

        Lanes with zero energy take the scalar early-return path exactly:
        every ledger add degenerates to ``+= 0.0`` and the shift is a
        zero-delta no-op.
        """
        self.offered += energy
        eta = self._eta
        usable = energy * eta
        voltage = self._out
        headroom = self._max_energy_now - self._half_cap_now * voltage * voltage
        capped = np.maximum(0.0, headroom)
        no_clip = usable <= capped
        stored = np.where(no_clip, usable, capped)
        new_output = np.sqrt(voltage * voltage + 2.0 * stored / self._cap_now)
        self._shift_output_voltage(
            np.where(stored > 0.0, new_output - voltage, 0.0)
        )
        self._recompute_output()
        crossing = stored / eta
        self.stored += stored
        self.switching += np.where(no_clip, energy - usable, crossing - stored)
        self.clipped += np.where(no_clip, 0.0, energy - crossing)

    def draw(self, current: np.ndarray, dt: np.ndarray) -> None:
        """Vectorized :meth:`MorphyBuffer.draw` for one lockstep step.

        Assumes positive ``dt`` (the engine's invariant); a zero-current
        lane takes the scalar early-return path exactly.  The output cache
        is *not* refreshed here — :meth:`housekeeping` always follows in
        the same engine step and recomputes it before the next reader.
        """
        active = current > 0.0
        eta = self._eta
        charge = current * dt / eta
        voltage = self._out
        available_charge = self._cap_now * voltage
        charge = np.minimum(charge, available_charge)
        before = self._half_cap_now * voltage * voltage
        new_output = (available_charge - charge) / self._cap_now
        self._shift_output_voltage(np.where(active, new_output - voltage, 0.0))
        removed = before - self._half_cap_now * new_output * new_output
        delivered = removed * eta
        self.switching += np.where(active, removed - delivered, 0.0)
        self.delivered += np.where(active, delivered, 0.0)

    def _shift_output_voltage(self, delta_v: np.ndarray) -> None:
        """Vectorized :meth:`MorphyBuffer._shift_output_voltage`.

        The charge moving through the output splits between the chain and
        the across capacitors in proportion to capacitance; zero-delta
        lanes see an exact no-op (``V + 0.0`` then ``max(0, V)``, both
        identities for the non-negative cell voltages).
        """
        charge = delta_v * self._cap_now
        chain_charge = charge * self._chain_frac_now
        chain_delta = chain_charge[:, None] / self._denom_unit_now
        update = np.where(
            self._chain_mask_now,
            chain_delta,
            np.where(self._across_mask_now, delta_v[:, None], 0.0),
        )
        self._V = np.maximum(0.0, self._V + update)

    # -- housekeeping (leakage + controller poll) --------------------------------

    def housekeeping(self, time: np.ndarray, dt: np.ndarray) -> None:
        """Vectorized :meth:`MorphyBuffer.housekeeping` for one lockstep step."""
        voltages = self._V
        lost_charge = (
            self._rated_current_col
            * (voltages / self._rated_voltage_col)
            * dt[:, None]
        )
        new_voltages = np.maximum(0.0, voltages - lost_charge / self._unit_col)
        half_unit = self._half_unit_col
        drop = (
            half_unit * voltages * voltages
            - half_unit * new_voltages * new_voltages
        )
        acc = drop[:, 0]
        for j in range(1, self._cap_count):
            acc = acc + drop[:, j]
        self.leaked += acc
        self._V = new_voltages
        self._recompute_output()

        due = time >= self._next_poll
        if due.any():
            # Elementwise mirror of :func:`repro.units.next_grid_time`
            # (snap to the poll-period grid, then guard the fp edge where a
            # grid-point quotient floored low would re-poll next step).
            snapped = (np.floor(time / self._period) + 1.0) * self._period
            snapped = np.where(snapped <= time, snapped + self._period, snapped)
            self._next_poll = np.where(due, snapped, self._next_poll)
            out = self._out
            level = self._level
            step_up = due & (out >= self._high) & (level < self._max_level)
            step_down = due & (out <= self._low) & (level > 0)
            moving = step_up | step_down
            if moving.any():
                target = np.where(step_up, level + 1, level - 1)
                for new_level in np.unique(target[moving]):
                    self._reconfigure_rows(
                        moving & (target == new_level), int(new_level)
                    )
                self._refresh_level_cache()
                self._recompute_output()

    def _reconfigure_rows(self, mask: np.ndarray, new_level: int) -> None:
        """Vectorized :meth:`MorphyBuffer.reconfigure` for one target level.

        All lanes in ``mask`` step to the same ``new_level``, so the group
        structure is shared and each equalization phase runs as column
        arithmetic over the masked rows, in the scalar operation order.
        """
        voltages = self._V[mask]
        unit = self._unit[mask]
        half_unit = 0.5 * unit

        def stored_energy() -> np.ndarray:
            acc = half_unit * voltages[:, 0] * voltages[:, 0]
            for j in range(1, self._cap_count):
                acc = acc + half_unit * voltages[:, j] * voltages[:, j]
            return acc

        energy_before = stored_energy()
        groups = self._level_groups[new_level]
        across = self._level_across[new_level]

        # Phase 1: members of each new parallel group equalize.
        for group in groups:
            acc = voltages[:, group[0]]
            for index in group[1:]:
                acc = acc + voltages[:, index]
            mean_voltage = acc / len(group)
            for index in group:
                voltages[:, index] = mean_voltage

        # Phase 2: the chain and every across capacitor equalize at the output.
        chain_capacitance = self._chain_cap[mask, new_level]
        chain_output = voltages[:, groups[0][0]]
        for group in groups[1:]:
            chain_output = chain_output + voltages[:, group[0]]
        across_sum = np.zeros(len(unit))
        for index in across:
            across_sum = across_sum + voltages[:, index]
        numerator = chain_capacitance * chain_output + unit * across_sum
        denominator = chain_capacitance + unit * len(across)
        final_voltage = numerator / denominator
        chain_delta_charge = (final_voltage - chain_output) * chain_capacitance
        for group in groups:
            delta = chain_delta_charge / (len(group) * unit)
            for index in group:
                voltages[:, index] = np.maximum(0.0, voltages[:, index] + delta)
        for index in across:
            voltages[:, index] = final_voltage

        dissipated = np.maximum(0.0, energy_before - stored_energy())
        self.switching[mask] += dissipated
        self._V[mask] = voltages
        self._level[mask] = new_level
        self._reconfigurations[mask] += 1

    # -- retirement --------------------------------------------------------------

    def drained_mask(self, enable_voltage: np.ndarray) -> np.ndarray:
        """Which powered-off lanes can never re-enable without new input.

        Mirrors :meth:`MorphyBuffer.can_reach_voltage`: even reconfigured
        onto the smallest equivalent capacitance, the stored charge cannot
        lift the output to the enable threshold.
        """
        stored = self._stored_energy()
        best_voltage = np.sqrt(2.0 * stored / self._min_cap)
        return (self._out < enable_voltage) & ~(best_voltage >= enable_voltage)

    def compact(self, keep: np.ndarray) -> None:
        """Drop retired lanes from the shared arrays."""
        self.buffers = [b for b, k in zip(self.buffers, keep) if k]
        for name in (
            "_unit", "_eta", "_vmax", "_high", "_low", "_period",
            "_rated_current", "_rated_voltage", "_level_cap", "_chain_cap",
            "_min_cap", "_V", "_level", "_next_poll", "_reconfigurations",
            "offered", "stored", "clipped", "delivered", "leaked",
            "switching", "_out",
        ):
            setattr(self, name, getattr(self, name)[keep])
        self._refresh_lane_cache()
        self._refresh_level_cache()

    def sync_lane(self, index: int) -> None:
        """Refresh lane ``index``'s buffer object so Python code can read it."""
        buffer = self.buffers[index]
        buffer._voltages = self._V[index].tolist()
        buffer.level = int(self._level[index])

    def sync_lanes(self, indices: Sequence[int]) -> None:
        """Refresh every buffer object in ``indices`` in one pass."""
        voltages = self._V[indices].tolist()
        levels = self._level[indices].tolist()
        buffers = self.buffers
        for position, index in enumerate(indices):
            buffer = buffers[index]
            buffer._voltages = voltages[position]
            buffer.level = int(levels[position])

    def finalize_lane(self, index: int) -> MorphyBuffer:
        """Write lane ``index`` back into its buffer object and return it.

        After this the buffer is indistinguishable from one the scalar
        engine advanced to the same timestamp: cell voltages, level, the
        poll schedule, the reconfiguration counter, and the energy ledger
        all carry forward (the scalar tail hand-off resumes from them).
        """
        buffer = self.buffers[index]
        self.sync_lane(index)
        buffer._next_poll_time = float(self._next_poll[index])
        buffer.reconfiguration_count += int(self._reconfigurations[index])
        ledger = buffer.ledger
        ledger.offered += float(self.offered[index])
        ledger.stored += float(self.stored[index])
        ledger.clipped += float(self.clipped[index])
        ledger.delivered += float(self.delivered[index])
        ledger.leaked += float(self.leaked[index])
        ledger.switching_loss += float(self.switching[index])
        return buffer
