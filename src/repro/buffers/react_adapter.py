"""REACT exposed through the common :class:`EnergyBuffer` interface.

:class:`ReactBuffer` glues the hardware fabric model and the software
controller together so the simulator can drive REACT exactly like any
static buffer: harvest, draw, housekeeping.  The adapter is also where
REACT's measured overheads (per-bank quiescent power and the 10 Hz polling
cost) are charged against the system.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional

from repro.buffers.base import EnergyBuffer
from repro.capacitors.leakage import (
    ConstantCurrentLeakage,
    VoltageProportionalLeakage,
)
from repro.core.config import ReactConfig, table1_config
from repro.core.controller import ReactController
from repro.core.hardware import ReactHardware
from repro.units import milliamps


class ReactBuffer(EnergyBuffer):
    """Energy-adaptive buffer built from REACT's reconfigurable bank fabric."""

    supports_longevity = True

    #: The adapter vouches that its harvest/draw/housekeeping hooks are the
    #: exact arithmetic the lockstep kernel mirrors (see
    #: :meth:`~repro.buffers.static.StaticBuffer.batch_key`).
    batch_exact = True

    def __init__(
        self,
        config: Optional[ReactConfig] = None,
        name: str = "REACT",
        active_current_hint: float = milliamps(1.5),
    ) -> None:
        super().__init__()
        self.config = config or table1_config()
        self.hardware = ReactHardware(self.config)
        self.controller = ReactController(self.hardware, self.config)
        self._software_overhead_current = 0.0
        self.name = name
        self.active_current_hint = active_current_hint
        self._leak_baseline = 0.0
        self._transfer_baseline = 0.0
        self._clip_baseline = 0.0

    @property
    def active_current_hint(self) -> float:
        """MCU active current the polling-overhead model assumes."""
        return self._active_current_hint

    @active_current_hint.setter
    def active_current_hint(self, value: float) -> None:
        self._active_current_hint = value
        # The polling overhead for a fixed hint is a constant that the
        # simulator asks for every step; cache it alongside the hint.
        self._software_overhead_current = self.controller.software_overhead_current(
            value
        )

    # -- telemetry ----------------------------------------------------------------

    @property
    def output_voltage(self) -> float:
        return self.hardware.output_voltage

    @property
    def stored_energy(self) -> float:
        return self.hardware.stored_energy

    @property
    def capacitance(self) -> float:
        return self.hardware.equivalent_capacitance

    @property
    def max_capacitance(self) -> float:
        return self.config.maximum_capacitance

    @property
    def capacitance_level(self) -> int:
        """Number of bank expansion steps currently applied."""
        return self.hardware.capacitance_level

    def usable_energy(self) -> float:
        return self.hardware.usable_energy()

    def can_reach_voltage(self, voltage: float) -> bool:
        """The output can only rise (without input) via bank replenishment.

        Charge stranded on banks below the target voltage cannot lift the
        last-level buffer above it, so once the highest bank output falls
        below the enable voltage a powered-off REACT system stays off.
        """
        if self.hardware.output_voltage >= voltage:
            return True
        return any(
            bank.output_voltage > voltage for bank in self.hardware.connected_banks
        )

    def snapshot(self) -> Dict[str, float]:
        snapshot = super().snapshot()
        snapshot["capacitance_level"] = float(self.capacitance_level)
        snapshot["connected_banks"] = float(len(self.hardware.connected_banks))
        return snapshot

    # -- multi-system batching ------------------------------------------------------

    def batch_key(self) -> Optional[Hashable]:
        """Lockstep-compatibility key for the REACT batch kernel.

        Lanes can share one
        :class:`~repro.buffers.react_batch.ReactBatchKernel` when they share
        the full :class:`~repro.core.config.ReactConfig` (bank fabric shape,
        thresholds, poll rate, overhead powers) and the controller's
        expansion rate limit, because the kernel vectorizes per-bank updates
        over a uniform ``(lanes, bank_count)`` array with shared clamp and
        leakage constants.  Requires the class to vouch for its hooks
        (:attr:`batch_exact`), the stock leakage models the kernel
        vectorizes, and history recording to be off (per-step history is a
        scalar-engine feature).
        """
        if not self.batch_exact:
            return None
        if self.controller.record_history:
            return None
        hardware = self.hardware
        if type(hardware.last_level.leakage) is not VoltageProportionalLeakage:
            return None
        for bank in hardware.banks:
            if type(bank.leakage) not in (
                VoltageProportionalLeakage,
                ConstantCurrentLeakage,
            ):
                return None
        return ("react", self.config, self.controller.expansion_min_interval)

    # -- off-phase fast forwarding --------------------------------------------------

    def post_harvest_voltage_bound(self, energy: float) -> float:
        """Upper bound: all harvested energy lands on the last-level buffer.

        The input diodes steer charge to the *lowest*-voltage element, so
        routing any of it to a bank instead of the last-level buffer can
        only reduce the post-harvest output voltage; the all-to-last-level
        case is therefore a true bound.  (Replenishment can also lift the
        output, but it runs in housekeeping, after which the conservative
        generic fast path re-checks the output voltage.)  The base-class
        default would use the *equivalent* capacitance, which understates
        the voltage rise when banks are connected — hence this override.
        """
        if energy <= 0.0:
            return self.output_voltage
        voltage = self.hardware.output_voltage
        capacitance = self.hardware.last_level.capacitance
        return math.sqrt(voltage * voltage + 2.0 * energy / capacitance)

    # -- energy flow ----------------------------------------------------------------

    def harvest(self, energy: float, dt: float) -> float:
        self.ledger.offered += energy
        stored = self.hardware.harvest(energy)
        self.ledger.stored += stored
        clipped_now = self.hardware.energy_clipped - self._clip_baseline
        self._clip_baseline = self.hardware.energy_clipped
        self.ledger.clipped += clipped_now
        return stored

    def draw(self, current: float, dt: float) -> float:
        delivered = self.hardware.draw(current, dt)
        self.ledger.delivered += delivered
        return delivered

    def housekeeping(self, time: float, dt: float, system_on: bool) -> None:
        # Diode-gated replenishment of the last-level buffer is a passive
        # hardware path: it happens whether or not the MCU is awake.
        self.hardware.replenish()
        self.hardware.apply_leakage(dt)
        if system_on:
            # The controller is software on the target MCU, so bank stepping
            # only happens while the platform is powered.
            self.controller.poll(time)
            self.hardware.replenish()
        self._sync_ledger()

    def _sync_ledger(self) -> None:
        leaked_now = self.hardware.energy_leaked - self._leak_baseline
        self._leak_baseline = self.hardware.energy_leaked
        self.ledger.leaked += leaked_now
        transfer_now = self.hardware.transfer_loss - self._transfer_baseline
        self._transfer_baseline = self.hardware.transfer_loss
        self.ledger.switching_loss += transfer_now
        clipped_now = self.hardware.energy_clipped - self._clip_baseline
        self._clip_baseline = self.hardware.energy_clipped
        self.ledger.clipped += clipped_now

    def overhead_current(self, system_on: bool) -> float:
        """REACT's own power cost, expressed as a current on the buffer."""
        voltage = max(self.hardware.output_voltage, self.config.brownout_voltage)
        # Inlined ReactController.hardware_overhead_power (hot path: the
        # simulator evaluates the overhead every step).
        hardware_power = (
            self.config.instrumentation_power
            + len(self.hardware.connected_banks) * self.config.per_bank_overhead_power
        )
        hardware_current = hardware_power / voltage
        if not system_on:
            return hardware_current
        return hardware_current + self._software_overhead_current

    # -- longevity guarantees -----------------------------------------------------------

    def request_longevity(self, energy: float) -> None:
        super().request_longevity(energy)
        self.controller.set_minimum_energy(energy)

    def longevity_satisfied(self) -> bool:
        return self.controller.longevity_satisfied()

    def clear_longevity(self) -> None:
        super().clear_longevity()
        self.controller.clear_minimum_energy()

    # -- lifecycle ------------------------------------------------------------------------

    def reset(self) -> None:
        self.hardware.reset()
        self.controller.reset()
        self._leak_baseline = 0.0
        self._transfer_baseline = 0.0
        self._clip_baseline = 0.0
        self._reset_base()
