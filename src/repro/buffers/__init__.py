"""Energy-buffer architectures evaluated in the paper.

Every buffer implements the same :class:`EnergyBuffer` interface so the
simulator, workloads, and experiment harness treat them interchangeably:

* :class:`StaticBuffer` — a single fixed capacitor (the 770 µF, 10 mF, and
  17 mF baselines).
* :class:`MorphyBuffer` — the fully interconnected switched-capacitor
  network of Yang et al. (SenSys'21), which pays a dissipative
  charge-equalization cost on every reconfiguration.
* :class:`ReactBuffer` — REACT's isolated, reconfigurable capacitor banks
  behind a small last-level buffer (the paper's contribution).
* :class:`CapybaraBuffer` and :class:`DewdropBuffer` — related-work designs
  (§2.3–2.4) provided for extension experiments.
"""

from repro.buffers.base import BufferLedger, EnergyBuffer
from repro.buffers.static import StaticBuffer
from repro.buffers.morphy import MorphyBuffer, MorphyConfigurationTable
from repro.buffers.react_adapter import ReactBuffer
from repro.buffers.capybara import CapybaraBuffer
from repro.buffers.dewdrop import DewdropBuffer

__all__ = [
    "EnergyBuffer",
    "BufferLedger",
    "StaticBuffer",
    "MorphyBuffer",
    "MorphyConfigurationTable",
    "ReactBuffer",
    "CapybaraBuffer",
    "DewdropBuffer",
]
