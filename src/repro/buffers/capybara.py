"""Capybara-style multiplexed static storage (Colin et al., ASPLOS'18).

Capybara provisions a small "base" capacitor for responsive, low-power
operation and one or more larger task capacitors that are pre-charged for
specific high-energy atomic operations.  The design increases capacity
without hurting reactivity, but energy parked on a task capacitor is not
fungible: it cannot serve other work and slowly leaks away if the task
never runs (§2.3 of the REACT paper).

This implementation is provided as a related-work extension (it is not one
of the paper's evaluated baselines) so users can explore the
fungibility-versus-provisioning tradeoff the paper argues motivates REACT.
"""

from __future__ import annotations

import math

from typing import Dict

from repro.buffers.base import EnergyBuffer
from repro.buffers.static import DEFAULT_LEAKAGE_PER_FARAD
from repro.capacitors.capacitor import Capacitor
from repro.capacitors.leakage import VoltageProportionalLeakage
from repro.exceptions import ConfigurationError
from repro.units import capacitor_energy, microfarads, millifarads


class CapybaraBuffer(EnergyBuffer):
    """A base capacitor plus a task capacitor charged opportunistically.

    The base capacitor supplies the platform; surplus harvested energy
    (anything that would overflow the base capacitor) is diverted to the
    task capacitor.  Software may "bank" on the task capacitor by issuing a
    longevity request; the request is satisfied once the task capacitor is
    charged, at which point its energy is dumped onto the base capacitor
    (through a switch, with the usual capacitor-to-capacitor transfer loss).
    """

    supports_longevity = True

    def __init__(
        self,
        base_capacitance: float = microfarads(770.0),
        task_capacitance: float = millifarads(10.0),
        max_voltage: float = 3.6,
        brownout_voltage: float = 1.8,
        name: str = "Capybara",
    ) -> None:
        super().__init__()
        if max_voltage <= brownout_voltage:
            raise ConfigurationError("max voltage must exceed brown-out voltage")
        self.brownout_voltage = brownout_voltage
        self.max_voltage = max_voltage
        self.base = Capacitor(
            capacitance=base_capacitance,
            rated_voltage=max_voltage,
            leakage=VoltageProportionalLeakage(
                rated_current=DEFAULT_LEAKAGE_PER_FARAD * base_capacitance,
                rated_voltage=6.3,
            ),
            name="capybara-base",
        )
        self.task = Capacitor(
            capacitance=task_capacitance,
            rated_voltage=max_voltage,
            leakage=VoltageProportionalLeakage(
                rated_current=DEFAULT_LEAKAGE_PER_FARAD * task_capacitance,
                rated_voltage=6.3,
            ),
            name="capybara-task",
        )
        self.name = name
        self._task_dump_count = 0

    # -- telemetry ----------------------------------------------------------------------

    @property
    def output_voltage(self) -> float:
        return self.base.voltage

    @property
    def stored_energy(self) -> float:
        return self.base.energy + self.task.energy

    @property
    def capacitance(self) -> float:
        return self.base.capacitance

    @property
    def max_capacitance(self) -> float:
        return self.base.capacitance + self.task.capacitance

    def usable_energy(self) -> float:
        floor = capacitor_energy(self.base.capacitance, self.brownout_voltage)
        base_usable = max(0.0, self.base.energy - floor)
        return base_usable + self.task.energy

    def snapshot(self) -> Dict[str, float]:
        snapshot = super().snapshot()
        snapshot["task_voltage"] = self.task.voltage
        return snapshot

    # -- off-phase fast forwarding ------------------------------------------------------

    def post_harvest_voltage_bound(self, energy: float) -> float:
        """Exact bound: harvest charges the base capacitor first.

        Surplus only spills to the task capacitor once the base capacitor
        is at its rated voltage, so the all-onto-base case (which is what
        the base-class default computes, since ``capacitance`` reports the
        base capacitor) is the true post-harvest output voltage up to the
        overvoltage clamp.  Capybara otherwise relies on the conservative
        generic fast path: the task-capacitor dump in housekeeping depends
        only on state that is frozen while the platform is off, so the
        step-replaying fallback reproduces it exactly.
        """
        if energy <= 0.0:
            return self.base.voltage
        new_energy = min(self.base.energy + energy, self.base.max_energy)
        return math.sqrt(2.0 * new_energy / self.base.capacitance)

    # -- energy flow -----------------------------------------------------------------------

    def harvest(self, energy: float, dt: float) -> float:
        self.ledger.offered += energy
        stored = self.base.charge_with_energy(energy)
        spill = energy - stored
        if spill > 0.0:
            stored += self.task.charge_with_energy(spill)
        clipped = energy - stored
        self.ledger.stored += stored
        self.ledger.clipped += clipped
        return stored

    def draw(self, current: float, dt: float) -> float:
        delivered = self.base.discharge_current(current, dt)
        self.ledger.delivered += delivered
        return delivered

    def housekeeping(self, time: float, dt: float, system_on: bool) -> None:
        self.ledger.leaked += self.base.apply_leakage(dt)
        self.ledger.leaked += self.task.apply_leakage(dt)
        # When a longevity request is pending and the task capacitor can
        # satisfy it, dump the banked energy onto the base capacitor.
        if (
            self.longevity_request > 0.0
            and self.task.energy >= self.longevity_request
            and self.base.voltage < self.task.voltage
        ):
            self._dump_task_capacitor()

    def _dump_task_capacitor(self) -> None:
        """Connect the charged task capacitor across the base capacitor."""
        total_charge = self.base.charge + self.task.charge
        total_capacitance = self.base.capacitance + self.task.capacitance
        final_voltage = min(total_charge / total_capacitance, self.max_voltage)
        before = self.base.energy + self.task.energy
        self.base.set_voltage(final_voltage)
        self.task.set_voltage(final_voltage)
        after = self.base.energy + self.task.energy
        self.ledger.switching_loss += max(0.0, before - after)
        self._task_dump_count += 1

    # -- longevity -------------------------------------------------------------------------------

    def longevity_satisfied(self) -> bool:
        return self.usable_energy() >= self.longevity_request

    # -- lifecycle --------------------------------------------------------------------------------

    def reset(self) -> None:
        self.base.reset()
        self.task.reset()
        self._task_dump_count = 0
        self._reset_base()
