"""Pluggable execution backends for grid sweeps.

The experiments layer separates *what to run* from *how to run it*: the
:class:`~repro.experiments.runner.ExperimentRunner` describes a grid as a
list of picklable :class:`RunSpec`\\ s (in the canonical serial iteration
order) and hands it to an :class:`ExecutionBackend`, which returns one
:class:`~repro.sim.results.SimulationResult` per spec *in spec order* no
matter how execution is scheduled.  Four backends ship in-tree:

``serial``
    One scalar simulation at a time, in-process.
``pool``
    Fans specs over a :class:`~concurrent.futures.ProcessPoolExecutor`;
    each worker rebuilds its cell from the spec.
``batch``
    Packs each trace's batchable specs into vectorized
    :class:`~repro.sim.batch.BatchSimulator` lockstep runs — one per
    lockstep kernel (static lanes together, each Morphy topology
    together); the rest fall back to the scalar engine, lane by lane.
``pool+batch``
    Composes both: each (trace, kernel) lane group is partitioned into
    shards, each worker process runs a :class:`BatchSimulator` over its
    shard, and unbatchable cells ride the same pool as scalar jobs — the
    process-pool speedup multiplied by the lockstep speedup.

Backends are looked up by name in a string-keyed registry
(:func:`register_backend` / :func:`resolve_backend`), so a new execution
strategy plugs in without touching the runner: register a factory under a
new name and ``--backend <name>`` reaches it.  On top of the plain names
sits a *composable prefix* mechanism (:func:`register_backend_prefix`):
a prefix like ``cached:`` or ``remote:`` declares a wrapper that resolves
``<prefix><inner>`` names by delegating to the inner backend — the
memoizing :class:`~repro.experiments.store.CachedBackend` for ``cached:``
and the coordinator/worker transport
:class:`~repro.experiments.remote.RemoteBackend` for ``remote:`` — and
declares which other prefixes it may wrap, so ``cached:remote:serial``
resolves (a store in front of the remote transport) while
``remote:remote:serial`` is rejected with the registry listing.

Grouping metadata travels on the specs themselves: ``RunSpec.trace_name``
(together with the spec's settings, which fix the trace's fidelity) is the
lane-grouping key — every spec mapping to the same key replays the same
power trace and may share one lockstep batch, subject to the buffers'
kernel compatibility
(:meth:`~repro.buffers.base.EnergyBuffer.batch_key`).  :func:`trace_groups`
derives the trace grouping and :func:`partition_batchable` refines it into
the per-kernel lane groups any batch-style backend needs.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.buffers.base import EnergyBuffer
from repro.exceptions import ConfigurationError
from repro.experiments.runner import (
    ExperimentRunner,
    ExperimentSettings,
    make_workload,
    standard_buffers,
)
from repro.harvester.trace import PowerTrace
from repro.platform.mcu import MSP430FR5994
from repro.sim.batch import DEFAULT_SCALAR_TAIL_LANES, BatchSimulator
from repro.sim.results import SimulationResult
from repro.sim.system import BatterylessSystem

#: Callback fired once per result, in spec order.
ProgressCallback = Callable[[SimulationResult], None]

#: Grouping key for lane-sharing: specs with equal keys replay one trace.
#: The first element is the settings' canonical fingerprint (a string, see
#: :func:`repro.experiments.store.settings_fingerprint`) rather than the
#: settings object itself, so grouping and caching share one identity and
#: settings subclasses with unhashable fields still group.
GroupKey = Tuple[str, str]

#: Name prefix selecting the memoizing store wrapper: ``cached:<inner>``.
CACHED_PREFIX = "cached:"

#: Name prefix selecting the coordinator/worker transport: ``remote:<inner>``.
REMOTE_PREFIX = "remote:"


@dataclass(frozen=True)
class RunSpec:
    """Everything a backend needs to reconstruct one grid cell.

    A mid-flight :class:`~repro.sim.system.BatterylessSystem` is not
    picklable (open numpy views, bound controller state, cyclic workload
    references), so backends never ship systems — they ship specs, and the
    executing side rebuilds trace, buffer, and workload from scratch.
    Construction is deterministic (the spec carries the experiment seed,
    every workload embeds its own fixed seed), so any backend returns
    bit-comparable results to any other, in the same order.

    ``buffer_factory`` must be a picklable (module-level) callable; the
    buffer is identified by its *index* in the factory's list so executors
    always build a fresh instance rather than sharing state through the
    pickle.
    """

    workload: str
    trace_name: str
    buffer_index: int
    settings: ExperimentSettings
    buffer_factory: Callable[[], List[EnergyBuffer]] = standard_buffers

    @property
    def group_key(self) -> GroupKey:
        """The lane-grouping key: specs with equal keys share a trace."""
        # Imported lazily: store.py imports this module at the top level.
        from repro.experiments.store import settings_fingerprint

        return (settings_fingerprint(self.settings), self.trace_name)

    def build_buffer(self) -> EnergyBuffer:
        """A fresh buffer instance for this cell."""
        return self.buffer_factory()[self.buffer_index]


@runtime_checkable
class ExecutionBackend(Protocol):
    """How a grid of :class:`RunSpec`\\ s gets executed.

    Implementations receive the grid in canonical order and must return one
    result per spec in that same order, regardless of internal scheduling.
    ``progress`` fires once per result in spec order — immediately for
    backends that complete cells one at a time, or after the grid finishes
    for backends whose cells complete interleaved (lockstep batches).
    """

    #: Registry-facing identity, e.g. ``"pool+batch"``.
    name: str

    def run_specs(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[ProgressCallback] = None,
    ) -> List[SimulationResult]:
        """Execute every spec; results in spec order."""
        ...


def execute_run_spec(
    spec: RunSpec,
    trace: Optional[PowerTrace] = None,
    buffer: Optional[EnergyBuffer] = None,
) -> SimulationResult:
    """Build and simulate one grid cell through the scalar engine.

    The process-pool work function; ``trace`` and ``buffer`` let in-process
    callers reuse an already-generated trace or an already-constructed
    (fresh) buffer instance — construction is deterministic, so passing
    them is purely an optimization.
    """
    settings = spec.settings
    if trace is None:
        trace = settings.trace(spec.trace_name)
    if buffer is None:
        buffer = spec.build_buffer()
    runner = ExperimentRunner(settings, buffer_factory=spec.buffer_factory)
    return runner.run_single(
        trace, buffer, make_workload(spec.workload, spec.trace_name)
    )


def trace_groups(specs: Sequence[RunSpec]) -> Dict[GroupKey, List[int]]:
    """Spec indices grouped by shared power trace, preserving spec order.

    This is the grouping metadata batch-style backends key on: all specs in
    one group replay the same trace at the same fidelity and may be packed
    into a single lockstep batch.
    """
    groups: Dict[GroupKey, List[int]] = {}
    for index, spec in enumerate(specs):
        groups.setdefault(spec.group_key, []).append(index)
    return groups


class _BufferSupply:
    """Fresh buffer instances, amortizing factory calls across lanes.

    One ``buffer_factory()`` call yields a fresh instance of *every* buffer
    index, so a group of specs needing many (workload × index) lanes draws
    instances index-by-index from stacked factory outputs instead of
    building the full list once per lane: the factory runs as many times as
    the highest per-index demand (the workload count, for grid-shaped
    groups), not once per lane.  ``batch_key`` values are per-index
    configuration, identical across instances, so one factory output
    answers them for every spec sharing the factory.
    """

    def __init__(self, factory: Callable[[], List[EnergyBuffer]]) -> None:
        self._factory = factory
        self._stacks: Dict[int, List[EnergyBuffer]] = {}
        self._batch_keys: Optional[List[Optional[Hashable]]] = None

    def _replenish(self) -> None:
        fresh = self._factory()
        if self._batch_keys is None:
            self._batch_keys = [buffer.batch_key() for buffer in fresh]
        for index, buffer in enumerate(fresh):
            self._stacks.setdefault(index, []).append(buffer)

    def batch_key(self, index: int) -> Optional[Hashable]:
        if self._batch_keys is None:
            self._replenish()
        return self._batch_keys[index]

    def take(self, index: int) -> EnergyBuffer:
        """A fresh, never-used buffer instance for ``index``."""
        if not self._stacks.get(index):
            self._replenish()
        return self._stacks[index].pop()


def _supply_for(
    supplies: Dict[Callable[[], List[EnergyBuffer]], _BufferSupply], spec: RunSpec
) -> _BufferSupply:
    supply = supplies.get(spec.buffer_factory)
    if supply is None:
        supply = supplies[spec.buffer_factory] = _BufferSupply(spec.buffer_factory)
    return supply


def partition_batchable(
    specs: Sequence[RunSpec],
    supplies: Optional[Dict[Callable[[], List[EnergyBuffer]], _BufferSupply]] = None,
) -> Tuple[List[List[int]], List[int]]:
    """Spec indices split into batchable lane groups and the rest.

    The single source of truth both batch-style backends partition with, so
    they can never disagree on which cells batch.  Within each trace group,
    specs are further keyed on their buffer's
    :meth:`~repro.buffers.base.EnergyBuffer.batch_key` — a lockstep batch
    needs one kernel over every lane, so static-kernel lanes and (per
    topology) Morphy-kernel lanes form separate groups.  Returns
    ``(lane_groups, singles)``: one index list per (trace, kernel) group
    (spec order preserved), plus every unbatchable spec.  Pass ``supplies``
    to keep drawing lane buffers from the same factory outputs used for the
    ``batch_key`` checks.
    """
    if supplies is None:
        supplies = {}
    lane_groups: List[List[int]] = []
    singles: List[int] = []
    for indices in trace_groups(specs).values():
        by_kernel: Dict[Hashable, List[int]] = {}
        for i in indices:
            key = _supply_for(supplies, specs[i]).batch_key(specs[i].buffer_index)
            if key is None:
                singles.append(i)
            else:
                by_kernel.setdefault(key, []).append(i)
        lane_groups.extend(by_kernel.values())
    return lane_groups, singles


def _split_evenly(items: List[int], chunks: int) -> List[List[int]]:
    """``items`` in ``chunks`` contiguous, near-equal runs (order kept)."""
    chunks = max(1, min(chunks, len(items)))
    base, extra = divmod(len(items), chunks)
    out: List[List[int]] = []
    start = 0
    for position in range(chunks):
        size = base + (1 if position < extra else 0)
        out.append(items[start : start + size])
        start += size
    return out


@dataclass
class SerialBackend:
    """One scalar simulation at a time, in-process, in spec order."""

    name = "serial"

    def run_specs(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[ProgressCallback] = None,
    ) -> List[SimulationResult]:
        results: List[SimulationResult] = []
        traces: Dict[GroupKey, PowerTrace] = {}
        supplies: Dict[Callable[[], List[EnergyBuffer]], _BufferSupply] = {}
        for spec in specs:
            trace = traces.get(spec.group_key)
            if trace is None:
                trace = traces[spec.group_key] = spec.settings.trace(spec.trace_name)
            buffer = _supply_for(supplies, spec).take(spec.buffer_index)
            result = execute_run_spec(spec, trace=trace, buffer=buffer)
            results.append(result)
            if progress is not None:
                progress(result)
        return results


@dataclass
class ProcessPoolBackend:
    """Fans independent specs over a process pool.

    ``workers=1`` (or a single-spec grid) degrades to the serial backend
    without constructing a pool.  Results are collected in submission order
    — identical to spec order — so out-of-order worker completion never
    shows; ``progress`` fires in that same deterministic order as each
    result is collected.
    """

    workers: int = 2
    name = "pool"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be at least 1, got {self.workers}")

    def run_specs(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[ProgressCallback] = None,
    ) -> List[SimulationResult]:
        specs = list(specs)
        if self.workers <= 1 or len(specs) <= 1:
            return SerialBackend().run_specs(specs, progress)
        results: List[SimulationResult] = []
        with ProcessPoolExecutor(max_workers=min(self.workers, len(specs))) as pool:
            futures = [pool.submit(execute_run_spec, spec) for spec in specs]
            for future in futures:
                result = future.result()
                results.append(result)
                if progress is not None:
                    progress(result)
        return results


@dataclass
class BatchBackend:
    """Vectorized lockstep execution of trace-sharing specs.

    Every group of batchable specs that shares a trace becomes one
    :class:`~repro.sim.batch.BatchSimulator` run; specs whose buffer has no
    batched kernel (:meth:`~repro.buffers.base.EnergyBuffer.can_batch` is
    False) and groups narrower than ``min_lanes`` run through the scalar
    engine instead, so a mixed grid still returns exactly the serial
    backend's results in spec order.  ``min_lanes`` guards against
    degenerate batches the simulator would immediately hand to its scalar
    tail anyway — hence the default of one more than the tail width.

    ``progress`` fires in spec order, but only after the whole grid has
    been computed (lanes finish interleaved inside a batch, so there is no
    meaningful earlier moment per cell).
    """

    min_lanes: int = DEFAULT_SCALAR_TAIL_LANES + 1
    name = "batch"

    def run_specs(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[ProgressCallback] = None,
    ) -> List[SimulationResult]:
        specs = list(specs)
        computed: List[Optional[SimulationResult]] = [None] * len(specs)
        traces: Dict[GroupKey, PowerTrace] = {}
        supplies: Dict[Callable[[], List[EnergyBuffer]], _BufferSupply] = {}
        lane_groups, _ = partition_batchable(specs, supplies)
        for group in lane_groups:
            if len(group) < self.min_lanes:
                continue  # the sweep below runs these cells scalar
            first = specs[group[0]]
            settings = first.settings
            trace = traces.get(first.group_key)
            if trace is None:
                trace = traces[first.group_key] = settings.trace(first.trace_name)
            lane_systems = [
                BatterylessSystem.build(
                    trace,
                    _supply_for(supplies, specs[index]).take(specs[index].buffer_index),
                    make_workload(specs[index].workload, specs[index].trace_name),
                    mcu=MSP430FR5994(),
                )
                for index in group
            ]
            simulator = BatchSimulator.from_settings(lane_systems, settings)
            for index, result in zip(group, simulator.run()):
                computed[index] = result

        results: List[SimulationResult] = []
        for index, spec in enumerate(specs):
            result = computed[index]
            if result is None:
                trace = traces.get(spec.group_key)
                if trace is None:
                    trace = traces[spec.group_key] = spec.settings.trace(
                        spec.trace_name
                    )
                buffer = _supply_for(supplies, spec).take(spec.buffer_index)
                result = execute_run_spec(spec, trace=trace, buffer=buffer)
            results.append(result)
            if progress is not None:
                progress(result)
        return results


def execute_spec_shard(
    specs: Sequence[RunSpec], min_lanes: int
) -> List[SimulationResult]:
    """Run one lane shard inside a worker (the pool+batch work function)."""
    return BatchBackend(min_lanes=min_lanes).run_specs(specs)


@dataclass
class PoolBatchBackend:
    """Process-pool fan-out with a lockstep batch inside each worker.

    The composition of :class:`ProcessPoolBackend` and
    :class:`BatchBackend`: batchable specs are grouped by shared trace,
    each group is split into contiguous shards (so every worker gets a wide
    lane block rather than single cells), and each shard runs one
    :class:`~repro.sim.batch.BatchSimulator` in its worker process.
    Unbatchable specs (REACT is the only paper-grid buffer without a
    lockstep kernel; the Capybara extension also lacks one) ride the same
    pool as individual scalar jobs — which the plain batch backend runs
    serially — so this backend stacks both speedups and also parallelizes
    the scalar remainder.

    Shards are contiguous slices of one (trace, kernel) lane group and
    never mix groups: every lane in a shard shares the trace, the timestep
    pair, and the lockstep kernel family, which is exactly what the
    segment planner assumes when it fast-forwards a shard's lanes through
    whole-segment kernel replays.  Lane arithmetic — stepped or replayed —
    is elementwise and bit-exact, so a lane's counters are independent of
    which shard it lands in; sharding changes throughput, never results.
    (Throughput *can* depend on shard membership: a kernel with
    ``fast_forward_needs_full_batch`` only skips a segment when every lane
    in its shard agrees on the plan, so narrower shards skip more often
    but amortize less per step.)
    """

    workers: int = 2
    min_lanes: int = DEFAULT_SCALAR_TAIL_LANES + 1
    name = "pool+batch"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be at least 1, got {self.workers}")

    def run_specs(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[ProgressCallback] = None,
    ) -> List[SimulationResult]:
        specs = list(specs)
        if self.workers <= 1 or len(specs) <= 1:
            return BatchBackend(min_lanes=self.min_lanes).run_specs(specs, progress)

        lane_groups, singles = partition_batchable(specs)
        # Groups too narrow to ever batch (below min_lanes) would just run
        # scalar — and serially — inside one worker's shard; fanning them
        # over the pool as independent scalar jobs parallelizes them
        # instead (they are often the heaviest cells).
        wide_groups: List[List[int]] = []
        for group in lane_groups:
            if len(group) >= self.min_lanes:
                wide_groups.append(group)
            else:
                singles.extend(group)

        # Split each lane group so the shard count reaches the pool
        # width, but never below min_lanes per shard (a narrower shard
        # would just run scalar inside the worker).
        shards: List[List[int]] = []
        chunks_per_group = max(1, self.workers // max(1, len(wide_groups)))
        for group in wide_groups:
            chunks = min(chunks_per_group, max(1, len(group) // self.min_lanes))
            shards.extend(_split_evenly(group, chunks))

        computed: List[Optional[SimulationResult]] = [None] * len(specs)
        job_count = len(shards) + len(singles)
        with ProcessPoolExecutor(max_workers=min(self.workers, job_count)) as pool:
            shard_futures = [
                (indices, pool.submit(
                    execute_spec_shard, [specs[i] for i in indices], self.min_lanes
                ))
                for indices in shards
            ]
            single_futures = [
                (index, pool.submit(execute_run_spec, specs[index]))
                for index in singles
            ]
            for indices, future in shard_futures:
                for index, result in zip(indices, future.result()):
                    computed[index] = result
            for index, future in single_futures:
                computed[index] = future.result()

        results: List[SimulationResult] = []
        for result in computed:
            assert result is not None  # every spec is in a shard or singles
            results.append(result)
            if progress is not None:
                progress(result)
        return results


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

#: A factory builds a backend from the sweep's settings (pool widths etc.).
BackendFactory = Callable[[ExperimentSettings], ExecutionBackend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(
    name: str,
    factory: Optional[BackendFactory] = None,
    *,
    replace: bool = False,
):
    """Register ``factory`` under ``name`` (usable as a decorator).

    This is the extension point for out-of-tree execution strategies: a
    remote/sharded dispatch backend registers a factory here and becomes
    reachable through ``--backend <name>`` and
    :attr:`ExperimentSettings.backend` without any runner changes.
    """
    if factory is None:
        return lambda wrapped: register_backend(name, wrapped, replace=replace)
    if not replace and name in _REGISTRY:
        raise ConfigurationError(
            f"execution backend {name!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[name] = factory
    return factory


def unregister_backend(name: str) -> None:
    """Remove ``name`` from the registry (no-op if absent)."""
    _REGISTRY.pop(name, None)


# Composable prefixes: a prefix is a wrapper convention over inner backend
# names — ``<prefix><inner>`` resolves by delegating to ``<inner>``.  Each
# prefix declares which *other* prefixes it may wrap, so the valid
# compositions form a DAG (``cached:remote:serial`` resolves, while
# ``remote:remote:serial`` and ``cached:cached:serial`` are rejected).

#: A prefix resolver receives the *full* composed name and the settings.
PrefixResolver = Callable[[str, ExperimentSettings], "ExecutionBackend"]


@dataclass(frozen=True)
class BackendPrefix:
    """One composable name prefix: how ``<prefix><inner>`` names resolve.

    ``nests`` lists the prefixes allowed at the head of the inner name;
    a plain registered backend name is always an acceptable inner.
    """

    prefix: str
    resolver: PrefixResolver
    nests: Tuple[str, ...] = ()


_PREFIX_REGISTRY: Dict[str, BackendPrefix] = {}


def register_backend_prefix(
    prefix: str,
    resolver: Optional[PrefixResolver] = None,
    *,
    nests: Sequence[str] = (),
    replace: bool = False,
):
    """Register a composable name prefix (usable as a decorator).

    The mechanism behind ``cached:`` and ``remote:``: any backend name
    starting with ``prefix`` (and not explicitly registered in full)
    resolves through ``resolver``, which receives the full name and the
    sweep settings and typically resolves the inner name recursively.
    ``nests`` names the prefixes the wrapper composes over — an inner name
    headed by any *other* prefix is rejected before the resolver runs.
    """
    if resolver is None:
        return lambda wrapped: register_backend_prefix(
            prefix, wrapped, nests=nests, replace=replace
        )
    if not prefix.endswith(":"):
        raise ConfigurationError(
            f"backend prefix {prefix!r} must end with ':' (e.g. 'cached:')"
        )
    if not replace and prefix in _PREFIX_REGISTRY:
        raise ConfigurationError(
            f"backend prefix {prefix!r} is already registered "
            "(pass replace=True to override)"
        )
    _PREFIX_REGISTRY[prefix] = BackendPrefix(prefix, resolver, tuple(nests))
    return resolver


def unregister_backend_prefix(prefix: str) -> None:
    """Remove ``prefix`` from the prefix registry (no-op if absent)."""
    _PREFIX_REGISTRY.pop(prefix, None)


def backend_name_prefix(name: str) -> Optional[BackendPrefix]:
    """The registered prefix heading ``name``, if any (longest match)."""
    best: Optional[BackendPrefix] = None
    for prefix, spec in _PREFIX_REGISTRY.items():
        if name.startswith(prefix) and (best is None or len(prefix) > len(best.prefix)):
            best = spec
    return best


def split_backend_name(name: str) -> Tuple[Optional[BackendPrefix], str]:
    """``name`` split into its heading prefix (or ``None``) and the rest."""
    spec = backend_name_prefix(name)
    if spec is None:
        return None, name
    return spec, name[len(spec.prefix) :]


def available_backends() -> Tuple[str, ...]:
    """Every reachable backend name, sorted.

    Alongside the explicitly registered names, every registered prefix
    contributes its implicit composed variants: ``<prefix><inner>`` for
    each plain backend name and for each already-listed name headed by a
    prefix the wrapper declares it nests over — so the listing contains
    ``cached:serial``, ``remote:serial``, *and* ``cached:remote:serial``,
    but never an invalid composition like ``remote:remote:serial``.
    """
    names = set(_REGISTRY)
    plain = {name for name in _REGISTRY if backend_name_prefix(name) is None}
    # Grow to a fixpoint: the nests relation is a DAG over finitely many
    # prefixes, so each prefix is applied at most once per composition and
    # the closure is finite.
    changed = True
    while changed:
        changed = False
        for spec in _PREFIX_REGISTRY.values():
            inners = set(plain)
            for name in names:
                heading = backend_name_prefix(name)
                if heading is not None and heading.prefix in spec.nests:
                    inners.add(name)
            for inner in inners:
                composed = spec.prefix + inner
                if composed not in names:
                    names.add(composed)
                    changed = True
    return tuple(sorted(names))


def resolve_backend(
    name: str, settings: Optional[ExperimentSettings] = None
) -> ExecutionBackend:
    """Build the backend registered under ``name`` for ``settings``.

    Prefixed names without an explicit registration resolve through the
    prefix registry — ``cached:<inner>`` to a
    :class:`~repro.experiments.store.CachedBackend` and ``remote:<inner>``
    to a :class:`~repro.experiments.remote.RemoteBackend`, composable as
    ``cached:remote:<inner>`` — while an explicit registration under the
    full name always wins.
    """
    if settings is None:
        settings = ExperimentSettings()
    factory = _REGISTRY.get(name)
    if factory is not None:
        return factory(settings)
    spec, inner = split_backend_name(name)
    if spec is not None:
        inner_spec = backend_name_prefix(inner)
        if not inner or (
            inner_spec is not None and inner_spec.prefix not in spec.nests
        ):
            raise ConfigurationError(
                f"invalid backend name {name!r}: expected {spec.prefix}<inner> "
                f"where <inner> is a plain backend"
                + (
                    f" or one headed by {', '.join(spec.nests)}"
                    if spec.nests
                    else ""
                )
                + f", not {inner!r}; registered backends: "
                + ", ".join(available_backends())
            )
        return spec.resolver(name, settings)
    raise ConfigurationError(
        f"unknown execution backend {name!r}; registered backends: "
        + ", ".join(available_backends())
    )


def _pool_width(settings: ExperimentSettings) -> int:
    """Worker count for pool-style backends: ``--workers``, else the host.

    An explicit ``workers`` value is honored as given — ``--workers 1``
    deliberately throttles to a single (in-process) worker; only an unset
    value defaults to the host's core count.
    """
    if settings.workers is not None:
        return settings.workers
    return os.cpu_count() or 2


register_backend("serial", lambda settings: SerialBackend())
register_backend(
    "pool", lambda settings: ProcessPoolBackend(workers=_pool_width(settings))
)
register_backend("batch", lambda settings: BatchBackend())
register_backend(
    "pool+batch",
    lambda settings: PoolBatchBackend(workers=_pool_width(settings)),
)


def _resolve_cached(name: str, settings: ExperimentSettings) -> ExecutionBackend:
    # Imported lazily: store.py imports this module at the top level.
    from repro.experiments.store import cached_backend_from_settings

    return cached_backend_from_settings(name, settings)


def _resolve_remote(name: str, settings: ExperimentSettings) -> ExecutionBackend:
    # Imported lazily: the remote subpackage imports this module.
    from repro.experiments.remote import remote_backend_from_settings

    return remote_backend_from_settings(name, settings)


# The coordinator dispatches to workers that resolve the inner name
# themselves, so ``remote:`` wraps only plain backends; the store wrapper
# composes over the transport (``cached:remote:serial`` checks the store
# before any worker is ever spawned).
register_backend_prefix(REMOTE_PREFIX, _resolve_remote)
register_backend_prefix(CACHED_PREFIX, _resolve_cached, nests=(REMOTE_PREFIX,))
