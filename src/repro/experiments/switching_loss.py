"""§3.3.1 / §3.3.4 analysis — switching loss and charge reclamation.

Two analytic results drive REACT's design:

* a fully interconnected network dissipates a fixed fraction of its stored
  energy when reconfigured (25 % for the 4-capacitor example of Figure 5,
  56.25 % for an 8-capacitor array leaving full parallel), and
* REACT's parallel→series reclamation reduces stranded energy by ``N²``.

This experiment computes both from the circuit model (not from the closed
forms) and compares them against the paper's closed-form numbers, which
doubles as an end-to-end validation of the charge-redistribution math used
everywhere else in the library.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.formatting import format_table
from repro.buffers.morphy import MorphyBuffer, MorphyConfiguration
from repro.core.reclamation import (
    reclamation_gain_factor,
    stranded_energy_with_reclamation,
    stranded_energy_without_reclamation,
)
from repro.experiments.runner import ExperimentSettings
from repro.units import millifarads


def ladder_reconfiguration_loss(cap_count: int, voltage: float = 1.0) -> float:
    """Fraction of stored energy lost leaving the full-parallel configuration.

    Builds a Morphy array whose two configurations are "all parallel" and
    "(N-1)-series chain + 1 across the output", charges it in parallel, and
    measures the dissipation of the reconfiguration step with the generic
    circuit model.
    """
    configurations = (
        MorphyConfiguration(groups=(1,) * (cap_count - 1), across=1),
        MorphyConfiguration(groups=(cap_count,)),
    )
    buffer = MorphyBuffer(
        cap_count=cap_count,
        unit_capacitance=millifarads(1.0),
        configurations=configurations,
        max_voltage=10.0 * cap_count,
        high_threshold=9.0 * cap_count,
        low_threshold=0.5,
        brownout_voltage=0.4,
    )
    buffer.set_state(buffer.table.max_level, [voltage] * cap_count)  # full parallel
    before = buffer.stored_energy
    dissipated = buffer.reconfigure(buffer.table.max_level - 1)
    return dissipated / before if before > 0.0 else 0.0


def run(settings: Optional[ExperimentSettings] = None, verbose: bool = True) -> Dict:
    """Regenerate the switching-loss and reclamation analysis."""
    settings = settings or ExperimentSettings()

    loss_rows = []
    for cap_count, paper_value in ((4, 0.25), (8, 0.5625)):
        measured = ladder_reconfiguration_loss(cap_count)
        loss_rows.append(
            {
                "array_size": cap_count,
                "paper_loss_fraction": paper_value,
                "model_loss_fraction": round(measured, 4),
            }
        )

    reclamation_rows = []
    low_voltage = 2.0
    for cell_count, unit_uF in ((3, 220.0), (3, 880.0), (2, 5000.0)):
        unit = unit_uF * 1e-6
        without = stranded_energy_without_reclamation(cell_count, unit, low_voltage)
        with_reclamation = stranded_energy_with_reclamation(
            cell_count, unit, low_voltage
        )
        reclamation_rows.append(
            {
                "cells": cell_count,
                "unit_uF": unit_uF,
                "stranded_no_reclaim_mJ": round(without * 1e3, 3),
                "stranded_with_reclaim_mJ": round(with_reclamation * 1e3, 3),
                "gain_factor": round(without / with_reclamation, 2),
                "expected_gain_N^2": reclamation_gain_factor(cell_count),
            }
        )

    output = "\n\n".join(
        [
            format_table(
                loss_rows,
                title="S3.3.1 — energy dissipated leaving the full-parallel configuration",
            ),
            format_table(
                reclamation_rows,
                title="S3.3.4 — stranded energy with and without charge reclamation",
            ),
        ]
    )
    if verbose:
        print(output)
    return {
        "loss_rows": loss_rows,
        "reclamation_rows": reclamation_rows,
        "formatted": output,
    }


if __name__ == "__main__":  # pragma: no cover - manual invocation
    run()
