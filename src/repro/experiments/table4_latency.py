"""Table 4 — system latency (time to first operation) across traces and buffers.

Charge time is software-invariant, so the latency table is generated from a
single low-cost workload per (trace, buffer) pair.  The paper's headline:
REACT matches the smallest static buffer (an average 7.7× faster than the
equal-capacity static buffer), Morphy is slightly faster still thanks to
its smaller minimum configuration, and the 17 mF buffer never starts on the
RF Obstruction trace.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.aggregate import matrix_from_results, mean_over_traces
from repro.analysis.formatting import format_matrix
from repro.experiments.runner import ExperimentSettings
from repro.experiments import sweep


def run(settings: Optional[ExperimentSettings] = None, verbose: bool = True) -> Dict:
    """Regenerate Table 4; returns the latency matrix in seconds."""
    settings = settings or ExperimentSettings()
    # Latency is workload-invariant; SC is the cheapest workload to simulate.
    results = sweep(workloads=("SC",), settings=settings).results
    matrix = matrix_from_results(results, value="latency")
    means = mean_over_traces(matrix)
    matrix["Mean"] = means

    ratios = {}
    if means.get("REACT") and means.get("17 mF"):
        ratios["17 mF / REACT"] = means["17 mF"] / means["REACT"]
    if means.get("REACT") and means.get("770 uF"):
        ratios["REACT / 770 uF"] = means["REACT"] / means["770 uF"]

    output = format_matrix(
        matrix, row_label="trace", title="Table 4 — system latency (s)"
    )
    if ratios:
        ratio_lines = "\n".join(f"{key}: {value:.2f}x" for key, value in ratios.items())
        output = output + "\n\n" + ratio_lines
    if verbose:
        print(output)
    return {"results": results, "matrix": matrix, "ratios": ratios, "formatted": output}


if __name__ == "__main__":  # pragma: no cover - manual invocation
    run()
