"""§5.1 — REACT's software and power overhead characterization.

The paper measures two overheads on the DE benchmark:

* running the controller's 10 Hz polling alongside software-heavy code
  costs about 1.8 % of throughput, and
* the REACT hardware draws roughly 68 µW (≈14 µW per bank) compared to a
  bare static buffer.

This experiment reproduces both: the polling penalty analytically from the
configuration and empirically by comparing DE throughput on continuous
power with and without the controller, and the power overhead from the
adapter's overhead-current model at full expansion.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analysis.formatting import format_table
from repro.buffers.react_adapter import ReactBuffer
from repro.buffers.static import StaticBuffer
from repro.core.config import table1_config
from repro.experiments.runner import ExperimentRunner, ExperimentSettings
from repro.harvester.trace import PowerTrace
from repro.units import microfarads, milliamps
from repro.workloads.data_encryption import DataEncryption


def _continuous_power_trace(duration: float, power: float = 20e-3) -> PowerTrace:
    """A flat, generous supply approximating bench power for the overhead test."""
    samples = np.full(int(duration), power)
    return PowerTrace(samples, sample_period=1.0, name="Continuous")


def run(settings: Optional[ExperimentSettings] = None, verbose: bool = True) -> Dict:
    """Regenerate the §5.1 overhead characterization."""
    settings = settings or ExperimentSettings()
    runner = ExperimentRunner(settings)
    duration = 120.0 if settings.quick else 300.0
    trace = _continuous_power_trace(duration)
    config = table1_config()

    # Software overhead: DE throughput with and without the polling cost.
    # The drain phase is disabled so the comparison covers the same wall
    # clock for both systems (otherwise REACT's banked energy would let it
    # keep encrypting after the bench supply is removed).
    def run_without_drain(buffer):
        from repro.platform.mcu import MSP430FR5994
        from repro.sim.engine import Simulator
        from repro.sim.system import BatterylessSystem

        system = BatterylessSystem.build(
            trace, buffer, DataEncryption(), mcu=MSP430FR5994()
        )
        return Simulator(
            system,
            dt_on=settings.effective_dt_on,
            dt_off=settings.effective_dt_off,
            drain_after_trace=False,
        ).run()

    react_result = run_without_drain(ReactBuffer())
    baseline_result = run_without_drain(StaticBuffer(microfarads(770.0), name="770 uF"))
    analytic_fraction = config.software_overhead_fraction(milliamps(1.5))
    measured_fraction = 0.0
    if baseline_result.work_units > 0.0:
        measured_fraction = 1.0 - react_result.work_units / baseline_result.work_units

    # Power overhead: the adapter's overhead current at full expansion.
    react = ReactBuffer()
    for bank in react.hardware.banks:
        bank.connect_series()
        bank.to_parallel()
    react.hardware.last_level.set_voltage(3.0)
    hardware_power = react.controller.hardware_overhead_power()
    per_bank = hardware_power / max(len(react.hardware.banks), 1)
    total_power = react.overhead_current(system_on=True) * 3.0

    rows = [
        {
            "quantity": "software polling overhead (analytic)",
            "value": f"{analytic_fraction * 100.0:.2f}%",
            "paper": "1.8%",
        },
        {
            "quantity": "software polling overhead (measured, DE)",
            "value": f"{measured_fraction * 100.0:.2f}%",
            "paper": "1.8%",
        },
        {
            "quantity": "hardware overhead power (all banks)",
            "value": f"{hardware_power * 1e6:.1f} uW",
            "paper": "~68 uW total",
        },
        {
            "quantity": "hardware overhead per bank",
            "value": f"{per_bank * 1e6:.1f} uW",
            "paper": "~14 uW",
        },
        {
            "quantity": "total overhead power while running",
            "value": f"{total_power * 1e6:.1f} uW",
            "paper": "~68 uW",
        },
    ]

    output = format_table(rows, title="S5.1 — REACT software and power overhead")
    if verbose:
        print(output)
    return {
        "rows": rows,
        "software_overhead_analytic": analytic_fraction,
        "software_overhead_measured": measured_fraction,
        "hardware_overhead_power": hardware_power,
        "total_overhead_power": total_power,
        "formatted": output,
    }


if __name__ == "__main__":  # pragma: no cover - manual invocation
    run()
