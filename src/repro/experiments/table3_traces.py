"""Table 3 — details of each evaluation power trace.

Regenerates the trace-summary table (duration, average power, coefficient
of variation) from the synthetic generators and reports how closely each
matches the targets taken from the paper.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.formatting import format_table
from repro.experiments.runner import ExperimentSettings
from repro.harvester.synthetic import TABLE3_ORDER, TABLE3_SPECS, generate_table3_trace


def run(settings: Optional[ExperimentSettings] = None, verbose: bool = True) -> Dict:
    """Regenerate Table 3; returns per-trace statistics and target errors."""
    settings = settings or ExperimentSettings()
    rows = []
    traces = {}
    for name in TABLE3_ORDER:
        spec = TABLE3_SPECS[name]
        # Table 3 describes the full-length traces regardless of quick mode.
        trace = generate_table3_trace(name, seed=settings.seed)
        traces[name] = trace
        stats = trace.statistics()
        rows.append(
            {
                "trace": name,
                "time_s": round(trace.duration, 0),
                "avg_power_mW": round(trace.mean_power * 1e3, 3),
                "power_cv_percent": round(stats.coefficient_of_variation * 100.0, 0),
                "paper_avg_power_mW": round(spec.mean_power * 1e3, 3),
                "paper_cv_percent": round(spec.coefficient_of_variation * 100.0, 0),
                "spike_energy_fraction": round(stats.spike_energy_fraction, 2),
            }
        )

    output = format_table(rows, title="Table 3 — power trace details")
    if verbose:
        print(output)
    return {"rows": rows, "traces": traces, "formatted": output}


if __name__ == "__main__":  # pragma: no cover - manual invocation
    run()
