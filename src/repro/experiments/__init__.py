"""Experiment harness: regenerate every table and figure of the paper.

Each module reproduces one artifact of the evaluation (see DESIGN.md's
experiment index).  All experiments share the :mod:`repro.experiments.runner`
infrastructure so the buffer set, traces, and workload parameters are
identical across tables, exactly as in the paper's methodology, and all
grid execution flows through the pluggable backend API
(:mod:`repro.experiments.backends`): describe the grid once, pick
``--backend serial|pool|batch|pool+batch`` (or register your own) for the
throughput you need.  :func:`repro.experiments.sweep` is the public
one-call surface over both.

Run everything from the command line::

    react-repro all --quick                   # truncated traces, minutes
    react-repro all                           # full fidelity, tens of minutes
    react-repro table2 --backend pool+batch   # stack both sweep speedups
"""

from repro.experiments.runner import ExperimentSettings, ExperimentRunner, make_runner
from repro.experiments.backends import (
    BackendPrefix,
    BatchBackend,
    ExecutionBackend,
    PoolBatchBackend,
    ProcessPoolBackend,
    RunSpec,
    SerialBackend,
    available_backends,
    execute_run_spec,
    register_backend,
    register_backend_prefix,
    resolve_backend,
)
from repro.experiments.store import (
    CachedBackend,
    ResultStore,
    StoreStats,
    code_version_salt,
)
from repro.experiments.remote import (
    LocalWorkerPool,
    RemoteBackend,
    RemoteReport,
    SweepWorker,
)
from repro.experiments._sweep import SweepResult, sweep
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.batched import BatchExperimentRunner
from repro.experiments import (
    fig1_static_tradeoff,
    fig6_voltage_trace,
    fig7_normalized,
    overhead,
    sec2_characterization,
    switching_loss,
    table1_configuration,
    table2_benchmarks,
    table3_traces,
    table4_latency,
    table5_packet_forwarding,
)

#: Registry mapping experiment names to their run() entry points.
EXPERIMENTS = {
    "fig1": fig1_static_tradeoff.run,
    "sec2": sec2_characterization.run,
    "switching-loss": switching_loss.run,
    "table1": table1_configuration.run,
    "table2": table2_benchmarks.run,
    "table3": table3_traces.run,
    "table4": table4_latency.run,
    "table5": table5_packet_forwarding.run,
    "fig6": fig6_voltage_trace.run,
    "fig7": fig7_normalized.run,
    "overhead": overhead.run,
}

__all__ = [
    "ExperimentSettings",
    "ExperimentRunner",
    # backend API
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "BatchBackend",
    "PoolBatchBackend",
    "RunSpec",
    "execute_run_spec",
    "register_backend",
    "register_backend_prefix",
    "BackendPrefix",
    "resolve_backend",
    "available_backends",
    # result store
    "CachedBackend",
    "ResultStore",
    "StoreStats",
    "code_version_salt",
    # distributed sweep service
    "RemoteBackend",
    "RemoteReport",
    "SweepWorker",
    "LocalWorkerPool",
    # public sweep surface
    "sweep",
    "SweepResult",
    # deprecated shims
    "ParallelExperimentRunner",
    "BatchExperimentRunner",
    "make_runner",
    "EXPERIMENTS",
]
