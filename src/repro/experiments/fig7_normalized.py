"""Figure 7 — aggregate buffer performance normalized to REACT.

The paper condenses the whole evaluation into one bar chart: for each
benchmark, each buffer's figure of merit is normalized to REACT per trace
and then averaged across traces.  The headline numbers derived from it are
REACT's mean improvement over the equally-reactive 770 µF buffer (+39.1 %),
the equal-capacity 17 mF buffer (+19.3 %), the next-best 10 mF buffer
(+18.8 %), and Morphy (+26.2 %).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.formatting import format_matrix, percent
from repro.experiments.runner import (
    BUFFER_ORDER,
    ExperimentSettings,
    WORKLOAD_ORDER,
)
from repro.experiments import sweep
from repro.sim.metrics import mean_normalized_performance
from repro.sim.results import SimulationResult


def run(settings: Optional[ExperimentSettings] = None, verbose: bool = True) -> Dict:
    """Regenerate Figure 7; returns normalized performance and improvements."""
    settings = settings or ExperimentSettings()
    results: List[SimulationResult] = sweep(
        workloads=WORKLOAD_ORDER, settings=settings
    ).results

    normalized = mean_normalized_performance(results, reference="REACT")
    # Overall mean across benchmarks (the "Mean" group of Figure 7).
    overall: Dict[str, float] = {}
    for buffer_name in BUFFER_ORDER:
        values = [
            normalized[workload][buffer_name]
            for workload in normalized
            if buffer_name in normalized[workload]
        ]
        if values:
            overall[buffer_name] = sum(values) / len(values)
    normalized_with_mean = dict(normalized)
    normalized_with_mean["Mean"] = overall

    improvements = {}
    for baseline in ("770 uF", "10 mF", "17 mF", "Morphy"):
        if overall.get(baseline):
            improvements[baseline] = 1.0 / overall[baseline] - 1.0

    output = format_matrix(
        normalized_with_mean,
        row_label="benchmark",
        title="Figure 7 — mean performance normalized to REACT",
    )
    improvement_lines = "\n".join(
        f"REACT vs {name}: {percent(value)}" for name, value in improvements.items()
    )
    output = output + "\n\n" + improvement_lines
    if verbose:
        print(output)
    return {
        "results": results,
        "normalized": normalized_with_mean,
        "improvements": improvements,
        "formatted": output,
    }


if __name__ == "__main__":  # pragma: no cover - manual invocation
    run()
