"""Shared experiment infrastructure.

The paper evaluates every buffer architecture against the same five power
traces and four workloads; :class:`ExperimentRunner` encapsulates that
methodology so each table/figure module only states *which* subset it needs
and how to present it.

Two fidelity settings exist:

* **full** — the trace durations of Table 3 (the solar traces run for one
  to two hours of simulated time), matching the paper's methodology.
* **quick** — traces truncated to a few hundred seconds and a coarser
  simulation step.  The relative behaviour of the buffers is preserved
  (the generators are stationary), so quick mode is what the automated
  benchmark suite uses; absolute counts are smaller than in full mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.buffers.base import EnergyBuffer
from repro.buffers.morphy import MorphyBuffer
from repro.exceptions import ConfigurationError
from repro.buffers.react_adapter import ReactBuffer
from repro.buffers.static import StaticBuffer
from repro.harvester.synthetic import TABLE3_ORDER, generate_table3_trace
from repro.harvester.trace import PowerTrace
from repro.platform.mcu import MSP430FR5994
from repro.sim.engine import Simulator
from repro.sim.recorder import Recorder
from repro.sim.results import SimulationResult
from repro.sim.system import BatterylessSystem
from repro.units import microfarads, millifarads
from repro.workloads import (
    DataEncryption,
    PacketForwarding,
    RadioTransmit,
    SenseAndCompute,
)
from repro.workloads.base import Workload

#: Mean packet inter-arrival time per trace for the PF benchmark, scaled to
#: the trace length the way the paper's packet counts imply (roughly one
#: packet every 5–6 s for the RF traces, sparser for the long solar traces).
PF_INTERARRIVAL: Dict[str, float] = {
    "RF Cart": 5.5,
    "RF Obstruction": 5.5,
    "RF Mobile": 5.5,
    "Solar Campus": 12.0,
    "Solar Commute": 60.0,
}

#: The paper's buffer-name column order.
BUFFER_ORDER = ("770 uF", "10 mF", "17 mF", "Morphy", "REACT")

#: The paper's benchmark abbreviations in table order.
WORKLOAD_ORDER = ("DE", "SC", "RT", "PF")


@dataclass(frozen=True)
class ExperimentSettings:
    """Fidelity and methodology knobs shared by every experiment.

    ``workers`` selects how many processes grid sweeps may fan out over
    (1 = serial) and ``batch`` switches grid sweeps to the vectorized
    lockstep engine (one numpy-batched simulation per trace, scalar
    fallback for buffers without batched kernels); experiment modules opt
    in to both by building their runner with :func:`make_runner`.  The two
    are mutually exclusive — batching amortizes the interpreter overhead a
    worker pool would only replicate per process.  ``fast_forward``
    controls the scalar engine's off-phase fast path and exists so
    equivalence tests and ablations can force pure step-by-step execution.
    """

    quick: bool = False
    seed: int = 0
    dt_on: float = 0.01
    dt_off: float = 0.05
    quick_trace_cap: float = 400.0
    quick_dt_on: float = 0.02
    quick_dt_off: float = 0.1
    max_drain_time: float = 600.0
    workers: int = 1
    batch: bool = False
    fast_forward: bool = True

    @property
    def effective_dt_on(self) -> float:
        return self.quick_dt_on if self.quick else self.dt_on

    @property
    def effective_dt_off(self) -> float:
        return self.quick_dt_off if self.quick else self.dt_off

    def trace(self, name: str) -> PowerTrace:
        """The evaluation trace ``name`` at the configured fidelity."""
        trace = generate_table3_trace(name, seed=self.seed)
        if self.quick and trace.duration > self.quick_trace_cap:
            trace = trace.truncated(self.quick_trace_cap, name=trace.name)
        return trace

    def traces(self, names: Optional[Iterable[str]] = None) -> Dict[str, PowerTrace]:
        """All evaluation traces (or a named subset), in table order."""
        selected = list(names) if names is not None else list(TABLE3_ORDER)
        return {name: self.trace(name) for name in selected}


def standard_buffers() -> List[EnergyBuffer]:
    """Fresh instances of the paper's five evaluated buffers (§4.1)."""
    return [
        StaticBuffer(microfarads(770.0), name="770 uF"),
        StaticBuffer(millifarads(10.0), name="10 mF"),
        StaticBuffer(millifarads(17.0), name="17 mF"),
        MorphyBuffer(),
        ReactBuffer(),
    ]


def make_workload(abbreviation: str, trace_name: str) -> Workload:
    """A fresh workload instance configured for the given trace (§4.2)."""
    if abbreviation == "DE":
        return DataEncryption()
    if abbreviation == "SC":
        return SenseAndCompute()
    if abbreviation == "RT":
        return RadioTransmit()
    if abbreviation == "PF":
        return PacketForwarding(
            mean_interarrival=PF_INTERARRIVAL.get(trace_name, 6.0)
        )
    raise KeyError(f"unknown workload abbreviation {abbreviation!r}")


@dataclass
class ExperimentRunner:
    """Runs (trace × buffer × workload) grids with consistent methodology."""

    settings: ExperimentSettings = field(default_factory=ExperimentSettings)
    buffer_factory: Callable[[], List[EnergyBuffer]] = standard_buffers

    def run_single(
        self,
        trace: PowerTrace,
        buffer: EnergyBuffer,
        workload: Workload,
        recorder: Optional[Recorder] = None,
    ) -> SimulationResult:
        """Simulate one (trace, buffer, workload) combination."""
        system = BatterylessSystem.build(trace, buffer, workload, mcu=MSP430FR5994())
        simulator = Simulator(
            system,
            dt_on=self.settings.effective_dt_on,
            dt_off=self.settings.effective_dt_off,
            max_drain_time=self.settings.max_drain_time,
            recorder=recorder,
            fast_forward=self.settings.fast_forward,
        )
        return simulator.run()

    def run_grid(
        self,
        workloads: Iterable[str] = WORKLOAD_ORDER,
        trace_names: Optional[Iterable[str]] = None,
        progress: Optional[Callable[[SimulationResult], None]] = None,
    ) -> List[SimulationResult]:
        """Run the full evaluation grid and return every result."""
        results: List[SimulationResult] = []
        traces = self.settings.traces(trace_names)
        for workload_name in workloads:
            for trace_name, trace in traces.items():
                for buffer in self.buffer_factory():
                    workload = make_workload(workload_name, trace_name)
                    result = self.run_single(trace, buffer, workload)
                    results.append(result)
                    if progress is not None:
                        progress(result)
        return results


def make_runner(
    settings: ExperimentSettings,
    buffer_factory: Callable[[], List[EnergyBuffer]] = standard_buffers,
) -> ExperimentRunner:
    """The runner the settings ask for: serial, batched, or a process pool.

    Every table/figure module builds its runner through this factory so the
    ``--workers`` / ``--batch`` flags (threaded through
    :class:`ExperimentSettings`) apply to the whole suite.
    """
    if settings.batch and settings.workers > 1:
        raise ConfigurationError(
            "batch mode and a worker pool are mutually exclusive "
            "(pick --batch or --workers)"
        )
    if settings.batch:
        # Imported lazily for symmetry with the parallel runner (both
        # modules import this one for the shared grid machinery).
        from repro.experiments.batched import BatchExperimentRunner

        return BatchExperimentRunner(settings, buffer_factory=buffer_factory)
    if settings.workers > 1:
        # Imported lazily: parallel.py imports this module for the spec
        # machinery, so a top-level import would be circular.
        from repro.experiments.parallel import ParallelExperimentRunner

        return ParallelExperimentRunner(
            settings, buffer_factory=buffer_factory, workers=settings.workers
        )
    return ExperimentRunner(settings, buffer_factory=buffer_factory)
