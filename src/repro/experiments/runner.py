"""Shared experiment infrastructure.

The paper evaluates every buffer architecture against the same five power
traces and four workloads; :class:`ExperimentRunner` encapsulates that
methodology so each table/figure module only states *which* subset it needs
and how to present it.

Two fidelity settings exist:

* **full** — the trace durations of Table 3 (the solar traces run for one
  to two hours of simulated time), matching the paper's methodology.
* **quick** — traces truncated to a few hundred seconds and a coarser
  simulation step.  The relative behaviour of the buffers is preserved
  (the generators are stationary), so quick mode is what the automated
  benchmark suite uses; absolute counts are smaller than in full mode.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Union

from repro.buffers.base import EnergyBuffer
from repro.buffers.morphy import MorphyBuffer
from repro.buffers.react_adapter import ReactBuffer
from repro.buffers.static import StaticBuffer
from repro.harvester.synthetic import TABLE3_ORDER, generate_table3_trace
from repro.harvester.trace import PowerTrace
from repro.platform.mcu import MSP430FR5994
from repro.sim.engine import Simulator
from repro.sim.recorder import Recorder
from repro.sim.results import SimulationResult
from repro.sim.system import BatterylessSystem
from repro.units import microfarads, millifarads
from repro.workloads import (
    DataEncryption,
    PacketForwarding,
    RadioTransmit,
    SenseAndCompute,
)
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.experiments.backends import ExecutionBackend, RunSpec

#: Mean packet inter-arrival time per trace for the PF benchmark, scaled to
#: the trace length the way the paper's packet counts imply (roughly one
#: packet every 5–6 s for the RF traces, sparser for the long solar traces).
PF_INTERARRIVAL: Dict[str, float] = {
    "RF Cart": 5.5,
    "RF Obstruction": 5.5,
    "RF Mobile": 5.5,
    "Solar Campus": 12.0,
    "Solar Commute": 60.0,
}

#: The paper's buffer-name column order.
BUFFER_ORDER = ("770 uF", "10 mF", "17 mF", "Morphy", "REACT")

#: The paper's benchmark abbreviations in table order.
WORKLOAD_ORDER = ("DE", "SC", "RT", "PF")


@dataclass(frozen=True)
class ExperimentSettings:
    """Fidelity and methodology knobs shared by every experiment.

    ``backend`` names the execution backend grid sweeps run through (see
    :mod:`repro.experiments.backends`); ``None`` resolves from the legacy
    knobs via :attr:`backend_name`.  ``workers`` is the pool width for the
    pool-style backends — ``None`` (unset) lets them default to the host's
    core count, while an explicit value (including 1) is honored as given —
    and ``batch`` is the legacy switch for the vectorized lockstep engine;
    the two *compose* — ``workers`` above 1 plus ``batch`` selects the
    ``pool+batch`` backend, which runs a lockstep batch inside each worker
    process.  ``fast_forward`` controls the scalar engine's off-phase fast
    path and exists so equivalence tests and ablations can force pure
    step-by-step execution.

    ``cache_dir`` points sweeps at a content-addressed result store (see
    :mod:`repro.experiments.store`): setting it wraps the selected backend
    in its memoizing ``cached:<name>`` variant, and ``use_cache=False``
    (the ``--no-cache`` flag) strips the wrapper even from an explicitly
    cached :attr:`backend` name.

    ``remote_workers`` and ``remote_listen`` configure the ``remote:<inner>``
    transport backends (see :mod:`repro.experiments.remote`):
    ``remote_workers`` is the number of localhost worker processes the
    coordinator spawns for the sweep (``None`` defaults to 2 when no listen
    address is given, else 0), and ``remote_listen`` is a ``HOST:PORT``
    bind address for workers started elsewhere with ``react-repro worker
    --connect``.  Like ``workers``, both are execution-only knobs — they
    never change results and are excluded from cache fingerprints.
    """

    quick: bool = False
    seed: int = 0
    dt_on: float = 0.01
    dt_off: float = 0.05
    quick_trace_cap: float = 400.0
    quick_dt_on: float = 0.02
    quick_dt_off: float = 0.1
    max_drain_time: float = 600.0
    workers: Optional[int] = None
    batch: bool = False
    fast_forward: bool = True
    backend: Optional[str] = None
    cache_dir: Optional[str] = None
    use_cache: bool = True
    remote_workers: Optional[int] = None
    remote_listen: Optional[str] = None

    @property
    def backend_name(self) -> str:
        """The registry name execution resolves to.

        An explicit :attr:`backend` wins; otherwise the legacy ``workers``
        / ``batch`` knobs map onto the equivalent backend, composing to
        ``pool+batch`` when both are set.  A configured :attr:`cache_dir`
        then wraps the choice in its memoizing ``cached:`` variant, and
        ``use_cache=False`` strips that prefix instead.
        """
        if self.backend:
            base = self.backend
        else:
            pooled = (self.workers or 0) > 1
            if self.batch and pooled:
                base = "pool+batch"
            elif self.batch:
                base = "batch"
            elif pooled:
                base = "pool"
            else:
                base = "serial"
        # "cached:" is the store wrapper's registry prefix; runner.py sits
        # below backends.py in the import graph, so the literal lives here.
        if not self.use_cache:
            return base[len("cached:") :] if base.startswith("cached:") else base
        if self.cache_dir is not None and not base.startswith("cached:"):
            return f"cached:{base}"
        return base

    @property
    def effective_dt_on(self) -> float:
        return self.quick_dt_on if self.quick else self.dt_on

    @property
    def effective_dt_off(self) -> float:
        return self.quick_dt_off if self.quick else self.dt_off

    def trace(self, name: str) -> PowerTrace:
        """The evaluation trace ``name`` at the configured fidelity."""
        trace = generate_table3_trace(name, seed=self.seed)
        if self.quick and trace.duration > self.quick_trace_cap:
            trace = trace.truncated(self.quick_trace_cap, name=trace.name)
        return trace

    def traces(self, names: Optional[Iterable[str]] = None) -> Dict[str, PowerTrace]:
        """All evaluation traces (or a named subset), in table order."""
        selected = list(names) if names is not None else list(TABLE3_ORDER)
        return {name: self.trace(name) for name in selected}


def standard_buffers() -> List[EnergyBuffer]:
    """Fresh instances of the paper's five evaluated buffers (§4.1)."""
    return [
        StaticBuffer(microfarads(770.0), name="770 uF"),
        StaticBuffer(millifarads(10.0), name="10 mF"),
        StaticBuffer(millifarads(17.0), name="17 mF"),
        MorphyBuffer(),
        ReactBuffer(),
    ]


def make_workload(abbreviation: str, trace_name: str) -> Workload:
    """A fresh workload instance configured for the given trace (§4.2)."""
    if abbreviation == "DE":
        return DataEncryption()
    if abbreviation == "SC":
        return SenseAndCompute()
    if abbreviation == "RT":
        return RadioTransmit()
    if abbreviation == "PF":
        return PacketForwarding(
            mean_interarrival=PF_INTERARRIVAL.get(trace_name, 6.0)
        )
    raise KeyError(f"unknown workload abbreviation {abbreviation!r}")


@dataclass
class ExperimentRunner:
    """Runs (trace × buffer × workload) grids with consistent methodology.

    The runner owns *what* to run: it expands a grid into picklable
    :class:`~repro.experiments.backends.RunSpec`\\ s in the canonical serial
    iteration order (workload → trace → buffer).  *How* the specs execute
    is delegated to an :class:`~repro.experiments.backends.ExecutionBackend`
    — ``backend`` may be a backend instance, a registry name, or ``None``
    to resolve from :attr:`ExperimentSettings.backend_name`.  Every backend
    returns the same results in the same order, so the choice is purely
    about throughput.
    """

    settings: ExperimentSettings = field(default_factory=ExperimentSettings)
    buffer_factory: Callable[[], List[EnergyBuffer]] = standard_buffers
    backend: Optional[Union[str, "ExecutionBackend"]] = None

    def resolved_backend(self) -> "ExecutionBackend":
        """The backend instance ``run_grid`` will delegate to."""
        from repro.experiments.backends import resolve_backend

        backend = self.backend
        if backend is None:
            backend = self.settings.backend_name
        if isinstance(backend, str):
            return resolve_backend(backend, self.settings)
        return backend

    def run_single(
        self,
        trace: PowerTrace,
        buffer: EnergyBuffer,
        workload: Workload,
        recorder: Optional[Recorder] = None,
    ) -> SimulationResult:
        """Simulate one (trace, buffer, workload) combination."""
        system = BatterylessSystem.build(trace, buffer, workload, mcu=MSP430FR5994())
        simulator = Simulator(
            system,
            dt_on=self.settings.effective_dt_on,
            dt_off=self.settings.effective_dt_off,
            max_drain_time=self.settings.max_drain_time,
            recorder=recorder,
            fast_forward=self.settings.fast_forward,
        )
        return simulator.run()

    def grid_specs(
        self,
        workloads: Iterable[str] = WORKLOAD_ORDER,
        trace_names: Optional[Iterable[str]] = None,
    ) -> List["RunSpec"]:
        """The grid in serial iteration order, as picklable run specs."""
        # Imported lazily: backends.py imports this module for the shared
        # grid machinery, so a top-level import would be circular.
        from repro.experiments.backends import RunSpec

        selected = (
            list(trace_names) if trace_names is not None else list(TABLE3_ORDER)
        )
        trace_list = list(dict.fromkeys(selected))  # dedupe, order kept
        buffer_count = len(self.buffer_factory())
        return [
            RunSpec(
                workload=workload_name,
                trace_name=trace_name,
                buffer_index=index,
                settings=self.settings,
                buffer_factory=self.buffer_factory,
            )
            for workload_name in workloads
            for trace_name in trace_list
            for index in range(buffer_count)
        ]

    def run_grid(
        self,
        workloads: Iterable[str] = WORKLOAD_ORDER,
        trace_names: Optional[Iterable[str]] = None,
        progress: Optional[Callable[[SimulationResult], None]] = None,
    ) -> List[SimulationResult]:
        """Run the full evaluation grid through the configured backend."""
        specs = self.grid_specs(workloads, trace_names)
        return self.resolved_backend().run_specs(specs, progress=progress)


def make_runner(
    settings: ExperimentSettings,
    buffer_factory: Callable[[], List[EnergyBuffer]] = standard_buffers,
) -> ExperimentRunner:
    """Deprecated: construct :class:`ExperimentRunner` directly.

    Kept as a shim so CHANGES-era scripts keep working: the returned runner
    resolves its backend from the settings (``--backend`` wins, else the
    legacy ``--workers`` / ``--batch`` knobs map onto the equivalent
    backend, composing to ``pool+batch`` when both are set).
    """
    warnings.warn(
        "make_runner() is deprecated; construct ExperimentRunner(settings, ...) "
        "or call repro.experiments.sweep(...) — execution is selected by "
        "--backend / ExperimentSettings.backend",
        DeprecationWarning,
        stacklevel=2,
    )
    return ExperimentRunner(settings, buffer_factory=buffer_factory)
