"""Table 5 — packets received and retransmitted during Packet Forwarding.

PF is the benchmark that needs everything at once: reactivity to catch
unpredictable packets, longevity to afford the retransmission, and energy
fungibility to re-allocate a pending transmit reservation when a new packet
arrives.  The paper reports both received (Rx) and retransmitted (Tx)
counts; REACT leads on both, while Morphy's reconfiguration losses leave it
below the best static buffer on Tx.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.aggregate import mean_over_traces
from repro.analysis.formatting import format_matrix
from repro.experiments.runner import ExperimentSettings
from repro.experiments import sweep


def run(settings: Optional[ExperimentSettings] = None, verbose: bool = True) -> Dict:
    """Regenerate Table 5; returns Rx and Tx matrices."""
    settings = settings or ExperimentSettings()
    results = sweep(workloads=("PF",), settings=settings).results

    received: Dict[str, Dict[str, float]] = {}
    transmitted: Dict[str, Dict[str, float]] = {}
    for result in results:
        received.setdefault(result.trace_name, {})[result.buffer_name] = (
            result.workload_metrics.get("packets_received", 0.0)
        )
        transmitted.setdefault(result.trace_name, {})[result.buffer_name] = (
            result.work_units
        )
    received["Mean"] = mean_over_traces(received)
    transmitted["Mean"] = mean_over_traces(transmitted)

    output = "\n\n".join(
        [
            format_matrix(
                received, row_label="trace", title="Table 5 — packets received (Rx)"
            ),
            format_matrix(
                transmitted,
                row_label="trace",
                title="Table 5 — packets retransmitted (Tx)",
            ),
        ]
    )
    if verbose:
        print(output)
    return {
        "results": results,
        "received": received,
        "transmitted": transmitted,
        "formatted": output,
    }


if __name__ == "__main__":  # pragma: no cover - manual invocation
    run()
