"""Command-line entry point: ``react-repro <experiment> [--quick]``.

Examples::

    react-repro table4 --quick                       # latency table, truncated traces
    react-repro fig7                                 # full Figure 7 sweep (tens of minutes)
    react-repro all --quick --backend pool+batch     # every artifact, both sweep speedups
    react-repro list                                 # show available experiments

Grid execution is selected with ``--backend`` (``serial``, ``pool``,
``batch``, ``pool+batch``, plus anything registered via
:func:`repro.experiments.backends.register_backend`).  ``--workers`` sets
the pool width for the pool-style backends; on its own it is a deprecated
way of selecting ``--backend pool`` (and ``--batch`` of ``--backend
batch``; both together compose to ``pool+batch``).  ``--cache-dir DIR``
memoizes sweep results in a content-addressed store under ``DIR``
(equivalently, pick a ``cached:<inner>`` backend directly); ``--no-cache``
disables the store even for an explicitly cached backend name.

Distributed sweeps use the ``remote:<inner>`` backends
(:mod:`repro.experiments.remote`): ``--backend remote:serial
--remote-workers N`` fans the grid out over N localhost worker processes,
``--remote-listen HOST:PORT`` accepts workers started on other machines
with the ``react-repro worker --connect HOST:PORT`` subcommand, and
``--verbose`` surfaces the coordinator's scheduling log.

``react-repro lint`` runs the repo's invariant linter
(:mod:`repro.analysis.lint`) over the installed package — the same
blocking check CI applies.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
import warnings
from typing import List, Optional

from repro.experiments import EXPERIMENTS
from repro.experiments.backends import available_backends
from repro.experiments.runner import ExperimentSettings


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="react-repro",
        description="Regenerate the tables and figures of the REACT paper (ASPLOS 2024).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help=(
            "which artifact to regenerate ('all' for every one, 'list' to "
            "enumerate); 'react-repro worker --connect HOST:PORT' instead "
            "starts a distributed-sweep worker (see --remote-listen), and "
            "'react-repro lint' runs the repo invariant linter"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="truncate the long solar traces and coarsen the timestep (minutes instead of tens of minutes)",
    )
    parser.add_argument("--seed", type=int, default=0, help="trace-generation seed")
    parser.add_argument(
        "--backend",
        choices=sorted(available_backends()),
        default=None,
        help=(
            "execution backend for grid sweeps: serial simulation, a process "
            "pool, vectorized lockstep batching, or pool+batch (a lockstep "
            "batch inside each worker, stacking both speedups); default is "
            "resolved from --workers/--batch, else serial"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker count for the pool-style backends, honored as given "
            "(unset: the host's core count); without --backend, a value "
            "above 1 selects --backend pool (deprecated spelling)"
        ),
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help=(
            "deprecated spelling of --backend batch (or, combined with "
            "--workers N, of --backend pool+batch)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "memoize sweep results in a content-addressed store under DIR "
            "(wraps the selected backend in its cached:<name> variant; a "
            "warm cache answers repeated sweeps without re-simulating)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "disable the result store even if --backend names a cached:* "
            "variant or --cache-dir is set"
        ),
    )
    parser.add_argument(
        "--remote-workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "localhost worker processes the remote:<inner> backends spawn "
            "per sweep (default: 2 without --remote-listen, else 0); 0 "
            "relies entirely on externally connected workers"
        ),
    )
    parser.add_argument(
        "--remote-listen",
        metavar="HOST:PORT",
        default=None,
        help=(
            "bind address for the remote:<inner> coordinator so workers "
            "started elsewhere ('react-repro worker --connect HOST:PORT') "
            "can join the sweep; default binds 127.0.0.1 on an ephemeral "
            "port, reachable only by the locally spawned workers"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help=(
            "enable structured scheduling logs (worker connects, shard "
            "dispatch/complete/requeue, retries, per-shard wall-clock)"
        ),
    )
    parser.add_argument(
        "--no-fast-forward",
        action="store_true",
        help=(
            "disable segment fast-forwarding and simulate strictly step by "
            "step on every backend (slower; the fast paths are bit-exact, "
            "so this exists for cross-checking and debugging)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "worker":
        # The worker subcommand has a disjoint argument set (--connect et
        # al.), so it owns its own parser rather than polluting this one.
        from repro.experiments.remote.worker import main as worker_main

        return worker_main(arguments[1:])
    if arguments and arguments[0] == "lint":
        # Same pattern: the invariant linter owns its own parser.
        from repro.analysis.lint.cli import main as lint_main

        return lint_main(arguments[1:])

    parser = build_parser()
    args = parser.parse_args(arguments)

    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be at least 1, got {args.workers}")
    if args.remote_workers is not None and args.remote_workers < 0:
        parser.error(
            f"--remote-workers must be at least 0, got {args.remote_workers}"
        )
    if args.verbose:
        logging.basicConfig(
            level=logging.INFO,
            format="%(asctime)s %(name)s %(levelname)s %(message)s",
        )

    settings = ExperimentSettings(
        quick=args.quick,
        seed=args.seed,
        workers=args.workers,
        batch=args.batch,
        backend=args.backend,
        fast_forward=not args.no_fast_forward,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        remote_workers=args.remote_workers,
        remote_listen=args.remote_listen,
    )
    pooled = args.workers is not None and args.workers > 1
    if args.backend is None and (args.batch or pooled):
        # Python hides DeprecationWarning outside __main__ by default, which
        # would mute this exactly where it should educate (the installed
        # console script); surface this one warning without touching the
        # rest of the filter chain.
        warnings.filterwarnings(
            "default", category=DeprecationWarning, message="selecting execution via"
        )
        warnings.warn(
            f"selecting execution via --batch/--workers is deprecated; use "
            f"--backend {settings.backend_name}"
            + (" --workers N" if pooled else ""),
            DeprecationWarning,
            stacklevel=2,
        )

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            module = EXPERIMENTS[name].__module__
            print(f"{name:16s} {module}")
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.perf_counter()
        print(f"=== {name} ===")
        EXPERIMENTS[name](settings)
        elapsed = time.perf_counter() - started
        print(f"[{name} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
