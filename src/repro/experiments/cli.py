"""Command-line entry point: ``react-repro <experiment> [--quick]``.

Examples::

    react-repro table4 --quick     # latency table on truncated traces
    react-repro fig7               # full Figure 7 sweep (tens of minutes)
    react-repro all --quick        # every artifact, quick fidelity
    react-repro list               # show available experiments
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import EXPERIMENTS
from repro.experiments.runner import ExperimentSettings


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="react-repro",
        description="Regenerate the tables and figures of the REACT paper (ASPLOS 2024).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="which artifact to regenerate ('all' for every one, 'list' to enumerate)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="truncate the long solar traces and coarsen the timestep (minutes instead of tens of minutes)",
    )
    parser.add_argument("--seed", type=int, default=0, help="trace-generation seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan grid sweeps out over N worker processes (1 = serial)",
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help=(
            "simulate each trace's grid cells in one vectorized lockstep "
            "batch (numpy-batched buffers; others fall back to the scalar "
            "engine); mutually exclusive with --workers"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.workers < 1:
        parser.error(f"--workers must be at least 1, got {args.workers}")
    if args.batch and args.workers > 1:
        parser.error("--batch and --workers are mutually exclusive")

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            module = EXPERIMENTS[name].__module__
            print(f"{name:16s} {module}")
        return 0

    settings = ExperimentSettings(
        quick=args.quick, seed=args.seed, workers=args.workers, batch=args.batch
    )
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.perf_counter()
        print(f"=== {name} ===")
        EXPERIMENTS[name](settings)
        elapsed = time.perf_counter() - started
        print(f"[{name} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
