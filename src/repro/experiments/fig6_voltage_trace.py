"""Figure 6 — buffer voltage and on-time for SC under the RF Mobile trace.

The paper's characterization figure overlays the buffer-voltage timelines
of the 770 µF, 10 mF, Morphy, and REACT systems running the Sense-and-
Compute benchmark on the RF Mobile trace, with bars marking when each
system is operating.  This experiment produces the same timelines as
columnar data (time, voltage, on/off, equivalent capacitance) plus the
summary statistics the paper reads off the figure: REACT charging only the
last-level buffer from cold start, clipping on the 770 µF buffer, and the
reclamation voltage steps near the end of the run.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.analysis.formatting import format_table
from repro.buffers.morphy import MorphyBuffer
from repro.buffers.react_adapter import ReactBuffer
from repro.buffers.static import StaticBuffer
from repro.experiments.runner import ExperimentRunner, ExperimentSettings
from repro.sim.recorder import Recorder
from repro.units import microfarads, millifarads
from repro.workloads.sense_compute import SenseAndCompute

#: The four systems Figure 6 overlays.
FIG6_BUFFERS = ("770 uF", "10 mF", "Morphy", "REACT")


def _fig6_buffer(name: str):
    if name == "770 uF":
        return StaticBuffer(microfarads(770.0), name=name)
    if name == "10 mF":
        return StaticBuffer(millifarads(10.0), name=name)
    if name == "Morphy":
        return MorphyBuffer()
    if name == "REACT":
        return ReactBuffer()
    raise KeyError(name)


def run(settings: Optional[ExperimentSettings] = None, verbose: bool = True) -> Dict:
    """Regenerate Figure 6; returns the recorded timelines per buffer."""
    settings = settings or ExperimentSettings()
    runner = ExperimentRunner(settings)
    trace = settings.trace("RF Mobile")

    timelines: Dict[str, Dict] = {}
    rows = []
    for name in FIG6_BUFFERS:
        buffer = _fig6_buffer(name)
        recorder = Recorder(record_period=1.0)
        result = runner.run_single(trace, buffer, SenseAndCompute(), recorder=recorder)
        arrays = recorder.as_arrays()
        clipped_fraction = (
            result.buffer_ledger["clipped"] / result.buffer_ledger["offered"]
            if result.buffer_ledger["offered"] > 0.0
            else 0.0
        )
        timelines[name] = {"recorder": recorder, "result": result, "arrays": arrays}
        rows.append(
            {
                "buffer": name,
                "latency_s": result.latency,
                "on_time_s": round(result.on_time, 1),
                "measurements": result.work_units,
                "peak_voltage": round(float(np.max(arrays["voltage"])), 2)
                if len(arrays["voltage"])
                else 0.0,
                "clipped_fraction": round(clipped_fraction, 3),
            }
        )

    output = format_table(
        rows, title="Figure 6 — SC under RF Mobile: per-buffer timeline summary"
    )
    if verbose:
        print(output)
    return {"trace": trace, "timelines": timelines, "rows": rows, "formatted": output}


if __name__ == "__main__":  # pragma: no cover - manual invocation
    run()
