"""Table 2 — DE, SC, and RT performance across traces and energy buffers.

The paper's central results table: application work completed (AES batches,
sensor measurements, radio transmissions) for every combination of the five
power traces and five buffer architectures.  The absolute counts in this
reproduction differ from the paper's testbed, but the relationships the
paper calls out — REACT matching the best static buffer per trace, the
small buffer collapsing on RT, the oversized buffer failing to start on RF
Obstruction — are what EXPERIMENTS.md checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.aggregate import matrix_from_results, mean_over_traces
from repro.analysis.formatting import format_matrix
from repro.experiments.runner import ExperimentSettings
from repro.experiments import sweep
from repro.sim.results import SimulationResult

#: The three benchmarks Table 2 reports (Table 5 covers PF separately).
TABLE2_WORKLOADS = ("DE", "SC", "RT")


def run(settings: Optional[ExperimentSettings] = None, verbose: bool = True) -> Dict:
    """Regenerate Table 2; returns matrices of work completed per benchmark."""
    settings = settings or ExperimentSettings()
    results: List[SimulationResult] = sweep(
        workloads=TABLE2_WORKLOADS, settings=settings
    ).results

    per_workload: Dict[str, Dict[str, Dict[str, float]]] = {}
    formatted_sections = []
    for workload_name in TABLE2_WORKLOADS:
        subset = [r for r in results if r.workload_name == workload_name]
        matrix = matrix_from_results(subset, value="work_units")
        matrix["Mean"] = mean_over_traces(matrix)
        per_workload[workload_name] = matrix
        formatted_sections.append(
            format_matrix(
                matrix,
                row_label="trace",
                title=f"Table 2 — {workload_name} work completed",
            )
        )

    output = "\n\n".join(formatted_sections)
    if verbose:
        print(output)
    return {"results": results, "matrices": per_workload, "formatted": output}


if __name__ == "__main__":  # pragma: no cover - manual invocation
    run()
