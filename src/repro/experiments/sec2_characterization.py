"""§2.1 characterization numbers — the quantitative motivation for REACT.

The background section quantifies the static-buffer tradeoff on the Figure 1
system:

* the 1 mF buffer reaches the enable voltage roughly 8× sooner than the
  300 mF buffer,
* the mean uninterrupted power cycle is tens of seconds for the small buffer
  versus hundreds for the large one,
* the large buffer is operational for a larger fraction of the trace
  (≈49 % vs ≈27 % in the paper),
* most harvested energy arrives in short spikes (≈82 % above 10 mW) even
  though most time is spent below 3 mW, and
* at night the oversized buffers never even reach the enable voltage.

This experiment reproduces each of those quantities from the simulation so
EXPERIMENTS.md can compare them against the paper's prose.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.formatting import format_table
from repro.buffers.static import StaticBuffer
from repro.experiments.runner import ExperimentRunner, ExperimentSettings
from repro.harvester.synthetic import solar_night_trace, solar_trace
from repro.sim.recorder import Recorder
from repro.units import millifarads
from repro.workloads.data_encryption import DataEncryption


def run(settings: Optional[ExperimentSettings] = None, verbose: bool = True) -> Dict:
    """Regenerate the §2.1 characterization; returns the computed statistics."""
    settings = settings or ExperimentSettings()
    runner = ExperimentRunner(settings)
    duration = 600.0 if settings.quick else 3600.0
    day_trace = solar_trace(duration=duration, mean_power=5.0e-3, seed=settings.seed,
                            name="Solar Pedestrian")
    night_trace = solar_night_trace(duration=duration, seed=settings.seed)

    day_rows = []
    cycle_stats: Dict[str, Dict[str, float]] = {}
    for size_mf in (1.0, 300.0):
        buffer = StaticBuffer(millifarads(size_mf), name=f"{size_mf:g} mF")
        recorder = Recorder(record_period=2.0)
        result = runner.run_single(
            day_trace, buffer, DataEncryption(), recorder=recorder
        )
        intervals = recorder.on_intervals()
        cycles = [end - start for start, end in intervals]
        cycle_stats[buffer.name] = {
            "latency": result.latency if result.latency is not None else float("inf"),
            "mean_cycle": (sum(cycles) / len(cycles)) if cycles else 0.0,
            "operational_fraction": result.on_time_during_trace_fraction,
        }
        day_rows.append(
            {
                "buffer": buffer.name,
                "latency_s": result.latency,
                "mean_cycle_s": round(cycle_stats[buffer.name]["mean_cycle"], 1),
                "operational_fraction": round(
                    cycle_stats[buffer.name]["operational_fraction"], 3
                ),
            }
        )

    small = cycle_stats["1 mF"]
    large = cycle_stats["300 mF"]
    charge_time_ratio = (
        large["latency"] / small["latency"]
        if small["latency"] not in (0.0, float("inf"))
        else float("inf")
    )

    spike_stats = day_trace.statistics(spike_threshold=10e-3, low_power_threshold=3e-3)

    night_rows = []
    for size_mf in (1.0, 10.0, 300.0):
        buffer = StaticBuffer(millifarads(size_mf), name=f"{size_mf:g} mF")
        result = runner.run_single(night_trace, buffer, DataEncryption())
        night_rows.append(
            {
                "buffer": buffer.name,
                "started": result.started,
                "duty_cycle": round(result.duty_cycle, 4),
            }
        )

    summary_rows = [
        {
            "quantity": "charge-time ratio (300 mF / 1 mF)",
            "value": round(charge_time_ratio, 1),
        },
        {
            "quantity": "spike energy fraction (>10 mW)",
            "value": round(spike_stats.spike_energy_fraction, 3),
        },
        {
            "quantity": "time fraction below 3 mW",
            "value": round(spike_stats.time_below_fraction, 3),
        },
    ]

    output = "\n\n".join(
        [
            format_table(day_rows, title="S2.1 — daytime solar characterization"),
            format_table(summary_rows, title="S2.1 — trace and charge-time statistics"),
            format_table(night_rows, title="S2.1.2 — night-time duty cycles"),
        ]
    )
    if verbose:
        print(output)
    return {
        "day_rows": day_rows,
        "night_rows": night_rows,
        "charge_time_ratio": charge_time_ratio,
        "spike_energy_fraction": spike_stats.spike_energy_fraction,
        "time_below_fraction": spike_stats.time_below_fraction,
        "formatted": output,
    }


if __name__ == "__main__":  # pragma: no cover - manual invocation
    run()
