"""Local worker launcher: N sweep workers as localhost subprocesses.

Single-host use of the remote transport (and every test of it) spawns its
workers through :class:`LocalWorkerPool`: each worker is a fresh Python
process running ``python -m repro.experiments.remote --connect HOST:PORT``
— exactly the loop the ``react-repro worker`` CLI entry runs on another
machine, so the local and multi-host paths exercise identical code.

The spawned interpreter gets the current :mod:`repro` package's parent
directory prepended to ``PYTHONPATH``, so the pool works identically from
an installed package, an editable install, or a plain ``PYTHONPATH=src``
checkout.
"""

from __future__ import annotations

import logging
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

log = logging.getLogger("repro.remote.launcher")


def worker_command(
    address: Tuple[str, int],
    inner: Optional[str] = None,
    heartbeat_interval: Optional[float] = None,
    verbose: bool = False,
) -> List[str]:
    """The argv that starts one worker process against ``address``."""
    command = [
        sys.executable,
        "-m",
        "repro.experiments.remote",
        "--connect",
        f"{address[0]}:{address[1]}",
    ]
    if inner is not None:
        command += ["--inner", inner]
    if heartbeat_interval is not None:
        command += ["--heartbeat", str(heartbeat_interval)]
    if verbose:
        command.append("--verbose")
    return command


class LocalWorkerPool:
    """``count`` localhost worker subprocesses connected to one coordinator."""

    def __init__(
        self,
        count: int,
        address: Tuple[str, int],
        *,
        inner: Optional[str] = None,
        heartbeat_interval: Optional[float] = None,
        verbose: bool = False,
    ) -> None:
        import repro

        env = dict(os.environ)
        package_parent = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_parent if not existing else package_parent + os.pathsep + existing
        )
        command = worker_command(
            address,
            inner=inner,
            heartbeat_interval=heartbeat_interval,
            verbose=verbose,
        )
        self.processes: List[subprocess.Popen] = [
            subprocess.Popen(command, env=env) for _ in range(count)
        ]
        log.info(
            "spawned %d local worker(s) for %s:%d (pids %s)",
            count,
            address[0],
            address[1],
            self.pids,
        )

    @property
    def pids(self) -> List[int]:
        return [process.pid for process in self.processes]

    def all_exited(self) -> bool:
        """True once every spawned worker process has terminated."""
        return all(process.poll() is not None for process in self.processes)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Terminate any still-running workers and reap every process."""
        for process in self.processes:
            if process.poll() is None:
                try:
                    process.terminate()
                except OSError:
                    pass
        deadline = time.monotonic() + timeout
        for process in self.processes:
            remaining = deadline - time.monotonic()
            try:
                process.wait(timeout=max(0.0, remaining))
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        log.info("local worker pool drained (pids %s)", self.pids)
