"""Distributed sweep service: coordinator/worker transport for grid sweeps.

The ``remote:<inner>`` backends execute a sweep's
:class:`~repro.experiments.backends.RunSpec` grid on a fleet of worker
*processes* — localhost subprocesses spawned per sweep, other hosts'
``react-repro worker --connect HOST:PORT`` processes, or both — while the
coordinating client shards, dispatches, retries, and reassembles.  The
result is bit-identical to the serial backend in canonical spec order, the
standing contract every backend in this tree honors.

Layout:

* :mod:`~repro.experiments.remote.protocol` — length-prefixed pickle
  framing and the six-message vocabulary (with the trust model).
* :mod:`~repro.experiments.remote.coordinator` — :class:`RemoteBackend`,
  shard planning along the shared batch-partition boundaries, and the
  fault-tolerant dispatch loop (heartbeats, per-shard timeouts, bounded
  retry-with-requeue, graceful drain).
* :mod:`~repro.experiments.remote.worker` — the :class:`SweepWorker`
  process loop behind ``react-repro worker``.
* :mod:`~repro.experiments.remote.launcher` — :class:`LocalWorkerPool`,
  N localhost workers as subprocesses.

The backend registry composes the transport with the result store:
``cached:remote:serial`` checks the content-addressed store first and only
touches the network for misses, while workers sharing the same
``--cache-dir`` write computed results through to the same store.
"""

from repro.experiments.remote import protocol
from repro.experiments.remote.coordinator import (
    DEFAULT_LOCAL_WORKERS,
    RemoteBackend,
    RemoteReport,
    plan_shards,
    remote_backend_from_settings,
)
from repro.experiments.remote.launcher import LocalWorkerPool, worker_command
from repro.experiments.remote.worker import SweepWorker

__all__ = [
    "DEFAULT_LOCAL_WORKERS",
    "LocalWorkerPool",
    "RemoteBackend",
    "RemoteReport",
    "SweepWorker",
    "plan_shards",
    "protocol",
    "remote_backend_from_settings",
    "worker_command",
]
