"""Subprocess entry: ``python -m repro.experiments.remote --connect ...``.

A separate ``__main__`` (rather than running :mod:`.worker` itself with
``-m``) keeps runpy from re-executing a module the package ``__init__``
already imported.
"""

from repro.experiments.remote.worker import main

if __name__ == "__main__":
    raise SystemExit(main())
