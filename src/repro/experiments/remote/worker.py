"""Worker side of the distributed sweep service.

A :class:`SweepWorker` connects to a coordinator, announces itself, and
then loops: receive a :class:`~repro.experiments.remote.protocol.ShardAssignment`,
execute its specs through a *local* inner backend (``serial`` by default,
``batch`` for lockstep-friendly shards — the coordinator names the inner
in each assignment), and stream the shard's results back in shard order.
A background thread heartbeats on the same socket so a stalled-but-alive
worker is distinguishable from a dead one.

When the shard's :class:`~repro.experiments.runner.ExperimentSettings`
carry a ``cache_dir``, the worker wraps its inner backend in the
content-addressed result store
(:class:`~repro.experiments.store.CachedBackend`) rooted there — loads
before computing, writes after — so every worker of every client sharing
that directory shares one cache.  Workers never write the store's
``store-stats.json`` (that file belongs to the coordinating client).

Entry points::

    react-repro worker --connect HOST:PORT            # installed CLI
    python -m repro.experiments.remote --connect HOST:PORT

Execution errors inside a shard are reported back as
:class:`~repro.experiments.remote.protocol.ShardFailure` (with the full
traceback) rather than killing the worker, so one poisoned spec costs its
retry budget, not the whole fleet.
"""

from __future__ import annotations

import argparse
import logging
import os
import socket
import threading
import time
import traceback
from typing import List, Optional, Sequence

from repro.experiments.remote import protocol

log = logging.getLogger("repro.remote.worker")

#: Default seconds between worker heartbeats.
DEFAULT_HEARTBEAT_INTERVAL = 1.0


class SweepWorker:
    """One worker process: connect, execute assigned shards, stream results.

    ``inner_override`` forces every shard through the named local backend
    regardless of what the coordinator assigned — useful for pinning a
    fleet to ``batch`` on big-memory hosts; ``None`` (the default) follows
    the per-shard assignment.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        inner_override: Optional[str] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        connect_timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.inner_override = inner_override
        self.heartbeat_interval = heartbeat_interval
        self.connect_timeout = connect_timeout
        self.worker_id = f"{socket.gethostname()}:{os.getpid()}"
        self.shards_executed = 0
        self._send_lock = threading.Lock()
        self._stop = threading.Event()

    def run(self) -> int:
        """Connect and serve shards until the coordinator drains us."""
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(None)
        log.info(
            "worker %s connected to %s:%d", self.worker_id, self.host, self.port
        )
        try:
            self._send(
                sock,
                protocol.Hello(
                    worker_id=self.worker_id,
                    pid=os.getpid(),
                    host=socket.gethostname(),
                ),
            )
            beats = threading.Thread(
                target=self._heartbeat_loop, args=(sock,), daemon=True
            )
            beats.start()
            while True:
                message = protocol.recv_message(sock)
                if message is None or isinstance(message, protocol.Shutdown):
                    reason = (
                        message.reason
                        if isinstance(message, protocol.Shutdown)
                        else "connection closed"
                    )
                    log.info(
                        "worker %s exiting after %d shard(s): %s",
                        self.worker_id,
                        self.shards_executed,
                        reason,
                    )
                    return 0
                if isinstance(message, protocol.ShardAssignment):
                    self._execute(sock, message)
                else:
                    log.warning(
                        "worker %s ignoring unexpected message %r",
                        self.worker_id,
                        type(message).__name__,
                    )
        finally:
            self._stop.set()
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _send(self, sock: socket.socket, message) -> None:
        with self._send_lock:
            protocol.send_message(sock, message)

    def _heartbeat_loop(self, sock: socket.socket) -> None:
        beacon = protocol.Heartbeat(worker_id=self.worker_id)
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self._send(sock, beacon)
            except OSError:
                return

    def _execute(
        self, sock: socket.socket, assignment: protocol.ShardAssignment
    ) -> None:
        log.info(
            "worker %s executing shard %d (%d specs, attempt %d, inner %s)",
            self.worker_id,
            assignment.shard_id,
            len(assignment.specs),
            assignment.attempt,
            self.inner_override or assignment.inner,
        )
        started = time.perf_counter()
        try:
            results = self.execute_shard(assignment.specs, assignment.inner)
        except Exception:
            error = traceback.format_exc()
            log.warning(
                "worker %s shard %d failed:\n%s",
                self.worker_id,
                assignment.shard_id,
                error,
            )
            self._send(
                sock,
                protocol.ShardFailure(
                    shard_id=assignment.shard_id,
                    attempt=assignment.attempt,
                    worker_id=self.worker_id,
                    error=error,
                ),
            )
            return
        wall = time.perf_counter() - started
        self.shards_executed += 1
        self._send(
            sock,
            protocol.ShardResult(
                shard_id=assignment.shard_id,
                attempt=assignment.attempt,
                worker_id=self.worker_id,
                results=tuple(results),
                wall_seconds=wall,
            ),
        )
        log.info(
            "worker %s shard %d complete in %.3fs",
            self.worker_id,
            assignment.shard_id,
            wall,
        )

    def execute_shard(self, specs: Sequence, inner: str) -> List:
        """Run one shard through the local inner backend (store-wrapped).

        Exposed separately so tests can drive shard execution without a
        socket.  Results come back in ``specs`` order and are bit-identical
        to the serial backend's — the specs are deterministic and the inner
        backends are pinned to the serial oracle by the standing
        equivalence suites.
        """
        from repro.experiments.backends import resolve_backend
        from repro.experiments.store import CachedBackend, ResultStore

        specs = list(specs)
        inner_name = self.inner_override or inner
        settings = specs[0].settings
        backend = resolve_backend(inner_name, settings)
        cache_dir = getattr(settings, "cache_dir", None)
        use_cache = getattr(settings, "use_cache", True)
        if cache_dir and use_cache and not isinstance(backend, CachedBackend):
            backend = CachedBackend(
                backend, ResultStore(cache_dir), write_stats_file=False
            )
        return backend.run_specs(specs)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point shared by ``react-repro worker`` and ``python -m``."""
    parser = argparse.ArgumentParser(
        prog="react-repro worker",
        description=(
            "Sweep worker: connect to a distributed-sweep coordinator and "
            "execute RunSpec shards through a local backend."
        ),
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        required=True,
        help="coordinator address to connect to",
    )
    parser.add_argument(
        "--inner",
        default=None,
        help=(
            "force every shard through this local backend instead of the "
            "coordinator-assigned one (default: follow the assignment)"
        ),
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=DEFAULT_HEARTBEAT_INTERVAL,
        metavar="SECONDS",
        help="seconds between liveness heartbeats (default %(default)s)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log connects, shard execution, and failures to stderr",
    )
    args = parser.parse_args(argv)
    if args.verbose:
        logging.basicConfig(
            level=logging.INFO,
            format="%(asctime)s %(name)s %(levelname)s %(message)s",
        )
    try:
        host, port = protocol.parse_address(args.connect)
    except ValueError as error:
        parser.error(str(error))
    worker = SweepWorker(
        host,
        port,
        inner_override=args.inner,
        heartbeat_interval=args.heartbeat,
    )
    try:
        return worker.run()
    except (ConnectionError, OSError) as error:
        print(f"worker: {error}", flush=True)
        return 1


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    raise SystemExit(main())
