"""Wire protocol for the distributed sweep service.

Coordinator and workers speak length-prefixed pickle frames over a plain
TCP socket: every message is one frame — an 8-byte big-endian unsigned
payload length followed by a pickled message dataclass.  Framing is the
whole transport; there is no handshake beyond the worker's initial
:class:`Hello` and no compression (a shard of
:class:`~repro.experiments.backends.RunSpec`\\ s and its
:class:`~repro.sim.results.SimulationResult`\\ s pickle to a few kilobytes).

The message vocabulary:

==================  =========  =============================================
message             direction  meaning
==================  =========  =============================================
:class:`Hello`      w → c      worker identifies itself after connecting
:class:`Heartbeat`  w → c      periodic liveness beacon while idle or busy
:class:`ShardAssignment`  c → w  execute these specs through ``inner``
:class:`ShardResult`      w → c  one result per shard spec, in shard order
:class:`ShardFailure`     w → c  shard execution raised (traceback attached)
:class:`Shutdown`   c → w      graceful drain: finish up and exit
==================  =========  =============================================

Trust model: frames are **pickle**, so the transport must only ever span
hosts that already trust each other (the same boundary the stdlib's
``multiprocessing`` listeners draw).  The default coordinator binds to
``127.0.0.1``; binding a routable address is an explicit opt-in via
``--remote-listen``.
"""

from __future__ import annotations

import pickle
import socket
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.backends import RunSpec
    from repro.sim.results import SimulationResult

#: Bump when a message's wire shape changes; mismatching workers are
#: rejected at :class:`Hello` instead of failing mid-sweep on an unpickle.
PROTOCOL_VERSION = 1

#: 8-byte big-endian unsigned frame-length prefix.
_HEADER = struct.Struct(">Q")

#: Sanity bound on one frame: a garbage or misframed header is detected as
#: a protocol error instead of an attempted multi-gigabyte allocation.
MAX_FRAME_BYTES = 1 << 30


@dataclass(frozen=True)
class Hello:
    """Worker → coordinator, immediately after connecting."""

    worker_id: str
    pid: int
    host: str
    version: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class Heartbeat:
    """Worker → coordinator, every heartbeat interval (idle or busy)."""

    worker_id: str


@dataclass(frozen=True)
class ShardAssignment:
    """Coordinator → worker: execute one shard of the expanded grid.

    ``indices`` are the specs' positions in the sweep's canonical spec
    order — carried for logging and error reporting; the worker returns
    results in ``specs`` order and the coordinator scatters them back by
    index.  ``inner`` names the local backend the worker executes through
    (``serial``/``batch``/…); ``attempt`` is 1 on first dispatch and grows
    on every requeue.
    """

    shard_id: int
    attempt: int
    inner: str
    indices: Tuple[int, ...]
    specs: Tuple["RunSpec", ...]


@dataclass(frozen=True)
class ShardResult:
    """Worker → coordinator: one result per assigned spec, in shard order."""

    shard_id: int
    attempt: int
    worker_id: str
    results: Tuple["SimulationResult", ...]
    wall_seconds: float


@dataclass(frozen=True)
class ShardFailure:
    """Worker → coordinator: the shard raised; ``error`` is the traceback."""

    shard_id: int
    attempt: int
    worker_id: str
    error: str


@dataclass(frozen=True)
class Shutdown:
    """Coordinator → worker: the sweep is drained; exit cleanly."""

    reason: str = "drained"


def send_message(sock: socket.socket, message: Any) -> None:
    """Send one framed message (length prefix + pickle payload)."""
    blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(blob)) + blob)


def recv_message(sock: socket.socket) -> Optional[Any]:
    """Receive one framed message; ``None`` on a clean EOF between frames.

    An EOF *inside* a frame (header or payload truncated) raises
    :class:`ConnectionError` — the peer died mid-send — as does a frame
    length beyond :data:`MAX_FRAME_BYTES` (a misframed or foreign stream).
    """
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(
            f"refusing protocol frame of {length} bytes (misframed stream?)"
        )
    blob = _recv_exact(sock, length, eof_ok=False)
    return pickle.loads(blob)


def _recv_exact(
    sock: socket.socket, count: int, eof_ok: bool
) -> Optional[bytes]:
    """Exactly ``count`` bytes, or ``None`` on EOF at a frame boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ConnectionError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def parse_address(text: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """``"HOST:PORT"`` (or ``":PORT"``) parsed into a ``(host, port)`` pair."""
    host, separator, port_text = text.rpartition(":")
    if not separator or not port_text.isdigit():
        raise ValueError(
            f"expected an address of the form HOST:PORT, got {text!r}"
        )
    return (host or default_host, int(port_text))
