"""Coordinator side of the distributed sweep service: ``RemoteBackend``.

The coordinator turns a grid of
:class:`~repro.experiments.backends.RunSpec`\\ s into a fault-tolerant work
queue of *shards* and serves them to whatever workers connect:

1. **Shard planning** follows the same
   :func:`~repro.experiments.backends.partition_batchable` /
   ``group_key`` boundaries every batch-style backend uses, so a shard's
   specs always share one trace (and, for lane groups, one lockstep
   kernel) — a worker running ``--inner batch`` batches exactly what the
   in-process batch backend would.  Unbatchable cells are grouped per
   trace too, and wide groups are split so the shard count comfortably
   exceeds the worker count.
2. **Dispatch** hands each shard to an idle worker; workers register by
   connecting to the coordinator's TCP socket (spawned locally via
   :class:`~repro.experiments.remote.launcher.LocalWorkerPool` and/or
   started on other hosts with ``react-repro worker --connect``).
3. **Fault tolerance**: a worker that disconnects, stops heartbeating, or
   blows its per-shard deadline is dropped and its in-flight shard is
   requeued on the next idle worker — up to ``max_shard_retries`` extra
   dispatches, after which the sweep fails with a
   :class:`~repro.exceptions.SweepTransportError` naming the affected
   spec indices (never a hang).
4. **Reassembly**: results are scattered back into canonical spec order as
   shards complete; the return value is bit-identical to the serial
   backend's because every spec is a deterministic function of itself and
   the worker executes it through the same engines.

Threading model: one accept thread, one reader thread per connection, and
the dispatching main loop — readers push events onto a queue the main loop
drains, so all scheduling state is owned by a single thread.
"""

from __future__ import annotations

import logging
import pickle
import queue
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, SweepTransportError
from repro.experiments.backends import (
    REMOTE_PREFIX,
    ProgressCallback,
    RunSpec,
    _split_evenly,
    available_backends,
    backend_name_prefix,
    partition_batchable,
)
from repro.experiments.remote import protocol
from repro.experiments.remote.launcher import LocalWorkerPool
from repro.experiments.runner import ExperimentSettings
from repro.sim.batch import DEFAULT_SCALAR_TAIL_LANES
from repro.sim.results import SimulationResult

log = logging.getLogger("repro.remote.coordinator")

#: Local workers spawned when neither ``remote_workers`` nor a listen
#: address is configured.
DEFAULT_LOCAL_WORKERS = 2

#: Default per-shard wall-clock budget before the shard is requeued
#: elsewhere.  Generous: a full-fidelity Morphy lane group is minutes of
#: simulation; pass ``shard_timeout=None`` to disable the deadline.
DEFAULT_SHARD_TIMEOUT = 900.0


#: Default wall-clock a single shard should aim for once the per-cell cost
#: is known (see ``RemoteBackend(shard_target_seconds=...)``).  Small enough
#: that one straggler shard cannot serialize the drain of a sweep whose
#: cells turned out heavy, large enough that dispatch overhead stays noise.
DEFAULT_SHARD_TARGET_SECONDS = 30.0


@dataclass
class _Shard:
    """One unit of dispatch: a contiguous slice of one lane/trace group."""

    shard_id: int
    indices: Tuple[int, ...]
    #: Smallest piece this shard may be re-split into (``min_lanes`` for
    #: lane-group shards — narrower would run scalar inside a ``batch``
    #: inner — and 1 for unbatchable cells).
    floor: int = 1
    attempts: int = 0
    done: bool = False
    last_error: Optional[str] = None


@dataclass
class RemoteReport:
    """What one remote sweep did, for logging, tests, and debugging."""

    shards_total: int = 0
    shard_splits: int = 0
    workers_connected: int = 0
    workers_lost: int = 0
    dispatches: int = 0
    requeues: int = 0
    failures: int = 0
    duplicate_results: int = 0


def plan_shards(
    specs: Sequence[RunSpec],
    workers: int = DEFAULT_LOCAL_WORKERS,
    min_lanes: int = DEFAULT_SCALAR_TAIL_LANES + 1,
) -> List[_Shard]:
    """Shard the grid along ``partition_batchable()``/``group_key`` lines.

    Lane groups (trace- and kernel-sharing specs) and per-trace groups of
    unbatchable specs each become shards, split into contiguous chunks so
    the shard count reaches roughly twice the worker count (finer shards
    balance better and cost less to retry).  Lane groups are never split
    below ``min_lanes`` — a narrower shard would run scalar inside a
    ``batch`` inner anyway — while unbatchable groups may split down to
    single specs (they are the heaviest cells).  Every spec lands in
    exactly one shard, and shard-internal order is spec order.

    This initial plan sizes shards from lane counts alone; once shards
    complete, the coordinator re-splits still-pending wide shards from the
    observed per-cell wall-clock (see ``_Coordinator._retune_pending``).
    """
    lane_groups, singles = partition_batchable(specs)
    single_groups: Dict[object, List[int]] = {}
    for index in sorted(singles):
        single_groups.setdefault(specs[index].group_key, []).append(index)
    groups: List[Tuple[List[int], int]] = [
        (group, min_lanes) for group in lane_groups
    ] + [(group, 1) for group in single_groups.values()]
    groups.sort(key=lambda entry: entry[0][0])
    target = max(1, 2 * max(1, workers))
    chunks_per_group = max(1, target // max(1, len(groups)))
    shards: List[_Shard] = []
    for group, floor in groups:
        chunks = min(chunks_per_group, max(1, len(group) // max(1, floor)))
        for piece in _split_evenly(group, chunks):
            shards.append(
                _Shard(
                    shard_id=len(shards),
                    indices=tuple(piece),
                    floor=max(1, floor),
                )
            )
    return shards


class _WorkerHandle:
    """Coordinator-side state for one connected worker."""

    def __init__(self, conn: socket.socket, address) -> None:
        self.conn = conn
        self.address = address
        self.worker_id: Optional[str] = None
        self.last_seen = time.monotonic()
        self.shard: Optional[_Shard] = None
        self.deadline: Optional[float] = None
        self.alive = True
        self._send_lock = threading.Lock()

    @property
    def label(self) -> str:
        return self.worker_id or f"{self.address[0]}:{self.address[1]}"

    def send(self, message) -> bool:
        """Send one message; ``False`` (never a raise) on a dead socket."""
        try:
            with self._send_lock:
                protocol.send_message(self.conn, message)
            return True
        except OSError:
            return False

    def close(self) -> None:
        self.alive = False
        try:
            self.conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.conn.close()
        except OSError:
            pass


class RemoteBackend:
    """Coordinator/worker transport backend (``remote:<inner>``).

    Listens on a TCP socket, registers workers as they connect, shards the
    grid along the shared partitioning boundaries, and dispatches shards
    from a work queue with heartbeats, per-shard timeouts, bounded
    retry-with-requeue, and graceful drain.  Results are reassembled in
    spec order and are bit-identical to the serial backend's.

    ``workers`` localhost worker processes are spawned per sweep (0 to rely
    entirely on externally started workers); ``listen`` is the
    ``(host, port)`` bind address — ``None`` binds ``127.0.0.1`` on an
    ephemeral port, which is the right thing whenever the workers are the
    locally spawned ones.  ``progress`` fires in spec order after the grid
    completes (shards finish interleaved across workers, so there is no
    meaningful earlier per-cell moment).
    """

    def __init__(
        self,
        inner: str = "serial",
        workers: int = DEFAULT_LOCAL_WORKERS,
        listen: Optional[Tuple[str, int]] = None,
        *,
        min_lanes: int = DEFAULT_SCALAR_TAIL_LANES + 1,
        shard_timeout: Optional[float] = DEFAULT_SHARD_TIMEOUT,
        shard_target_seconds: Optional[float] = DEFAULT_SHARD_TARGET_SECONDS,
        heartbeat_timeout: float = 20.0,
        max_shard_retries: int = 2,
        worker_timeout: float = 60.0,
        verbose_workers: bool = False,
    ) -> None:
        if backend_name_prefix(inner) is not None or not inner:
            raise ConfigurationError(
                f"remote workers execute a plain local backend; cannot use "
                f"{inner!r} as the inner backend of {REMOTE_PREFIX}<inner>"
            )
        if inner not in available_backends():
            raise ConfigurationError(
                f"unknown inner backend {inner!r} for {REMOTE_PREFIX}<inner>; "
                "registered backends: " + ", ".join(available_backends())
            )
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        if workers == 0 and listen is None:
            raise ConfigurationError(
                "a remote backend with no local workers needs a listen "
                "address for external workers to connect to"
            )
        if shard_target_seconds is not None and shard_target_seconds <= 0.0:
            raise ConfigurationError(
                f"shard_target_seconds must be positive (or None to keep "
                f"the initial shard plan), got {shard_target_seconds}"
            )
        self.inner = inner
        self.workers = workers
        self.listen = listen
        self.min_lanes = min_lanes
        self.shard_timeout = shard_timeout
        self.shard_target_seconds = shard_target_seconds
        self.heartbeat_timeout = heartbeat_timeout
        self.max_shard_retries = max_shard_retries
        self.worker_timeout = worker_timeout
        self.verbose_workers = verbose_workers
        self.name = REMOTE_PREFIX + inner
        self.last_run_report: Optional[RemoteReport] = None
        #: The in-flight :class:`_Coordinator` while ``run_specs`` runs —
        #: observability for fault-injection tests (bound address, pool pids).
        self._active_run: Optional["_Coordinator"] = None

    def run_specs(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[ProgressCallback] = None,
    ) -> List[SimulationResult]:
        specs = list(specs)
        if not specs:
            return []
        run = _Coordinator(self, specs)
        self._active_run = run
        try:
            results = run.execute()
        finally:
            self.last_run_report = run.report
            self._active_run = None
        if progress is not None:
            for result in results:
                progress(result)
        return results


class _Coordinator:
    """One sweep's scheduling state; owned by the dispatching thread."""

    def __init__(self, backend: RemoteBackend, specs: List[RunSpec]) -> None:
        self.backend = backend
        self.specs = specs
        self.shards = plan_shards(specs, backend.workers or 1, backend.min_lanes)
        self.shard_by_id = {shard.shard_id: shard for shard in self.shards}
        self.pending: deque = deque(self.shards)
        self._next_shard_id = len(self.shards)
        #: EWMA of observed per-cell wall-clock, seeded by the first
        #: completed shard; drives the pending-shard retune.
        self._per_cell_seconds: Optional[float] = None
        self.results: List[Optional[SimulationResult]] = [None] * len(specs)
        self.completed = 0
        self.events: "queue.Queue[tuple]" = queue.Queue()
        self.handles: List[_WorkerHandle] = []
        self.idle: deque = deque()
        self.report = RemoteReport(shards_total=len(self.shards))
        self.pool: Optional[LocalWorkerPool] = None
        self.server: Optional[socket.socket] = None
        self.bound_address: Optional[Tuple[str, int]] = None
        self.closing = False
        self._last_activity = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def execute(self) -> List[SimulationResult]:
        host, port = self.backend.listen or ("127.0.0.1", 0)
        self.server = socket.create_server((host, port))
        self.server.settimeout(0.25)
        bound = self.server.getsockname()
        self.bound_address = (bound[0], bound[1])
        log.info(
            "coordinator listening on %s:%d (%d specs in %d shards, inner %s)",
            bound[0],
            bound[1],
            len(self.specs),
            len(self.shards),
            self.backend.inner,
        )
        threading.Thread(target=self._accept_loop, daemon=True).start()
        try:
            if self.backend.workers > 0:
                self.pool = LocalWorkerPool(
                    self.backend.workers,
                    ("127.0.0.1", bound[1]),
                    verbose=self.backend.verbose_workers,
                )
            self._loop()
        finally:
            self._shutdown()
        assert all(result is not None for result in self.results)
        return list(self.results)

    def _loop(self) -> None:
        started = time.monotonic()
        while self.completed < len(self.shards):
            self._dispatch()
            try:
                event = self.events.get(timeout=0.1)
            except queue.Empty:
                event = None
            while event is not None:
                self._handle_event(event)
                try:
                    event = self.events.get_nowait()
                except queue.Empty:
                    event = None
            self._check_timeouts()
            self._check_liveness(started)
        log.info(
            "sweep drained: %d shards, %d dispatches, %d requeues, "
            "%d worker(s) seen",
            self.report.shards_total,
            self.report.dispatches,
            self.report.requeues,
            self.report.workers_connected,
        )

    def _shutdown(self) -> None:
        self.closing = True
        for handle in list(self.handles):
            handle.send(protocol.Shutdown())
            handle.close()
        self.handles.clear()
        self.idle.clear()
        if self.server is not None:
            try:
                self.server.close()
            except OSError:
                pass
        if self.pool is not None:
            self.pool.shutdown()

    # ------------------------------------------------------------------
    # Socket threads (push onto self.events; own no scheduling state)
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self.closing:
            try:
                conn, address = self.server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(None)
            handle = _WorkerHandle(conn, address)
            threading.Thread(
                target=self._reader_loop, args=(handle,), daemon=True
            ).start()

    def _reader_loop(self, handle: _WorkerHandle) -> None:
        try:
            hello = protocol.recv_message(handle.conn)
        except (OSError, ConnectionError, pickle.UnpicklingError, EOFError):
            handle.close()
            return
        if (
            not isinstance(hello, protocol.Hello)
            or hello.version != protocol.PROTOCOL_VERSION
        ):
            log.warning(
                "rejecting connection from %s: bad hello %r",
                handle.address,
                hello,
            )
            handle.close()
            return
        handle.worker_id = hello.worker_id
        handle.last_seen = time.monotonic()
        self.events.put(("hello", handle))
        while True:
            try:
                message = protocol.recv_message(handle.conn)
            except Exception as error:
                # Any transport or unpickling failure means this worker's
                # connection is done for; the main loop warns when it drains
                # the "lost" event, this records the proximate cause.
                log.debug("worker %s socket read failed: %s", handle.label, error)
                break
            if message is None:
                break
            handle.last_seen = time.monotonic()
            if isinstance(message, protocol.Heartbeat):
                continue
            self.events.put(("message", handle, message))
        self.events.put(("lost", handle))

    # ------------------------------------------------------------------
    # Scheduling (main thread only)
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        while self.pending and self.idle:
            handle = self.idle.popleft()
            if not handle.alive:
                continue
            shard = self.pending.popleft()
            if shard.done:
                continue
            shard.attempts += 1
            sent = handle.send(
                protocol.ShardAssignment(
                    shard_id=shard.shard_id,
                    attempt=shard.attempts,
                    inner=self.backend.inner,
                    indices=shard.indices,
                    specs=tuple(self.specs[i] for i in shard.indices),
                )
            )
            if not sent:
                shard.attempts -= 1  # the assignment never left this host
                self.pending.appendleft(shard)
                self._drop_worker(handle, "send failed")
                continue
            handle.shard = shard
            handle.deadline = (
                time.monotonic() + self.backend.shard_timeout
                if self.backend.shard_timeout is not None
                else None
            )
            self.report.dispatches += 1
            log.info(
                "dispatched shard %d (%d specs, attempt %d) to worker %s",
                shard.shard_id,
                len(shard.indices),
                shard.attempts,
                handle.label,
            )

    def _handle_event(self, event: tuple) -> None:
        if self.closing:
            return
        kind, handle = event[0], event[1]
        if kind == "hello":
            self.handles.append(handle)
            self.idle.append(handle)
            self.report.workers_connected += 1
            self._last_activity = time.monotonic()
            log.info(
                "worker %s connected (%d worker(s) registered)",
                handle.label,
                len(self.handles),
            )
        elif kind == "lost":
            if handle.alive:
                self._drop_worker(handle, "connection lost")
        elif kind == "message":
            message = event[2]
            if isinstance(message, protocol.ShardResult):
                self._complete(handle, message)
            elif isinstance(message, protocol.ShardFailure):
                self._shard_failed(handle, message)
            else:
                log.warning(
                    "ignoring unexpected %r from worker %s",
                    type(message).__name__,
                    handle.label,
                )

    def _complete(self, handle: _WorkerHandle, message: protocol.ShardResult) -> None:
        shard = self.shard_by_id.get(message.shard_id)
        self._release(handle, message.shard_id)
        if shard is None or shard.done:
            # A shard can complete twice when its first worker was declared
            # stalled but later delivered; results are deterministic, so
            # either copy is correct — keep the first, count the duplicate.
            self.report.duplicate_results += 1
            log.info(
                "ignoring duplicate result for shard %s from worker %s",
                message.shard_id,
                handle.label,
            )
            return
        if len(message.results) != len(shard.indices):
            self._requeue(
                shard,
                f"worker {handle.label} returned {len(message.results)} "
                f"results for {len(shard.indices)} specs",
            )
            return
        for index, result in zip(shard.indices, message.results):
            self.results[index] = result
        shard.done = True
        self.completed += 1
        self._last_activity = time.monotonic()
        log.info(
            "shard %d complete on worker %s in %.3fs (attempt %d; %d/%d shards)",
            shard.shard_id,
            handle.label,
            message.wall_seconds,
            message.attempt,
            self.completed,
            len(self.shards),
        )
        self._observe_shard_cost(shard, message.wall_seconds)

    def _observe_shard_cost(self, shard: _Shard, wall_seconds: float) -> None:
        """Fold one completed shard into the per-cell wall-clock estimate."""
        if self.backend.shard_target_seconds is None or wall_seconds <= 0.0:
            return
        per_cell = wall_seconds / max(1, len(shard.indices))
        if self._per_cell_seconds is None:
            self._per_cell_seconds = per_cell
        else:
            # Equal-weight EWMA: recent shards dominate, so an estimate
            # seeded by an unrepresentative first shard keeps correcting.
            self._per_cell_seconds = 0.5 * self._per_cell_seconds + 0.5 * per_cell
        self._retune_pending()

    def _retune_pending(self) -> None:
        """Re-split never-dispatched shards toward the target wall-clock.

        :func:`plan_shards` sizes shards from lane counts alone (~2 per
        worker, whatever the per-cell cost); once completed shards reveal
        how expensive a cell actually is, any pending shard predicted to
        run well past ``shard_target_seconds`` is split down — never below
        its group ``floor`` — so stragglers shrink, workers stay balanced
        through the drain, and a requeued retry re-runs less work.  Shards
        that already dispatched once keep their identity: splitting them
        would reset the per-shard retry ledger.
        """
        per_cell = self._per_cell_seconds
        target = self.backend.shard_target_seconds
        if per_cell is None or target is None or per_cell <= 0.0:
            return
        limit = max(1, int(target / per_cell))
        retuned: deque = deque()
        for shard in self.pending:
            chunks = 1
            if shard.attempts == 0 and len(shard.indices) > max(limit, shard.floor):
                chunks = min(
                    -(-len(shard.indices) // limit),  # ceil → pieces near target
                    len(shard.indices) // shard.floor,
                )
            if chunks <= 1:
                retuned.append(shard)
                continue
            del self.shard_by_id[shard.shard_id]
            self.shards.remove(shard)
            pieces = _split_evenly(list(shard.indices), chunks)
            for piece in pieces:
                replacement = _Shard(
                    shard_id=self._next_shard_id,
                    indices=tuple(piece),
                    floor=shard.floor,
                )
                self._next_shard_id += 1
                self.shards.append(replacement)
                self.shard_by_id[replacement.shard_id] = replacement
                retuned.append(replacement)
            self.report.shard_splits += 1
            log.info(
                "retuned shard %d (%d specs ≈ %.1fs at %.3fs/cell) into %d "
                "shards of ~%d specs",
                shard.shard_id,
                len(shard.indices),
                len(shard.indices) * per_cell,
                per_cell,
                len(pieces),
                max(len(piece) for piece in pieces),
            )
        self.pending = retuned
        self.report.shards_total = len(self.shards)

    def _shard_failed(
        self, handle: _WorkerHandle, message: protocol.ShardFailure
    ) -> None:
        self.report.failures += 1
        self._release(handle, message.shard_id)
        shard = self.shard_by_id.get(message.shard_id)
        if shard is None or shard.done:
            return
        log.warning(
            "shard %d failed on worker %s (attempt %d):\n%s",
            shard.shard_id,
            handle.label,
            message.attempt,
            message.error,
        )
        self._requeue(shard, message.error)

    def _release(self, handle: _WorkerHandle, shard_id: int) -> None:
        """Return ``handle`` to the idle pool after ``shard_id`` concluded."""
        if handle.shard is not None and handle.shard.shard_id == shard_id:
            handle.shard = None
            handle.deadline = None
        if handle.alive and handle not in self.idle:
            self.idle.append(handle)

    def _drop_worker(self, handle: _WorkerHandle, reason: str) -> None:
        handle.close()
        if handle in self.handles:
            self.handles.remove(handle)
            self.report.workers_lost += 1
            log.warning("worker %s dropped: %s", handle.label, reason)
        try:
            self.idle.remove(handle)
        except ValueError:
            pass
        shard = handle.shard
        handle.shard = None
        handle.deadline = None
        if shard is not None and not shard.done:
            self._requeue(shard, f"worker {handle.label} {reason}")

    def _requeue(self, shard: _Shard, error: str) -> None:
        shard.last_error = error
        if shard.attempts > self.backend.max_shard_retries:
            raise SweepTransportError(
                f"sweep shard {shard.shard_id} covering spec indices "
                f"{list(shard.indices)} failed after {shard.attempts} dispatch "
                f"attempts (retry budget: {self.backend.max_shard_retries} "
                f"requeues); last error: {error}"
            )
        self.report.requeues += 1
        log.warning(
            "requeueing shard %d (attempt %d of %d failed: %s)",
            shard.shard_id,
            shard.attempts,
            self.backend.max_shard_retries + 1,
            error.strip().splitlines()[-1] if error.strip() else error,
        )
        self.pending.append(shard)

    def _check_timeouts(self) -> None:
        now = time.monotonic()
        for handle in list(self.handles):
            if (
                handle.shard is not None
                and handle.deadline is not None
                and now > handle.deadline
            ):
                self._drop_worker(
                    handle,
                    f"stalled: shard {handle.shard.shard_id} exceeded the "
                    f"{self.backend.shard_timeout:.1f}s shard timeout",
                )
            elif now - handle.last_seen > self.backend.heartbeat_timeout:
                self._drop_worker(
                    handle,
                    f"missed heartbeats for {now - handle.last_seen:.1f}s",
                )

    def _check_liveness(self, started: float) -> None:
        """Fail loudly when no worker can ever finish the remaining work."""
        if self.handles:
            return
        remaining = sorted(
            index
            for shard in self.shards
            if not shard.done
            for index in shard.indices
        )
        if self.pool is not None and self.pool.all_exited():
            raise SweepTransportError(
                f"all {self.backend.workers} local sweep worker(s) exited "
                f"with spec indices {remaining} incomplete"
            )
        now = time.monotonic()
        reference = max(started, self._last_activity)
        if now - reference > self.backend.worker_timeout:
            raise SweepTransportError(
                f"no live sweep workers for {now - reference:.1f}s "
                f"(worker_timeout={self.backend.worker_timeout}); spec "
                f"indices {remaining} incomplete"
            )


def remote_backend_from_settings(
    name: str, settings: ExperimentSettings
) -> RemoteBackend:
    """Resolve ``remote:<inner>`` into a coordinator for ``settings``.

    The registry's prefix resolver: ``settings.remote_workers`` is the
    local worker count (``None`` defaults to
    :data:`DEFAULT_LOCAL_WORKERS` without a listen address, else 0 — a
    configured listen address implies externally started workers), and
    ``settings.remote_listen`` is the ``HOST:PORT`` bind address.
    """
    inner = name[len(REMOTE_PREFIX) :]
    listen_text = getattr(settings, "remote_listen", None)
    listen = None
    if listen_text:
        try:
            listen = protocol.parse_address(listen_text, default_host="")
        except ValueError as error:
            raise ConfigurationError(str(error)) from error
    workers = getattr(settings, "remote_workers", None)
    if workers is None:
        workers = 0 if listen is not None else DEFAULT_LOCAL_WORKERS
    return RemoteBackend(inner=inner, workers=workers, listen=listen)
