"""Deprecated module: batched execution moved to the backend API.

The vectorized lockstep execution mode now lives in
:mod:`repro.experiments.backends` as :class:`BatchBackend` (and composes
with the process pool as :class:`PoolBatchBackend`).  This module keeps
:class:`BatchExperimentRunner` as a thin deprecation shim over
``ExperimentRunner(backend=BatchBackend(...))``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.experiments.backends import (  # noqa: F401  (re-exports)
    BatchBackend,
    PoolBatchBackend,
)
from repro.experiments.runner import ExperimentRunner
from repro.sim.batch import DEFAULT_SCALAR_TAIL_LANES

__all__ = ["BatchExperimentRunner", "BatchBackend", "PoolBatchBackend"]


@dataclass
class BatchExperimentRunner(ExperimentRunner):
    """Deprecated: use ``ExperimentRunner`` with the ``batch`` backend."""

    min_lanes: int = DEFAULT_SCALAR_TAIL_LANES + 1

    def __post_init__(self) -> None:
        warnings.warn(
            "BatchExperimentRunner is deprecated; use "
            "ExperimentRunner(settings, backend=BatchBackend()) or --backend batch",
            DeprecationWarning,
            stacklevel=2,
        )
        if self.backend is None:
            self.backend = BatchBackend(min_lanes=self.min_lanes)
