"""Batched (vectorized lockstep) experiment execution.

The third execution mode next to the serial runner and the process-pool
runner: grid sweeps pack every cell that shares a power trace into one
:class:`~repro.sim.batch.BatchSimulator` run, amortizing the engine's
per-step Python dispatch across all of a trace's cells.  Cells whose buffer
has no batched kernel (Morphy, REACT, anything whose
:meth:`~repro.buffers.base.EnergyBuffer.can_batch` is False) fall back,
per lane, to the scalar engine with the same settings, so a mixed grid
still returns exactly the serial runner's results in the serial iteration
order.

Batched execution replays the scalar engine's step-by-step update rule, so
results are bit-comparable to the serial runner up to floating-point
summation order of the energy ledgers (see :mod:`repro.sim.batch`); the
equivalence tests pin them to within 1e-9 relative tolerance and the grid
counters exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.experiments.runner import (
    ExperimentRunner,
    WORKLOAD_ORDER,
    make_workload,
)
from repro.platform.mcu import MSP430FR5994
from repro.sim.batch import DEFAULT_SCALAR_TAIL_LANES, BatchSimulator
from repro.sim.results import SimulationResult
from repro.sim.system import BatterylessSystem


@dataclass
class BatchExperimentRunner(ExperimentRunner):
    """An :class:`ExperimentRunner` that batches trace-sharing grid cells.

    ``min_lanes`` guards against degenerate batches: a trace whose batchable
    cell count is below it runs through the scalar engine unchanged, without
    paying batch-kernel construction for a batch the
    :class:`~repro.sim.batch.BatchSimulator` would immediately hand to the
    scalar engine anyway — hence the default of one more than the
    simulator's scalar tail width.  Single-run entry points
    (:meth:`ExperimentRunner.run_single`) stay scalar — batching exists for
    grids.

    ``progress`` callbacks fire in the serial iteration order, but only
    after the whole grid has been computed (lanes finish interleaved inside
    a batch, so there is no meaningful earlier moment per cell).
    """

    min_lanes: int = DEFAULT_SCALAR_TAIL_LANES + 1

    def run_grid(
        self,
        workloads: Iterable[str] = WORKLOAD_ORDER,
        trace_names: Optional[Iterable[str]] = None,
        progress: Optional[Callable[[SimulationResult], None]] = None,
    ) -> List[SimulationResult]:
        """Run the evaluation grid, batching each trace's batchable cells."""
        workloads = list(workloads)
        traces = self.settings.traces(
            list(trace_names) if trace_names is not None else None
        )
        buffer_count = len(self.buffer_factory())
        settings = self.settings
        computed: Dict[Tuple[str, str, int], SimulationResult] = {}

        for trace_name, trace in traces.items():
            lane_keys: List[Tuple[str, str, int]] = []
            lane_systems: List[BatterylessSystem] = []
            for workload_name in workloads:
                buffers = self.buffer_factory()
                for buffer_index, buffer in enumerate(buffers):
                    if not buffer.can_batch():
                        continue
                    lane_keys.append((workload_name, trace_name, buffer_index))
                    lane_systems.append(
                        BatterylessSystem.build(
                            trace,
                            buffer,
                            make_workload(workload_name, trace_name),
                            mcu=MSP430FR5994(),
                        )
                    )
            if len(lane_systems) < self.min_lanes:
                continue  # the canonical loop below runs these cells scalar
            simulator = BatchSimulator(
                lane_systems,
                dt_on=settings.effective_dt_on,
                dt_off=settings.effective_dt_off,
                max_drain_time=settings.max_drain_time,
                fast_forward=settings.fast_forward,
            )
            for key, result in zip(lane_keys, simulator.run()):
                computed[key] = result

        # Emit in the serial runner's iteration order, executing whatever the
        # batches did not cover (non-batchable buffers, sub-min_lanes traces)
        # through the scalar engine.
        results: List[SimulationResult] = []
        for workload_name in workloads:
            for trace_name, trace in traces.items():
                for buffer_index in range(buffer_count):
                    result = computed.get((workload_name, trace_name, buffer_index))
                    if result is None:
                        result = self.run_single(
                            trace,
                            self.buffer_factory()[buffer_index],
                            make_workload(workload_name, trace_name),
                        )
                    results.append(result)
                    if progress is not None:
                        progress(result)
        return results
