"""Parallel experiment execution over a process pool.

The evaluation grid (traces × workloads × buffers) is embarrassingly
parallel: every cell is an independent simulation.  A mid-flight
:class:`~repro.sim.system.BatterylessSystem` is not picklable (it holds
open numpy views, bound controller state, and cyclic workload references),
so the pool never ships systems — it ships :class:`RunSpec` descriptions
and each worker rebuilds its trace, buffer, and workload from scratch,
exactly the way the serial runner does.  Construction is deterministic
(the spec carries the experiment seed, every workload embeds its own fixed
seed), so a parallel grid returns bit-identical results to the serial
grid, in the same order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.buffers.base import EnergyBuffer
from repro.exceptions import ConfigurationError
from repro.experiments.runner import (
    ExperimentRunner,
    ExperimentSettings,
    WORKLOAD_ORDER,
    make_workload,
    standard_buffers,
)
from repro.sim.results import SimulationResult


@dataclass(frozen=True)
class RunSpec:
    """Everything a worker needs to reconstruct one grid cell.

    ``buffer_factory`` must be a picklable (module-level) callable; the
    buffer is identified by its *index* in the factory's list so workers
    always build a fresh instance rather than sharing state through the
    pickle.
    """

    workload: str
    trace_name: str
    buffer_index: int
    settings: ExperimentSettings
    buffer_factory: Callable[[], List[EnergyBuffer]] = standard_buffers


def execute_run_spec(spec: RunSpec) -> SimulationResult:
    """Build and simulate one grid cell (the process-pool work function)."""
    settings = spec.settings
    trace = settings.trace(spec.trace_name)
    buffer = spec.buffer_factory()[spec.buffer_index]
    workload = make_workload(spec.workload, spec.trace_name)
    runner = ExperimentRunner(settings, buffer_factory=spec.buffer_factory)
    return runner.run_single(trace, buffer, workload)


@dataclass
class ParallelExperimentRunner(ExperimentRunner):
    """An :class:`ExperimentRunner` that fans the grid out over processes.

    ``workers=1`` (or a single-cell grid) degrades to the serial path, so
    every experiment module can construct this runner unconditionally and
    let :class:`ExperimentSettings.workers` decide.  Results are collected
    in submission order — identical to the serial runner's iteration order
    — so downstream aggregation code needs no changes, and ``progress``
    callbacks fire in that same deterministic order (albeit only as each
    result is collected).
    """

    workers: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be at least 1, got {self.workers}")

    def grid_specs(
        self,
        workloads: Iterable[str] = WORKLOAD_ORDER,
        trace_names: Optional[Iterable[str]] = None,
    ) -> List[RunSpec]:
        """The grid in serial iteration order, as picklable run specs."""
        trace_list = list(trace_names) if trace_names is not None else None
        traces = self.settings.traces(trace_list)
        buffer_count = len(self.buffer_factory())
        return [
            RunSpec(
                workload=workload_name,
                trace_name=trace_name,
                buffer_index=index,
                settings=self.settings,
                buffer_factory=self.buffer_factory,
            )
            for workload_name in workloads
            for trace_name in traces
            for index in range(buffer_count)
        ]

    def run_grid(
        self,
        workloads: Iterable[str] = WORKLOAD_ORDER,
        trace_names: Optional[Iterable[str]] = None,
        progress: Optional[Callable[[SimulationResult], None]] = None,
    ) -> List[SimulationResult]:
        """Run the evaluation grid, fanning out when ``workers > 1``."""
        workloads = list(workloads)
        specs = self.grid_specs(workloads, trace_names)
        if self.workers <= 1 or len(specs) <= 1:
            return super().run_grid(workloads, trace_names, progress)
        results: List[SimulationResult] = []
        with ProcessPoolExecutor(max_workers=min(self.workers, len(specs))) as pool:
            futures = [pool.submit(execute_run_spec, spec) for spec in specs]
            for future in futures:
                result = future.result()
                results.append(result)
                if progress is not None:
                    progress(result)
        return results
