"""Deprecated module: process-pool execution moved to the backend API.

Everything that used to live here is now part of
:mod:`repro.experiments.backends`: the picklable :class:`RunSpec`, the
pool work function :func:`execute_run_spec`, and the pool itself
(:class:`ProcessPoolBackend`).  This module re-exports those names for
import compatibility and keeps :class:`ParallelExperimentRunner` as a thin
deprecation shim over ``ExperimentRunner(backend=ProcessPoolBackend(...))``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.experiments.backends import (  # noqa: F401  (re-exports)
    ProcessPoolBackend,
    RunSpec,
    execute_run_spec,
)
from repro.experiments.runner import ExperimentRunner

__all__ = [
    "ParallelExperimentRunner",
    "ProcessPoolBackend",
    "RunSpec",
    "execute_run_spec",
]


@dataclass
class ParallelExperimentRunner(ExperimentRunner):
    """Deprecated: use ``ExperimentRunner`` with the ``pool`` backend."""

    workers: int = 1

    def __post_init__(self) -> None:
        warnings.warn(
            "ParallelExperimentRunner is deprecated; use "
            "ExperimentRunner(settings, backend=ProcessPoolBackend(workers=N)) "
            "or --backend pool",
            DeprecationWarning,
            stacklevel=2,
        )
        if self.backend is None:
            self.backend = ProcessPoolBackend(workers=self.workers)
