"""Figure 1 — static buffer operation on a simulated solar harvester.

The paper's motivating figure replays a pedestrian solar trace into two
static buffers at the design extremes (1 mF and 300 mF) and shows the
reactivity/longevity tradeoff: the small buffer charges quickly but cycles
constantly, while the large buffer starts late (or never) and then runs for
long stretches.  This experiment regenerates the two voltage timelines and
the highlighted on-intervals as columnar data.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.formatting import format_table
from repro.buffers.static import StaticBuffer
from repro.experiments.runner import ExperimentRunner, ExperimentSettings
from repro.harvester.synthetic import solar_trace
from repro.sim.recorder import Recorder
from repro.units import millifarads
from repro.workloads.data_encryption import DataEncryption

#: The two design-extreme buffer sizes Figure 1 contrasts.
FIG1_BUFFER_SIZES_MF = (1.0, 300.0)


def run(settings: Optional[ExperimentSettings] = None, verbose: bool = True) -> Dict:
    """Regenerate Figure 1; returns the timelines and cycle statistics."""
    settings = settings or ExperimentSettings()
    runner = ExperimentRunner(settings)
    duration = 600.0 if settings.quick else 3600.0
    trace = solar_trace(duration=duration, mean_power=5.0e-3, seed=settings.seed,
                        name="Solar Pedestrian")

    timelines: Dict[str, Dict] = {}
    rows = []
    for size_mf in FIG1_BUFFER_SIZES_MF:
        buffer = StaticBuffer(millifarads(size_mf), name=f"{size_mf:g} mF")
        recorder = Recorder(record_period=2.0 if not settings.quick else 1.0)
        workload = DataEncryption()
        result = runner.run_single(trace, buffer, workload, recorder=recorder)
        intervals = recorder.on_intervals()
        cycle_lengths = [end - start for start, end in intervals]
        timelines[buffer.name] = {
            "recorder": recorder,
            "result": result,
            "on_intervals": intervals,
        }
        rows.append(
            {
                "buffer": buffer.name,
                "latency_s": result.latency,
                "on_time_s": round(result.on_time, 1),
                "power_cycles": len(intervals),
                "mean_cycle_s": round(
                    sum(cycle_lengths) / len(cycle_lengths), 1
                ) if cycle_lengths else 0.0,
                "operational_fraction": round(result.on_time_during_trace_fraction, 3),
            }
        )

    output = format_table(
        rows, title="Figure 1 — static buffer operation (solar pedestrian trace)"
    )
    if verbose:
        print(output)
    return {
        "trace": trace,
        "timelines": timelines,
        "rows": rows,
        "formatted": output,
    }


if __name__ == "__main__":  # pragma: no cover - manual invocation
    run()
