"""Table 1 — REACT bank sizes and configuration.

Table 1 is configuration rather than measurement, but regenerating it from
:func:`repro.core.config.table1_config` checks that the library's default
REACT instance matches the paper's prototype (770 µF–18.03 mF) and that
every bank satisfies the Equation 2 sizing constraint.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.formatting import format_table
from repro.core.config import table1_config
from repro.core.sizing import max_unit_capacitance, validate_bank_sizing
from repro.experiments.runner import ExperimentSettings


def run(settings: Optional[ExperimentSettings] = None, verbose: bool = True) -> Dict:
    """Regenerate Table 1 plus the derived sizing checks."""
    config = table1_config()
    rows = config.describe_banks()

    sizing_rows = []
    for index, bank in enumerate(config.banks, start=1):
        limit = max_unit_capacitance(
            bank.count,
            config.last_level_capacitance,
            config.high_threshold,
            config.low_threshold,
        )
        sizing_rows.append(
            {
                "bank": index,
                "cells": bank.count,
                "unit_uF": round(bank.unit_capacitance * 1e6, 1),
                "eq2_limit_uF": (
                    round(limit * 1e6, 1) if limit != float("inf") else None
                ),
                "satisfies_eq2": validate_bank_sizing(
                    bank.count,
                    bank.unit_capacitance,
                    config.last_level_capacitance,
                    config.high_threshold,
                    config.low_threshold,
                ),
            }
        )

    summary_rows = [
        {
            "quantity": "minimum capacitance (uF)",
            "value": round(config.minimum_capacitance * 1e6, 1),
        },
        {
            "quantity": "maximum capacitance (mF)",
            "value": round(config.maximum_capacitance * 1e3, 3),
        },
        {
            "quantity": "capacitance levels",
            "value": len(config.capacitance_levels),
        },
    ]

    output = "\n\n".join(
        [
            format_table(rows, title="Table 1 — bank sizes and configuration"),
            format_table(sizing_rows, title="Equation 2 sizing check"),
            format_table(summary_rows, title="Derived fabric properties"),
        ]
    )
    if verbose:
        print(output)
    return {
        "rows": rows,
        "sizing_rows": sizing_rows,
        "config": config,
        "formatted": output,
    }


if __name__ == "__main__":  # pragma: no cover - manual invocation
    run()
